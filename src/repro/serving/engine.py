"""The quote server: micro-batched request coalescing onto the cluster.

:class:`QuoteServer` is the online counterpart of the overnight risk
batch.  A stream of :class:`~repro.serving.request.PricingRequest`
objects (quotes, revals, VaR refreshes) arrives in simulated time; the
server coalesces them into micro-batches under a size-or-linger policy
(:class:`~repro.serving.coalescer.MicroBatchCoalescer`, carrying the
cluster layer's :class:`~repro.cluster.batching.BatchQueue`), prices each
batch's distinct market-state rows with **one** negotiated call on the
pricing session's base backend (via
:meth:`~repro.risk.engine.ScenarioRiskEngine.quote_rows` — one batched
kernel call for the whole micro-batch), and shards the rows for *timing*
across cluster cards with the existing
:class:`~repro.cluster.scheduler.ClusterScheduler` policies, weighted by
each row's kernel-cell cost.  Only ``supports_streaming`` backends are
accepted — the capability flag of the unified API.

Two clocks run side by side, exactly as in the risk subsystem:

* **numerics** execute on the host, for real — every response value is a
  genuine kernel output, and batched values are bit-identical to pricing
  each request alone (rows are independent inside the kernel);
* **timing** runs on the unified :mod:`repro.sim` core: request arrivals
  are events on one :class:`~repro.sim.Simulation`, the host thread and
  every card are :class:`~repro.sim.Resource` busy-window surfaces on a
  :class:`~repro.api.cost.ClusterTimingRig` obtained through the pricing
  session's ``timing_rig`` hook, linger timers fire as the event loop
  reaches them, and concurrent card transfers stretch by the
  :class:`~repro.cluster.interconnect.HostLinkModel` contention factor.
  The timing-conformance suite pins this event-driven replay
  bit-identical to the pre-``repro.sim`` per-card ``busy_until``
  bookkeeping it replaced.

The dispatch cost model (:class:`~repro.api.cost.DispatchCostModel`,
re-exported here for compatibility) comes from the backend's cost-model
hook on the pricing session — by default calibrated from one
representative :class:`~repro.cluster.node.ClusterNode` batch, the same
discrete-event engines behind every other layer — split into the fixed
per-dispatch overhead (kernel invocation + PCIe setup) and the marginal
per-row / per-cell costs.  That split is the entire economics of
micro-batching: dispatching requests one at a time pays the fixed
overhead per request, coalescing amortises it across the batch.

Admission control is a bounded outstanding-work queue: a request arriving
while ``queue_depth`` admitted requests are still pending or in flight is
shed immediately (backpressure), and pending requests whose deadline
expires before their batch forms are shed by the coalescer.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.api import PricingBackend, create_backend
from repro.api.cost import ClusterTimingRig, DispatchCostModel
from repro.cluster.batching import BatchQueue
from repro.cluster.interconnect import HostLinkModel
from repro.cluster.scheduler import (
    ClusterScheduler,
    make_scheduler,
    validate_partition,
)
from repro.errors import CapabilityError, ValidationError
from repro.risk.engine import Portfolio, ScenarioRiskEngine
from repro.risk.measures import value_at_risk
from repro.risk.tensor import ScenarioTensor
from repro.serving.coalescer import MicroBatch, MicroBatchCoalescer
from repro.serving.metrics import CardLoad, LatencyStats, ServingResult
from repro.serving.request import (
    PricingRequest,
    PricingResponse,
    ShedReason,
    ShedRecord,
)
from repro.sim import CompletionTracker
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.workloads.scenarios import PaperScenario

if TYPE_CHECKING:  # fault types are optional at runtime (lazy import)
    from repro.faults import FaultPlan, FaultReport, HedgePolicy, RetryPolicy

__all__ = ["DispatchCostModel", "QuoteServer", "VAR_CONFIDENCE"]

#: Confidence level of the VaR-refresh request family.
VAR_CONFIDENCE = 0.95


class QuoteServer:
    """Simulated-time online pricing service over the cluster.

    Parameters
    ----------
    book:
        The signed book the server quotes and revalues.
    tape:
        The live market tape: a :class:`~repro.risk.tensor.
        ScenarioTensor` whose rows are the market states requests
        reference.
    scenario:
        Experimental configuration (default
        :class:`~repro.workloads.scenarios.PaperScenario`).
    n_cards / n_engines:
        Cluster shape.
    scheduler:
        Row-sharding policy per micro-batch (name or
        :class:`~repro.cluster.scheduler.ClusterScheduler` instance);
        rows are weighted by their kernel-cell cost, so the cost-aware
        policies balance mixed quote/reval/var batches.
    link:
        Host-path timing model (default :class:`HostLinkModel`).
    queue:
        Size-or-linger coalescing policy (default
        ``BatchQueue(max_batch=128, linger_s=1e-3)``).
    queue_depth:
        Bound on admitted-but-incomplete requests (pending + in flight);
        arrivals beyond it are shed (backpressure).
    chunk_size:
        Kernel chunk size for the host numerics (``None`` = automatic).
    backend:
        Base pricing backend behind the risk engine's session (registry
        name or :class:`~repro.api.PricingBackend` instance).  Must
        advertise ``supports_streaming``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  With a
        recording handle every replay emits resource busy-window spans
        (host + cards, via the timing rig) and four per-request phase
        spans — ``coalesce``, ``host_link``, ``card_queue``,
        ``card_service`` — keyed by the request id as trace id, whose
        durations sum exactly to the request's reported latency.  Run
        tallies are published into ``telemetry.metrics`` after each
        :meth:`serve`.  Default: the process-wide no-op handle (reports
        are byte-identical either way).
    """

    #: Default coalescing policy: micro-batches, not overnight batches.
    DEFAULT_QUEUE = BatchQueue(max_batch=128, linger_s=1e-3)

    def __init__(
        self,
        book: Portfolio,
        tape: ScenarioTensor,
        *,
        scenario: PaperScenario | None = None,
        n_cards: int = 4,
        n_engines: int = 5,
        scheduler: ClusterScheduler | str = "least-loaded",
        link: HostLinkModel | None = None,
        queue: BatchQueue | None = None,
        queue_depth: int = 4096,
        chunk_size: int | None = None,
        backend: str | PricingBackend = "vectorized",
        telemetry: Telemetry | None = None,
    ) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        if queue_depth < 1:
            raise ValidationError(f"queue_depth must be >= 1, got {queue_depth}")
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tape = tape
        self.n_cards = n_cards
        self.scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.link = link if link is not None else HostLinkModel()
        self.queue = queue if queue is not None else self.DEFAULT_QUEUE
        self.queue_depth = queue_depth
        self.chunk_size = chunk_size
        # Gate on the streaming capability BEFORE the engine binds the
        # backend: the server's requirement is the one the user should
        # see (the engine would otherwise fail first on its own legs
        # check with a "risk revaluation" message), and nothing is bound
        # yet so a caller-supplied instance stays reusable.
        if isinstance(backend, str):
            backend = create_backend(backend)
        if not backend.capabilities.supports_streaming:
            raise CapabilityError(
                "the quote server needs streaming quote serving, which "
                f"backend {backend.name!r} does not advertise; choose one "
                "with supports_streaming (`repro-cds backends` lists them)"
            )
        # The risk engine's pricing session binds the book once and owns
        # the base state; quote_rows() is the shared negotiated path.
        self.engine = ScenarioRiskEngine(
            book,
            scenario=scenario,
            n_cards=n_cards,
            n_engines=n_engines,
            scheduler=self.scheduler,
            link=self.link,
            backend=backend,
            telemetry=self.telemetry,
        )
        # Per-dispatch economics come from the backend's cost-model hook.
        self.cost_model = self.engine.session.dispatch_cost_model(
            self.engine.scenario,
            self.engine.yield_curve,
            self.engine.hazard_curve,
            n_engines=n_engines,
        )
        self._notionals = book.notionals
        self._base_pv = self.engine.base_pv
        #: Resilience summary of the most recent faulted :meth:`serve`
        #: (``None`` after a fault-free replay).
        self.last_fault_report: FaultReport | None = None

    @property
    def book(self) -> Portfolio:
        """The served book."""
        return self.engine.portfolio

    @property
    def n_positions(self) -> int:
        """Book size."""
        return len(self.engine.portfolio)

    # ------------------------------------------------------------------
    def _check_request(self, req: PricingRequest) -> None:
        if any(r >= self.tape.n_scenarios for r in req.rows):
            raise ValidationError(
                f"request {req.request_id} references market row beyond the "
                f"{self.tape.n_scenarios}-state tape"
            )
        if req.option_index is not None and req.option_index >= self.n_positions:
            raise ValidationError(
                f"request {req.request_id} quotes option {req.option_index} "
                f"beyond the {self.n_positions}-position book"
            )

    def _values(
        self,
        requests: Sequence[PricingRequest],
        rows: Sequence[int],
        spreads: np.ndarray,
        pv: np.ndarray,
    ) -> list[float]:
        """Per-request answers from the batch's quote surfaces.

        Every value depends only on the request's own rows, so the batch
        decomposition never changes the numbers.
        """
        pos = {row: i for i, row in enumerate(rows)}
        pnl_rows = None
        if any(req.kind != "quote" for req in requests):
            # Per-row pairwise reduction, NOT a matrix-vector product:
            # BLAS picks different kernels for different matrix heights,
            # which would break the batched == individual bit-identity
            # pin.  Skipped entirely for all-quote batches.
            pnl_rows = np.sum(
                (pv - self._base_pv[None, :]) * self._notionals[None, :], axis=1
            )
        values: list[float] = []
        for req in requests:
            if req.kind == "quote":
                values.append(float(spreads[pos[req.rows[0]], req.option_index]))
            elif req.kind == "reval":
                values.append(float(pnl_rows[pos[req.rows[0]]]))
            else:  # var
                pnl = pnl_rows[[pos[r] for r in req.rows]]
                values.append(value_at_risk(pnl, confidence=VAR_CONFIDENCE))
        return values

    def price_individually(
        self, requests: Sequence[PricingRequest]
    ) -> list[float]:
        """Reference path: one kernel call per request, no coalescing.

        The property suite pins :meth:`serve`'s batched values
        bit-identical to this.
        """
        values: list[float] = []
        for req in requests:
            self._check_request(req)
            rows = tuple(sorted(set(req.rows)))
            spreads, pv = self.engine.quote_rows(
                self.tape, rows, chunk_size=self.chunk_size
            )
            values.extend(self._values([req], rows, spreads, pv))
        return values

    # ------------------------------------------------------------------
    def _batch_weights(self, batch: MicroBatch) -> dict[int, int]:
        """Row weights: the kernel cells each deduplicated row costs.

        The union of what the row's requests need (a reval/var wants the
        whole book, quotes want their distinct contracts), never a sum:
        the card prices each row once however many requests share it.
        """
        wanted: dict[int, set[int] | None] = {r: set() for r in batch.rows}
        for req in batch.requests:
            for r in req.rows:
                if req.kind == "quote" and wanted[r] is not None:
                    wanted[r].add(req.option_index)
                elif req.kind != "quote":
                    wanted[r] = None  # the whole book
        return {
            r: self.n_positions if opts is None else len(opts)
            for r, opts in wanted.items()
        }

    def _run_batch(
        self,
        batch: MicroBatch,
        rig: ClusterTimingRig,
        metrics: MetricsRegistry,
    ) -> list[PricingResponse]:
        """Price one micro-batch and time it on the rig's resources."""
        rows = batch.rows
        weight = self._batch_weights(batch)
        assignment = self.scheduler.partition(
            [float(weight[r]) for r in rows], self.n_cards
        )
        validate_partition(assignment, len(rows))
        active = sum(1 for chunk in assignment if chunk)
        factor = self.link.contention_factor(active)

        # Host numerics: ONE negotiated call (one kernel call) for the
        # whole micro-batch; the card sharding above is timing-only.
        spreads, pv = self.engine.quote_rows(
            self.tape, rows, chunk_size=self.chunk_size
        )
        values = self._values(batch.requests, rows, spreads, pv)

        # Timing: heaviest chunks land on the least-busy cards (online
        # in-flight balancing), dispatches serialising through the host
        # resource before each card's busy-window reservation.
        chunks = sorted(
            (chunk for chunk in assignment if chunk),
            key=lambda chunk: -sum(weight[rows[i]] for i in chunk),
        )
        by_busy = sorted(
            range(self.n_cards), key=lambda c: (rig.cards[c].busy_until, c)
        )
        recorder = self.telemetry.recorder
        row_done: dict[int, float] = {}
        row_card: dict[int, int] = {}
        row_issued: dict[int, float] = {}
        row_start: dict[int, float] = {}
        for slot, chunk in enumerate(chunks):
            card_id = by_busy[slot]
            n_rows = len(chunk)
            n_cells = sum(weight[rows[i]] for i in chunk)
            window = rig.dispatch(
                batch.formed_s, card_id, n_rows, n_cells, contention=factor
            )
            issued_s = rig.last_host_window.done_s
            metrics.counter(
                "serving_card_rows_total", labels={"card": str(card_id)}
            ).inc(n_rows)
            metrics.counter(
                "serving_card_cells_total", labels={"card": str(card_id)}
            ).inc(n_cells)
            for i in chunk:
                row_done[rows[i]] = window.done_s
                row_card[rows[i]] = card_id
                if recorder.enabled:
                    row_issued[rows[i]] = issued_s
                    row_start[rows[i]] = window.start_s

        responses = []
        for req, value in zip(batch.requests, values):
            completion = max(row_done[r] for r in req.rows)
            if recorder.enabled:
                # Phase spans for the request's critical row — the one
                # whose card window completes last.  The four phases
                # tile [arrival, completion] with no gaps, so their
                # durations sum exactly to the reported latency.
                crit = max(req.rows, key=lambda r: (row_done[r], r))
                tid = req.request_id
                card = row_card[crit]
                recorder.record(
                    "coalesce", req.arrival_s, batch.formed_s,
                    track="requests", category="request", trace_id=tid,
                    kind=req.kind, args={"batch": batch.batch_id},
                )
                recorder.record(
                    "host_link", batch.formed_s, row_issued[crit],
                    track="requests", category="request", trace_id=tid,
                    kind=req.kind, args={"card": card},
                )
                recorder.record(
                    "card_queue", row_issued[crit], row_start[crit],
                    track="requests", category="request", trace_id=tid,
                    kind=req.kind, args={"card": card},
                )
                recorder.record(
                    "card_service", row_start[crit], completion,
                    track="requests", category="request", trace_id=tid,
                    kind=req.kind, args={"card": card},
                )
            responses.append(
                PricingResponse(
                    request_id=req.request_id,
                    kind=req.kind,
                    value=value,
                    arrival_s=req.arrival_s,
                    formed_s=batch.formed_s,
                    completion_s=completion,
                    latency_s=completion - req.arrival_s,
                    met_deadline=completion <= req.deadline_s,
                    batch_id=batch.batch_id,
                    cards=tuple(sorted({row_card[r] for r in req.rows})),
                    tenant=req.tenant,
                )
            )
        return responses

    def serve(
        self,
        requests: Sequence[PricingRequest],
        *,
        faults: "FaultPlan | None" = None,
        hedge: "HedgePolicy | None" = None,
        retry: "RetryPolicy | None" = None,
        monitor=None,
    ) -> ServingResult:
        """Replay a request trace through the server on the unified clock.

        Each request arrival is an event on one :class:`~repro.sim.
        Simulation`; its handler fires due linger timers, drains the
        in-flight window, reaps expired pending work, applies the
        admission bound, and offers the arrival to the coalescer.
        Dispatched batches reserve busy windows on the timing rig's host
        and card resources (see :meth:`_run_batch`).

        Parameters
        ----------
        requests:
            The offered load; sorted internally by arrival time.
        faults:
            Optional :class:`~repro.faults.FaultPlan`.  ``None`` or an
            empty plan takes exactly the legacy path (byte-identical
            output); a non-empty plan routes dispatch through the
            failure-aware layer (retries, breakers, degradation ladder
            — see :mod:`repro.serving.faulted`) and leaves the run's
            :class:`~repro.faults.FaultReport` on
            :attr:`last_fault_report`.
        hedge / retry:
            Fault-mode policies (ignored without an active plan);
            ``None`` picks defaults (hedging off, retry seeded from the
            plan).
        monitor:
            Optional :class:`~repro.monitor.Monitor`.  Attached to the
            replay's simulation before the event loop starts (the
            sampler rides trace hooks, so the event schedule — and
            therefore every reported number — is identical either way)
            and finalized against the result; the evaluation lands on
            ``monitor.result``.

        Returns
        -------
        ServingResult
            Latency/goodput/shed accounting plus the raw responses.
        """
        if not requests:
            raise ValidationError("request trace must be non-empty")
        trace = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        for req in trace:
            self._check_request(req)

        # One timing rig per replay: fresh host/card resources on a fresh
        # clock, busy windows priced by the session backend's cost model
        # (already calibrated at construction).
        rig = self.engine.session.timing_rig(
            self.engine.scenario,
            self.engine.yield_curve,
            self.engine.hazard_curve,
            n_cards=self.n_cards,
            link=self.link,
            cost_model=self.cost_model,
        )
        self.last_fault_report = None
        if faults is not None and not faults.is_empty:
            return self._serve_faulted(
                trace, rig, faults, hedge=hedge, retry=retry, monitor=monitor
            )
        sim = rig.sim
        coalescer = MicroBatchCoalescer(self.queue)
        in_flight = CompletionTracker()
        responses: list[PricingResponse] = []
        queue_sheds: list[ShedRecord] = []
        # One registry per replay: the run's tallies are named metrics,
        # not loose integers, so the roll-up below and the telemetry
        # publish read the same counters.
        metrics = MetricsRegistry()
        n_batches = metrics.counter(
            "serving_batches_total", "micro-batches dispatched"
        )
        batch_requests = metrics.counter(
            "serving_batch_requests_total", "requests carried by batches"
        )
        batch_rows = metrics.counter(
            "serving_batch_rows_total", "deduplicated market rows batched"
        )
        shed_queue = metrics.counter(
            "serving_requests_shed_queue_total", "arrivals shed on backpressure"
        )
        recorder = self.telemetry.recorder
        if monitor is not None:
            monitor.attach(sim, metrics, n_cards=self.n_cards)

        def run(batches: list[MicroBatch]) -> None:
            for batch in batches:
                done = self._run_batch(batch, rig, metrics)
                responses.extend(done)
                for resp in done:
                    in_flight.push(resp.completion_s)
                n_batches.inc()
                batch_requests.inc(batch.n_requests)
                batch_rows.inc(len(batch.rows))

        def on_arrival(req: PricingRequest) -> None:
            now = req.arrival_s
            run(coalescer.advance(now))
            # Drain *after* the linger sweep: batches it dispatched may
            # already have completed by this arrival, and counting them
            # as in-flight would shed requests from an idle server.
            in_flight.drain(now)
            # Expired pending requests can never be priced; reap them so
            # dead work does not trip the admission bound below.
            coalescer.reap(now)
            # Outstanding work = requests still pending in the coalescer
            # plus dispatched responses whose completion lies in the
            # future; the bounded queue sheds on the sum (backpressure).
            if coalescer.n_pending + len(in_flight) >= self.queue_depth:
                queue_sheds.append(ShedRecord(req, now, "queue_full"))
                shed_queue.inc()
                if recorder.enabled:
                    recorder.record(
                        "shed", now, now, track="server", category="request",
                        trace_id=req.request_id, kind=req.kind,
                        args={"reason": "queue_full"},
                    )
                return
            run(coalescer.offer(req))

        for req in trace:
            sim.schedule_at(
                req.arrival_s, on_arrival, payload=req, label="arrival"
            )
        sim.run()
        # The trace has ended; remaining linger timers fire past the last
        # arrival, so tail batches keep honest formation times.
        run(coalescer.flush())

        sheds = sorted(
            queue_sheds + list(coalescer.sheds), key=lambda s: s.time_s
        )
        if recorder.enabled:
            for shed in coalescer.sheds:
                recorder.record(
                    "shed", shed.time_s, shed.time_s, track="server",
                    category="request", trace_id=shed.request.request_id,
                    kind=shed.request.kind, args={"reason": shed.reason},
                )

        result = self._summarise(trace, responses, sheds, rig, metrics)
        if monitor is not None:
            monitor.finalize(result, telemetry=self.telemetry)
        return result

    # ------------------------------------------------------------------
    def _serve_faulted(
        self,
        trace: list[PricingRequest],
        rig: ClusterTimingRig,
        faults: "FaultPlan",
        *,
        hedge: "HedgePolicy | None",
        retry: "RetryPolicy | None",
        monitor=None,
    ) -> ServingResult:
        """The fault-mode replay loop (see :mod:`repro.serving.faulted`).

        Mirrors :meth:`serve`'s event loop with three additions: the
        degradation ladder sheds low-priority kinds while capacity is
        reduced, requests awaiting retry count toward the admission
        bound, and a second ``sim.run()`` drains retry events scheduled
        by tail batches.  Builds the run's :class:`~repro.faults.
        FaultReport` into :attr:`last_fault_report`.
        """
        from repro.faults.report import build_fault_report
        from repro.serving.faulted import DEGRADE_FRACTIONS, FaultedDispatcher

        sim = rig.sim
        coalescer = MicroBatchCoalescer(self.queue)
        in_flight = CompletionTracker()
        metrics = MetricsRegistry()
        n_batches = metrics.counter(
            "serving_batches_total", "micro-batches dispatched"
        )
        batch_requests = metrics.counter(
            "serving_batch_requests_total", "requests carried by batches"
        )
        batch_rows = metrics.counter(
            "serving_batch_rows_total", "deduplicated market rows batched"
        )
        shed_queue = metrics.counter(
            "serving_requests_shed_queue_total", "arrivals shed on backpressure"
        )
        recorder = self.telemetry.recorder
        dispatcher = FaultedDispatcher(
            self, rig, faults, retry=retry, hedge=hedge,
            metrics=metrics, in_flight=in_flight,
        )
        if monitor is not None:
            monitor.attach(
                sim, metrics, n_cards=self.n_cards, health=dispatcher.health
            )
        queue_sheds: list[ShedRecord] = []

        def run(batches: list[MicroBatch]) -> None:
            for batch in batches:
                dispatcher.run_batch(batch)
                n_batches.inc()
                batch_requests.inc(batch.n_requests)
                batch_rows.inc(len(batch.rows))

        def shed(req: PricingRequest, now: float, reason: ShedReason) -> None:
            queue_sheds.append(ShedRecord(req, now, reason))
            if reason is ShedReason.BACKPRESSURE:
                shed_queue.inc()
            else:
                dispatcher.counters.n_shed_degraded += 1
            if recorder.enabled:
                recorder.record(
                    "shed", now, now, track="server", category="request",
                    trace_id=req.request_id, kind=req.kind,
                    args={"reason": reason.value},
                )

        def on_arrival(req: PricingRequest) -> None:
            now = req.arrival_s
            run(coalescer.advance(now))
            in_flight.drain(now)
            coalescer.reap(now)
            # Outstanding work now includes requests parked for retry:
            # they are in neither the coalescer nor the in-flight window,
            # but they hold real capacity.
            outstanding = (
                coalescer.n_pending + len(in_flight) + dispatcher.n_outstanding
            )
            if outstanding >= self.queue_depth:
                shed(req, now, ShedReason.BACKPRESSURE)
                return
            # Degradation ladder: while capacity is reduced, shed the
            # low-priority tiers at a fraction of the admission bound —
            # var refreshes go first, quotes keep the full queue.
            if dispatcher.health.capacity_reduced(now):
                frac = DEGRADE_FRACTIONS[req.kind]
                if frac < 1.0 and outstanding >= frac * self.queue_depth:
                    shed(req, now, ShedReason.DEGRADED)
                    return
            run(coalescer.offer(req))

        for req in trace:
            sim.schedule_at(
                req.arrival_s, on_arrival, payload=req, label="arrival"
            )
        sim.run()
        run(coalescer.flush())
        # Tail batches may have scheduled retries past the last arrival.
        sim.run()

        responses = dispatcher.responses
        fails = sorted(dispatcher.fails, key=lambda f: f.time_s)
        sheds = sorted(
            queue_sheds + list(coalescer.sheds), key=lambda s: s.time_s
        )
        if recorder.enabled:
            for rec in coalescer.sheds:
                recorder.record(
                    "shed", rec.time_s, rec.time_s, track="server",
                    category="request", trace_id=rec.request.request_id,
                    kind=rec.request.kind, args={"reason": str(rec.reason)},
                )

        counters = dispatcher.counters
        counters.n_breaker_trips = dispatcher.breakers.n_trips
        counters.n_breaker_probes = dispatcher.breakers.n_probes
        metrics.counter(
            "serving_retries_total", "failed dispatches re-dispatched"
        ).inc(counters.n_retries)
        metrics.counter(
            "serving_hedges_total", "duplicate straggler dispatches"
        ).inc(counters.n_hedges)
        metrics.counter(
            "serving_breaker_trips_total", "circuit-breaker open transitions"
        ).inc(counters.n_breaker_trips)
        metrics.counter(
            "serving_requests_failed_total", "requests failed after retries"
        ).inc(counters.n_failed_requests)
        metrics.counter(
            "serving_requests_shed_degraded_total",
            "arrivals shed by the degradation ladder",
        ).inc(counters.n_shed_degraded)

        result = self._summarise(
            trace, responses, sheds, rig, metrics,
            n_failed=len(fails), fails=fails,
        )
        # Phase boundaries live on the sim clock (t=0), so the report
        # span is the last completion instant, not the arrival-relative
        # span_seconds — otherwise the tail completions fall outside
        # every phase.
        span = max((r.completion_s for r in responses), default=0.0)
        self.last_fault_report = build_fault_report(
            faults,
            dispatcher.health,
            [(r.completion_s, r.latency_s) for r in responses],
            counters,
            span_s=span,
        )
        if monitor is not None:
            monitor.finalize(result, plan=faults, telemetry=self.telemetry)
        return result

    def _summarise(
        self,
        trace: list[PricingRequest],
        responses: list[PricingResponse],
        sheds: list[ShedRecord],
        rig: ClusterTimingRig,
        metrics: MetricsRegistry,
        n_failed: int = 0,
        fails: list = (),
    ) -> ServingResult:
        n_offered = len(trace)
        n_completed = len(responses)
        met = sum(1 for r in responses if r.met_deadline)
        shed_queue = int(
            metrics.counter("serving_requests_shed_queue_total").value
        )
        shed_deadline = sum(
            1 for s in sheds if s.reason is ShedReason.DEADLINE
        )
        if responses:
            span = max(r.completion_s for r in responses) - trace[0].arrival_s
        else:
            span = 0.0
        latency = LatencyStats.from_latencies(
            np.asarray([r.latency_s for r in responses])
        )
        card_loads = tuple(
            CardLoad(
                card_id=card_id,
                dispatches=resource.n_reservations,
                n_rows=int(
                    metrics.counter(
                        "serving_card_rows_total",
                        labels={"card": str(card_id)},
                    ).value
                ),
                n_cells=int(
                    metrics.counter(
                        "serving_card_cells_total",
                        labels={"card": str(card_id)},
                    ).value
                ),
                busy_seconds=resource.busy_seconds,
                utilisation=resource.utilisation(span),
            )
            for card_id, resource in enumerate(rig.cards)
        )
        n_batches = int(metrics.counter("serving_batches_total").value)
        batch_requests = metrics.counter("serving_batch_requests_total").value
        batch_rows = metrics.counter("serving_batch_rows_total").value
        result = ServingResult(
            n_offered=n_offered,
            n_completed=n_completed,
            n_shed_queue=shed_queue,
            n_shed_deadline=shed_deadline,
            n_deadline_met=met,
            n_late=n_completed - met,
            span_seconds=span,
            throughput_rps=n_completed / span if span > 0 else 0.0,
            goodput_rps=met / span if span > 0 else 0.0,
            shed_rate=len(sheds) / n_offered,
            deadline_hit_rate=met / n_completed if n_completed else 0.0,
            latency=latency,
            n_dispatches=n_batches,
            mean_batch_requests=batch_requests / n_batches if n_batches else 0.0,
            mean_batch_rows=batch_rows / n_batches if n_batches else 0.0,
            cards=card_loads,
            responses=tuple(responses),
            sheds=tuple(sheds),
            n_failed=n_failed,
            fails=tuple(fails),
        )
        self._publish(result, metrics, rig)
        return result

    def _publish(
        self,
        result: ServingResult,
        metrics: MetricsRegistry,
        rig: ClusterTimingRig,
    ) -> None:
        """Fold a replay's tallies into the server's telemetry handle.

        Skipped for the shared no-op handle so un-instrumented runs
        leave no global state behind.  Counters add across replays;
        gauges describe the latest one.
        """
        if self.telemetry is NULL_TELEMETRY:
            return
        out = self.telemetry.metrics
        out.absorb(metrics)
        out.counter(
            "serving_requests_offered_total", "requests offered to the server"
        ).inc(result.n_offered)
        out.counter(
            "serving_requests_completed_total", "requests answered"
        ).inc(result.n_completed)
        out.counter(
            "serving_requests_shed_deadline_total", "pending requests expired"
        ).inc(result.n_shed_deadline)
        out.counter(
            "serving_deadline_met_total", "responses inside their deadline"
        ).inc(result.n_deadline_met)
        out.histogram(
            "serving_latency_seconds", "per-request latency (simulated)"
        ).observe_many(r.latency_s for r in result.responses)
        out.gauge(
            "serving_span_seconds", "first arrival to last completion"
        ).set(result.span_seconds)
        out.gauge("serving_throughput_rps", "completions per second").set(
            result.throughput_rps
        )
        out.gauge("serving_goodput_rps", "in-deadline completions per second").set(
            result.goodput_rps
        )
        out.gauge("serving_shed_rate", "shed fraction of offered load").set(
            result.shed_rate
        )
        out.gauge(
            "serving_host_busy_seconds", "simulated host-thread busy time"
        ).set(rig.host.busy_seconds)
        for card_id, resource in enumerate(rig.cards):
            out.gauge(
                "serving_card_busy_seconds",
                "simulated card busy time",
                labels={"card": str(card_id)},
            ).set(resource.busy_seconds)
            out.gauge(
                "serving_card_utilisation",
                "busy fraction of the serving span",
                labels={"card": str(card_id)},
            ).set(resource.utilisation(result.span_seconds))
