"""Failure-aware micro-batch dispatch: retries, hedging, breakers.

This module is the serving engine's fault-mode twin of
``QuoteServer._run_batch``.  The legacy path stays byte-identical under
an empty fault plan because :class:`FaultedDispatcher` is only
instantiated when a non-empty :class:`~repro.faults.FaultPlan` is in
play; everything here is additive.

The model, per micro-batch:

* **numerics run once** — one negotiated ``quote_rows`` call when the
  batch forms, exactly as fault-free.  Faults, retries and hedges only
  ever duplicate *simulated* card time; response values are bit-identical
  to the fault-free run.
* **dispatch is prospective** — before committing a card busy window the
  dispatcher peeks at where it would land.  Work reaching the head of a
  down card's queue fails immediately; a window a crash would cut short
  is charged as wasted work up to the crash instant and fails there.
* **failures retry with capped exponential backoff** — surviving rows of
  a failed chunk are re-dispatched over the currently healthy, breaker-
  admitted cards after a seeded full-jitter backoff; the retry budget is
  per dispatch group, and exhausting it turns the group's requests into
  :class:`~repro.serving.request.FailRecord`\\ s.
* **a per-card circuit breaker** (closed/open/half-open) stops the
  dispatcher hammering a card that keeps failing; open breakers divert
  work to the remaining cards, a half-open probe readmits one dispatch.
* **optional hedging** duplicates the slowest straggling chunk of a
  batch onto the fastest alternative card; the first finisher wins and
  the loser's window is charged to the duplicate-work ratio.

Conservation is the load-bearing invariant: every admitted request
finalises exactly once — as a response or a fail record — no matter how
many times its rows were re-dispatched.  The property suite pins
``offered == completed + shed + failed`` across schedulers × plans.
"""

from __future__ import annotations

import math

from repro.faults.breaker import BreakerBank
from repro.faults.health import ClusterHealth
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultCounters
from repro.faults.retry import HedgePolicy, RetryPolicy
from repro.serving.coalescer import MicroBatch
from repro.serving.request import FailRecord, PricingResponse, ShedReason

__all__ = ["FaultedDispatcher", "DEGRADE_FRACTIONS"]

#: Degradation ladder: while cluster capacity is reduced, a kind is shed
#: once outstanding work exceeds this fraction of the admission bound —
#: the mini VaR refreshes go first, latency-critical quotes last.
DEGRADE_FRACTIONS = {"quote": 1.0, "reval": 0.5, "var": 0.25}


class _BatchState:
    """Mutable progress of one micro-batch through faulted dispatch."""

    __slots__ = ("batch", "values", "weight", "row_done", "row_card",
                 "failed", "pending", "attempts", "finalised")

    def __init__(self, batch: MicroBatch, values: list[float],
                 weight: dict[int, int]) -> None:
        self.batch = batch
        self.values = values
        self.weight = weight
        self.row_done: dict[int, float] = {}
        self.row_card: dict[int, int] = {}
        self.failed: dict[int, tuple[float, ShedReason]] = {}
        self.pending: set[int] = set(batch.rows)
        self.attempts = 1
        self.finalised = False


class FaultedDispatcher:
    """Drives micro-batches through a faulted cluster on the sim clock.

    Parameters
    ----------
    server:
        The owning :class:`~repro.serving.engine.QuoteServer` (numerics,
        scheduler, link and cost model are borrowed from it).
    rig:
        The replay's timing rig; host-link outages from the plan are
        registered as downtime on its host resource here.
    plan:
        The (non-empty) fault plan.
    retry / hedge:
        Policies; ``None`` picks the defaults (retry seeded from the
        plan, hedging disabled).
    metrics:
        The replay's metrics registry (per-card row/cell counters).
    in_flight:
        The admission controller's completion tracker; finalised
        responses are pushed as their completion becomes known.
    """

    def __init__(self, server, rig, plan: FaultPlan, *,
                 retry: RetryPolicy | None, hedge: HedgePolicy | None,
                 metrics, in_flight) -> None:
        self.server = server
        self.rig = rig
        self.sim = rig.sim
        self.plan = plan
        self.health = ClusterHealth(plan, server.n_cards)
        self.breakers = BreakerBank(server.n_cards)
        self.retry = retry if retry is not None else RetryPolicy(seed=plan.seed)
        self.hedge = hedge if hedge is not None else HedgePolicy(enabled=False)
        self.metrics = metrics
        self.in_flight = in_flight
        self.counters = FaultCounters()
        self.responses: list[PricingResponse] = []
        self.fails: list[FailRecord] = []
        #: Requests dispatched whose terminal state is not yet known —
        #: part of the admission controller's outstanding count.
        self.n_outstanding = 0
        # The host link cannot issue dispatches during an outage window;
        # Resource downtime models that directly.
        for outage in plan.link_outages:
            rig.host.add_downtime(outage.at_s, outage.until_s)
        self._record_fault_spans()

    def _record_fault_spans(self) -> None:
        """Mirror the plan's events as spans on a dedicated trace track."""
        recorder = self.server.telemetry.recorder
        if not recorder.enabled:
            return
        for event in self.plan.events:
            end = getattr(event, "down_until_s", None)
            if end is None:
                end = event.until_s
            if math.isinf(end):
                end = event.at_s  # permanent: render as an instant
            name = f"fault:{event.spec().split(':', 1)[0]}"
            recorder.record(
                name, event.at_s, end, track="faults", category="fault",
                args={"spec": event.spec()},
            )

    # ------------------------------------------------------------------
    def run_batch(self, batch: MicroBatch) -> None:
        """Price a batch (numerics once) and start its faulted dispatch."""
        weight = self.server._batch_weights(batch)
        rows = batch.rows
        spreads, pv = self.server.engine.quote_rows(
            self.server.tape, rows, chunk_size=self.server.chunk_size
        )
        values = self.server._values(batch.requests, rows, spreads, pv)
        state = _BatchState(batch, values, weight)
        self.n_outstanding += len(batch.requests)
        self._dispatch(state, list(rows), batch.formed_s, attempt=0)

    # ------------------------------------------------------------------
    def _dispatch(self, state: _BatchState, rows: list[int], t: float,
                  attempt: int) -> None:
        """Dispatch ``rows`` (one attempt) over healthy, admitted cards."""
        rows = [r for r in rows if r in state.pending]
        if not rows:
            return
        state.attempts = max(state.attempts, attempt + 1)
        healthy = self.health.healthy_cards(t)
        allowed = self.breakers.allowed_cards(healthy, t)
        if not allowed:
            reason = (
                ShedReason.BREAKER_OPEN if healthy else ShedReason.CARD_FAILURE
            )
            self._retry_or_fail(state, rows, t, attempt, reason)
            return

        weights = [float(state.weight[r]) for r in rows]
        sub = self.server.scheduler.partition(weights, len(allowed))
        chunks = sorted(
            (chunk for chunk in sub if chunk),
            key=lambda chunk: -sum(weights[i] for i in chunk),
        )
        by_busy = sorted(
            allowed, key=lambda c: (self.rig.cards[c].busy_until, c)
        )
        factor = self.server.link.contention_factor(len(chunks))

        successes: list[tuple[list[int], int, float, float]] = []
        failures: list[tuple[list[int], float]] = []
        for slot, chunk in enumerate(chunks):
            card = by_busy[slot]
            chunk_rows = [rows[i] for i in chunk]
            n_cells = sum(state.weight[r] for r in chunk_rows)
            outcome = self._dispatch_chunk(
                chunk_rows, card, t, n_cells, factor
            )
            if outcome[0] == "fail":
                failures.append((chunk_rows, outcome[1]))
            else:
                successes.append((chunk_rows, card, outcome[1], outcome[2]))
        self._maybe_hedge(state, successes, by_busy, t, factor)
        for chunk_rows, card, done_s, _ in successes:
            for r in chunk_rows:
                state.row_done[r] = done_s
                state.row_card[r] = card
                state.pending.discard(r)
        for chunk_rows, fail_s in failures:
            self._retry_or_fail(
                state, chunk_rows, fail_s, attempt, ShedReason.CARD_FAILURE
            )
        self._maybe_finalise(state)

    def _dispatch_chunk(self, chunk_rows: list[int], card: int, t: float,
                        n_cells: int, factor: float):
        """One chunk onto one card.

        Returns ``("ok", done_s, service_s)`` for a committed window or
        ``("fail", fail_s)`` when the dispatch died (card already down
        at its queue head, or a crash cut the window short).
        """
        host = self.rig.host
        link_factor = self.health.link_factor(host.peek_start(t))
        issue = host.reserve(
            t, self.server.link.dispatch_seconds(1) * link_factor
        )
        card_res = self.rig.cards[card]
        start = max(issue.done_s, card_res.busy_until)
        base = self.server.cost_model.service_seconds(
            len(chunk_rows), n_cells, contention=factor
        )
        breaker = self.breakers[card]
        if self.health.card_down(card, start):
            # The card died before this work reached the head of its
            # queue; the host dispatch is the only wasted time.
            self.counters.n_failed_dispatches += 1
            self.counters.wasted_work_s += issue.service_s
            breaker.record_failure(start)
            return ("fail", start)
        slow = self.health.service_factor(card, start, base)
        service = base * slow
        crash_s = self.health.crash_during(card, start, start + service)
        if crash_s is not None:
            # Mid-window crash: the card genuinely burned [start, crash)
            # before dying, so reserve exactly that truncated window.
            card_res.reserve(issue.done_s, crash_s - start)
            self.counters.n_failed_dispatches += 1
            self.counters.wasted_work_s += (crash_s - start) + issue.service_s
            breaker.record_failure(crash_s)
            return ("fail", crash_s)
        window = card_res.reserve(issue.done_s, service)
        self.counters.useful_work_s += service
        breaker.record_success(window.done_s)
        self.metrics.counter(
            "serving_card_rows_total", labels={"card": str(card)}
        ).inc(len(chunk_rows))
        self.metrics.counter(
            "serving_card_cells_total", labels={"card": str(card)}
        ).inc(n_cells)
        return ("ok", window.done_s, service)

    def _maybe_hedge(self, state: _BatchState, successes, by_busy,
                     t: float, factor: float) -> None:
        """Duplicate the slowest straggling chunk; first finisher wins."""
        if not self.hedge.enabled or len(successes) < 2 or len(by_busy) < 2:
            return
        budget = self.hedge.max_hedges_per_batch
        dones = sorted(d for _, _, d, _ in successes)
        # Lower median: with two chunks the straggler is judged against
        # the faster one, otherwise no two-card cluster could ever hedge.
        median = dones[(len(dones) - 1) // 2]
        order = sorted(
            range(len(successes)), key=lambda i: -successes[i][2]
        )
        for i in order:
            if budget <= 0:
                break
            chunk_rows, card, done_s, service_s = successes[i]
            if not self.hedge.should_hedge(done_s, median, state.batch.formed_s):
                continue
            alt = next((c for c in by_busy if c != card), None)
            if alt is None:
                continue
            budget -= 1
            self.counters.n_hedges += 1
            n_cells = sum(state.weight[r] for r in chunk_rows)
            hedged = self._dispatch_chunk(chunk_rows, alt, t, n_cells, factor)
            if hedged[0] == "fail":
                continue
            _, hedge_done, hedge_service = hedged
            if hedge_done < done_s:
                # The hedge won: the primary window becomes the waste.
                self.counters.n_hedge_wins += 1
                self.counters.useful_work_s -= service_s
                self.counters.wasted_work_s += service_s
                successes[i] = (chunk_rows, alt, hedge_done, hedge_service)
            else:
                self.counters.useful_work_s -= hedge_service
                self.counters.wasted_work_s += hedge_service

    # ------------------------------------------------------------------
    def _retry_or_fail(self, state: _BatchState, rows: list[int], t: float,
                       attempt: int, reason: ShedReason) -> None:
        """Back off and re-dispatch, or mark the rows' requests failed."""
        next_attempt = attempt + 1
        if self.retry.exhausted(next_attempt):
            for r in rows:
                state.failed[r] = (t, reason)
                state.pending.discard(r)
            state.attempts = max(state.attempts, next_attempt)
            self._maybe_finalise(state)
            return
        delay = self.retry.backoff_s(next_attempt)
        self.counters.n_retries += 1
        # Batches can form (and fail) at instants the coalescer flushed
        # retroactively, so the retry must not land before the clock.
        retry_s = max(t + delay, self.sim.clock.now)
        self.sim.schedule_at(
            retry_s,
            self._on_retry,
            payload=(state, tuple(rows), retry_s, next_attempt),
            label="fault-retry",
        )

    def _on_retry(self, payload) -> None:
        state, rows, t, attempt = payload
        self._dispatch(state, list(rows), t, attempt)

    def _maybe_finalise(self, state: _BatchState) -> None:
        """Emit terminal records once every row is done or failed."""
        if state.pending or state.finalised:
            return
        state.finalised = True
        batch = state.batch
        for req, value in zip(batch.requests, state.values):
            failed = [r for r in req.rows if r in state.failed]
            if failed:
                fail_s = max(state.failed[r][0] for r in failed)
                reason = state.failed[max(failed, key=lambda r: state.failed[r][0])][1]
                self.fails.append(
                    FailRecord(
                        request=req,
                        time_s=fail_s,
                        attempts=state.attempts,
                        reason=reason,
                    )
                )
                self.counters.n_failed_requests += 1
            else:
                completion = max(state.row_done[r] for r in req.rows)
                self.responses.append(
                    PricingResponse(
                        request_id=req.request_id,
                        kind=req.kind,
                        value=value,
                        arrival_s=req.arrival_s,
                        formed_s=batch.formed_s,
                        completion_s=completion,
                        latency_s=completion - req.arrival_s,
                        met_deadline=completion <= req.deadline_s,
                        batch_id=batch.batch_id,
                        cards=tuple(sorted({state.row_card[r] for r in req.rows})),
                        tenant=req.tenant,
                    )
                )
                self.in_flight.push(completion)
        self.n_outstanding -= len(batch.requests)
