"""Latency, goodput and shed accounting for serving runs.

Everything here is aggregation over :class:`~repro.serving.request.
PricingResponse` / :class:`~repro.serving.request.ShedRecord` streams in
*simulated* time.  The headline numbers mirror what a real serving stack
is judged on: tail latency (p50/p95/p99), **goodput** (only responses
that met their deadline count), and the shed rate (how much offered load
the admission controller and the deadline reaper dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.serving.request import (
    FailRecord,
    PricingResponse,
    ShedReason,
    ShedRecord,
)

__all__ = ["LatencyStats", "CardLoad", "ServingResult", "KindStats",
           "per_kind_stats"]

#: Canonical request-kind ordering for per-workload breakdowns.
_KIND_ORDER = ("quote", "reval", "var")


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of a latency sample.

    Attributes
    ----------
    n:
        Sample size (all other fields are 0 when empty).
    mean_s / p50_s / p95_s / p99_s / max_s:
        The usual serving percentiles, in seconds.
    """

    n: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_latencies(
        cls, latencies_s: np.ndarray, *, empty: str = "zero"
    ) -> "LatencyStats":
        """Summarise a latency vector.

        Degenerate samples have an explicit contract:

        * **empty** vectors follow ``empty``: ``"zero"`` (default, the
          historical behaviour — every field 0), ``"nan"`` (``n=0`` with
          NaN statistics, so an empty sample can never be mistaken for a
          fast one), or ``"raise"`` (:class:`~repro.errors.
          ValidationError`);
        * **single-sample** vectors are well-defined, not special-cased:
          every percentile, the mean and the max equal the one sample.

        Parameters
        ----------
        latencies_s:
            Latency vector in seconds (all values must be >= 0).
        empty:
            Policy for zero-length input: ``"zero"``, ``"nan"`` or
            ``"raise"``.
        """
        if empty not in ("zero", "nan", "raise"):
            raise ValidationError(
                f"unknown empty policy {empty!r}; "
                f"choose from ['nan', 'raise', 'zero']"
            )
        lat = np.asarray(latencies_s, dtype=np.float64)
        if lat.size == 0:
            if empty == "raise":
                raise ValidationError("cannot summarise an empty latency sample")
            fill = float("nan") if empty == "nan" else 0.0
            return cls(
                n=0, mean_s=fill, p50_s=fill, p95_s=fill, p99_s=fill, max_s=fill
            )
        if np.any(np.isnan(lat)):
            raise ValidationError("latencies must not contain NaN")
        if np.any(lat < 0):
            raise ValidationError("latencies must be >= 0")
        return cls(
            n=int(lat.size),
            mean_s=float(lat.mean()),
            p50_s=float(np.percentile(lat, 50)),
            p95_s=float(np.percentile(lat, 95)),
            p99_s=float(np.percentile(lat, 99)),
            max_s=float(lat.max()),
        )

    def summary(self) -> str:
        """One-line percentile rendering in milliseconds."""
        return (
            f"p50 {self.p50_s * 1e3:.3f} ms / p95 {self.p95_s * 1e3:.3f} ms / "
            f"p99 {self.p99_s * 1e3:.3f} ms (max {self.max_s * 1e3:.3f} ms, "
            f"n={self.n})"
        )


@dataclass(frozen=True)
class CardLoad:
    """One card's share of a serving run.

    Attributes
    ----------
    card_id:
        Which card.
    dispatches:
        Micro-batch chunks this card served.
    n_rows / n_cells:
        Market-state rows transferred and kernel cells priced.
    busy_seconds:
        Total card busy time.
    utilisation:
        Busy fraction of the run span (0 for idle cards).
    """

    card_id: int
    dispatches: int
    n_rows: int
    n_cells: int
    busy_seconds: float
    utilisation: float

    @property
    def idle(self) -> bool:
        """Whether this card served nothing."""
        return self.dispatches == 0


@dataclass(frozen=True)
class ServingResult:
    """Aggregate outcome of one simulated serving run.

    Attributes
    ----------
    n_offered / n_completed:
        Requests offered to the server and requests actually priced.
    n_shed_queue / n_shed_deadline:
        Drops at admission (bounded queue) and at batch formation
        (expired deadline).
    n_deadline_met / n_late:
        Completed responses inside / past their deadline.
    span_seconds:
        First arrival to last completion.
    throughput_rps / goodput_rps:
        Completed, and deadline-met, responses per second of span.
    shed_rate / deadline_hit_rate:
        Sheds over offered; met over completed.
    latency:
        Percentiles over completed responses.
    n_dispatches / mean_batch_requests / mean_batch_rows:
        Micro-batch shape: dispatched batches, mean requests and mean
        distinct market-state rows per batch.
    cards:
        Per-card roll-ups, including idle cards.
    n_failed:
        Requests admitted but failed despite retries (fault-injection
        runs only; always 0 otherwise).
    responses / sheds / fails:
        The raw per-request outcomes; excluded from equality comparisons.
    """

    n_offered: int
    n_completed: int
    n_shed_queue: int
    n_shed_deadline: int
    n_deadline_met: int
    n_late: int
    span_seconds: float
    throughput_rps: float
    goodput_rps: float
    shed_rate: float
    deadline_hit_rate: float
    latency: LatencyStats
    n_dispatches: int
    mean_batch_requests: float
    mean_batch_rows: float
    cards: tuple[CardLoad, ...]
    responses: tuple[PricingResponse, ...] = field(
        default=(), compare=False, repr=False
    )
    sheds: tuple[ShedRecord, ...] = field(default=(), compare=False, repr=False)
    n_failed: int = 0
    fails: tuple[FailRecord, ...] = field(default=(), compare=False, repr=False)

    @property
    def n_shed(self) -> int:
        """Total requests dropped."""
        return self.n_shed_queue + self.n_shed_deadline + self.n_shed_other

    @property
    def n_shed_other(self) -> int:
        """Sheds beyond backpressure/deadline (degradation ladder etc.)."""
        known = (ShedReason.BACKPRESSURE, ShedReason.DEADLINE)
        return sum(1 for s in self.sheds if s.reason not in known)

    def shed_reason_counts(self) -> dict[str, int]:
        """Sheds and failures per typed reason, in declaration order.

        Only reasons that actually occurred appear, so zero-fault runs
        report exactly the historical ``queue_full``/``deadline`` pair
        (or nothing).
        """
        counts: dict[str, int] = {}
        for reason in ShedReason:
            n = sum(1 for s in self.sheds if s.reason is reason)
            n += sum(1 for f in self.fails if f.reason is reason)
            if n:
                counts[reason.value] = n
        return counts

    def summary(self) -> str:
        """One-line aggregate summary."""
        return (
            f"served {self.n_completed}/{self.n_offered} requests in "
            f"{self.n_dispatches} micro-batches "
            f"(mean {self.mean_batch_requests:.1f} req/batch): "
            f"goodput {self.goodput_rps:,.0f} req/s, "
            f"latency {self.latency.summary()}, "
            f"shed {self.shed_rate:.1%}"
        )

    def render(self) -> str:
        """Multi-line report with the per-card table.

        Fault-only lines (failed requests, extra shed reasons) render
        only when nonzero, so fault-free output is unchanged.
        """
        shed_bits = (
            f"({self.n_shed_queue} queue-full, {self.n_shed_deadline} deadline"
        )
        if self.n_shed_other:
            shed_bits += f", {self.n_shed_other} degraded/other"
        shed_bits += ")"
        lines = [
            f"  completed {self.n_completed}/{self.n_offered} "
            f"({self.n_deadline_met} in deadline, {self.n_late} late), "
            f"shed {self.n_shed} " + shed_bits
            + (f", failed {self.n_failed}" if self.n_failed else ""),
            f"  goodput {self.goodput_rps:,.0f} req/s, throughput "
            f"{self.throughput_rps:,.0f} req/s over {self.span_seconds:.3f} s "
            f"(shed rate {self.shed_rate:.1%}, "
            f"hit rate {self.deadline_hit_rate:.1%})",
            f"  latency {self.latency.summary()}",
            f"  {self.n_dispatches} micro-batches: mean "
            f"{self.mean_batch_requests:.1f} requests / "
            f"{self.mean_batch_rows:.1f} market rows per batch",
            f"  {'Card':>4} {'Batches':>8} {'Rows':>8} {'Cells':>10} "
            f"{'Busy(s)':>9} {'Util':>6}",
        ]
        for c in self.cards:
            lines.append(
                f"  {c.card_id:>4} {c.dispatches:>8} {c.n_rows:>8} "
                f"{c.n_cells:>10} {c.busy_seconds:>9.4f} {c.utilisation:>6.1%}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class KindStats:
    """One request kind's share of a serving run.

    The per-workload view of a mixed replay: how the latency-sensitive
    quotes fared versus the periodic risk refreshes sharing the same
    cards.

    Attributes
    ----------
    kind:
        Request kind (``quote`` / ``reval`` / ``var``).
    n_offered / n_completed / n_shed:
        Offered requests of this kind, and how they ended (every offered
        request either completes, is shed, or — under faults — fails).
    n_failed:
        Requests of this kind that exhausted their retry budget
        (fault-injection runs only; always 0 otherwise).
    n_deadline_met:
        Completed responses inside their deadline.
    goodput_rps:
        Deadline-met responses per second of the *whole run's* span, so
        per-kind goodputs add up to the aggregate.
    deadline_hit_rate:
        Met over completed (0 when nothing completed).
    latency:
        Percentiles over this kind's completed responses.
    """

    kind: str
    n_offered: int
    n_completed: int
    n_shed: int
    n_deadline_met: int
    goodput_rps: float
    deadline_hit_rate: float
    latency: LatencyStats
    n_failed: int = 0


def per_kind_stats(result: ServingResult) -> tuple[KindStats, ...]:
    """Break a serving run down by request kind.

    Kinds appear in canonical order (``quote``, ``reval``, ``var``);
    kinds absent from the run are omitted.

    Parameters
    ----------
    result:
        A :class:`ServingResult` carrying its raw ``responses`` and
        ``sheds`` (the default; both are dropped only by hand).
    """
    kinds = {r.kind for r in result.responses}
    kinds.update(s.request.kind for s in result.sheds)
    kinds.update(f.request.kind for f in result.fails)
    ordered = [k for k in _KIND_ORDER if k in kinds]
    ordered += sorted(kinds.difference(_KIND_ORDER))
    span = result.span_seconds
    stats = []
    for kind in ordered:
        responses = [r for r in result.responses if r.kind == kind]
        n_shed = sum(1 for s in result.sheds if s.request.kind == kind)
        n_failed = sum(1 for f in result.fails if f.request.kind == kind)
        met = sum(1 for r in responses if r.met_deadline)
        stats.append(
            KindStats(
                kind=kind,
                n_offered=len(responses) + n_shed + n_failed,
                n_completed=len(responses),
                n_shed=n_shed,
                n_deadline_met=met,
                goodput_rps=met / span if span > 0 else 0.0,
                deadline_hit_rate=met / len(responses) if responses else 0.0,
                latency=LatencyStats.from_latencies(
                    np.asarray([r.latency_s for r in responses])
                ),
                n_failed=n_failed,
            )
        )
    return tuple(stats)
