"""Request and response types of the live quote-serving layer.

A :class:`PricingRequest` is one unit of client demand against the
serving system: a single-name quote, a whole-book revaluation or a
mini VaR refresh, each referencing one or more *market-state rows* of the
server's live :class:`~repro.risk.tensor.ScenarioTensor` tape.  Requests
carry an absolute deadline and a priority; the coalescer uses both when
forming micro-batches (priority orders admission into a full batch,
expired requests are shed instead of priced).

A :class:`PricingResponse` records the request's numerical answer next to
its full timing trace in *simulated* time — formation, completion,
latency, deadline outcome — which is what the serving metrics aggregate.
A :class:`ShedRecord` is the terminal state of a request the system chose
not to price, carrying a typed :class:`ShedReason`; a :class:`FailRecord`
is the terminal state of a request that was admitted and dispatched but
could not be completed despite retries (fault-injection runs only).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "REQUEST_KINDS",
    "SHED_REASONS",
    "ShedReason",
    "PricingRequest",
    "PricingResponse",
    "ShedRecord",
    "FailRecord",
]

#: The three request families the server prices.
REQUEST_KINDS: tuple[str, ...] = ("quote", "reval", "var")


class ShedReason(str, enum.Enum):
    """Why a request was dropped instead of priced.

    A ``str`` subclass so the wire values (``"queue_full"``,
    ``"deadline"``) stay exactly what they were before the enum existed
    — existing string comparisons and JSON output are unchanged.

    * :attr:`BACKPRESSURE` — bounded-queue backpressure at admission;
    * :attr:`DEADLINE` — expired while pending, dropped at formation;
    * :attr:`CARD_FAILURE` — retry budget exhausted against crashing
      cards (the request's :class:`FailRecord` mirrors this);
    * :attr:`BREAKER_OPEN` — every candidate card's circuit breaker was
      open at dispatch time;
    * :attr:`DEGRADED` — shed by the degradation ladder while cluster
      capacity was reduced (lowest-priority tiers go first);
    * :attr:`QUOTA` — rejected at the gateway by the tenant's admission
      token bucket, before ever reaching a server's bounded queue.
    """

    BACKPRESSURE = "queue_full"
    DEADLINE = "deadline"
    CARD_FAILURE = "card_failure"
    BREAKER_OPEN = "breaker_open"
    DEGRADED = "degraded"
    QUOTA = "quota"

    def __str__(self) -> str:  # keep f-strings on the wire value
        return self.value


#: Legal shed-reason wire values (kept for backward compatibility).
SHED_REASONS: tuple[str, ...] = tuple(r.value for r in ShedReason)


@dataclass(frozen=True)
class PricingRequest:
    """One client request against the serving system.

    Attributes
    ----------
    request_id:
        Unique identifier (responses and shed records refer back to it).
    kind:
        ``quote`` (par spread of one contract under one market state),
        ``reval`` (whole-book P&L under one market state) or ``var``
        (VaR over a handful of market states).
    arrival_s:
        Arrival time in simulated seconds.
    deadline_s:
        Absolute deadline; a response completing later is *late* (it does
        not count toward goodput), a request still queued past it is shed.
    rows:
        Market-state row indices into the server's scenario-tensor tape.
        ``quote``/``reval`` carry exactly one row, ``var`` one or more.
    option_index:
        Book position being quoted (``quote`` only).
    priority:
        Larger is more urgent; the coalescer fills a size-capped batch in
        priority order.
    tenant:
        Owning tenant's name, when the request entered through the
        multi-tenant gateway (``None`` for direct server traffic).
    """

    request_id: int
    kind: str
    arrival_s: float
    deadline_s: float
    rows: tuple[int, ...]
    option_index: int | None = None
    priority: int = 0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValidationError(
                f"unknown request kind {self.kind!r}; "
                f"choose from {sorted(REQUEST_KINDS)}"
            )
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ValidationError(
                f"arrival_s must be finite and >= 0, got {self.arrival_s}"
            )
        if not math.isfinite(self.deadline_s) or self.deadline_s <= self.arrival_s:
            raise ValidationError(
                f"deadline_s must exceed arrival_s, got {self.deadline_s} "
                f"vs arrival {self.arrival_s}"
            )
        if not self.rows or any(r < 0 for r in self.rows):
            raise ValidationError(
                "rows must be a non-empty tuple of non-negative indices"
            )
        if self.kind in ("quote", "reval") and len(self.rows) != 1:
            raise ValidationError(
                f"a {self.kind} request prices exactly one market state, "
                f"got {len(self.rows)} rows"
            )
        if self.kind == "quote":
            if self.option_index is None or self.option_index < 0:
                raise ValidationError(
                    "a quote request needs a non-negative option_index"
                )
        elif self.option_index is not None:
            raise ValidationError(
                f"option_index only applies to quote requests, not {self.kind!r}"
            )

    @property
    def n_rows(self) -> int:
        """Market-state rows this request prices."""
        return len(self.rows)

    def n_cells(self, n_positions: int) -> int:
        """Kernel (row, option) cells this request costs on a card.

        A quote prices one contract under one state; ``reval`` and
        ``var`` reprice the whole book per row.
        """
        if self.kind == "quote":
            return 1
        return self.n_rows * n_positions


@dataclass(frozen=True)
class PricingResponse:
    """The priced outcome of one request, with its simulated timing.

    Attributes
    ----------
    request_id / kind:
        Which request this answers.
    value:
        Quote: par spread in bps.  Reval: portfolio P&L against base.
        Var: rank-based VaR over the request's rows.
    arrival_s / formed_s / completion_s:
        Arrival, micro-batch formation, and completion times.
    latency_s:
        ``completion_s - arrival_s``.
    met_deadline:
        Whether the response completed by the request's deadline.
    batch_id:
        The micro-batch that priced it.
    cards:
        Cluster cards that priced this request's rows.
    tenant:
        Owning tenant's name (gateway traffic only; ``None`` otherwise).
    """

    request_id: int
    kind: str
    value: float
    arrival_s: float
    formed_s: float
    completion_s: float
    latency_s: float
    met_deadline: bool
    batch_id: int
    cards: tuple[int, ...]
    tenant: str | None = None


@dataclass(frozen=True)
class ShedRecord:
    """A request the server dropped instead of pricing.

    Attributes
    ----------
    request:
        The dropped request.
    time_s:
        When it was dropped.
    reason:
        A :class:`ShedReason`.  Plain strings matching a reason's wire
        value are accepted and normalised to the enum, so legacy call
        sites (``reason="queue_full"``) keep working.
    """

    request: PricingRequest
    time_s: float
    reason: ShedReason

    def __post_init__(self) -> None:
        if not isinstance(self.reason, ShedReason):
            try:
                object.__setattr__(self, "reason", ShedReason(self.reason))
            except ValueError:
                raise ValidationError(
                    f"unknown shed reason {self.reason!r}; "
                    f"choose from {sorted(SHED_REASONS)}"
                ) from None


@dataclass(frozen=True)
class FailRecord:
    """A request that was admitted but failed despite retries.

    Only fault-injection runs produce these: the request's rows were
    dispatched, the dispatches kept dying (card crashes, breaker-open
    rejections) and the retry budget ran out.  Failed requests are a
    third terminal state next to completed and shed — the conservation
    property counts all three exactly once.

    Attributes
    ----------
    request:
        The failed request.
    time_s:
        When the retry budget was exhausted.
    attempts:
        Dispatch attempts made (first try included).
    reason:
        :attr:`ShedReason.CARD_FAILURE` or :attr:`ShedReason.BREAKER_OPEN`.
    """

    request: PricingRequest
    time_s: float
    attempts: int
    reason: ShedReason = ShedReason.CARD_FAILURE

    def __post_init__(self) -> None:
        if not isinstance(self.reason, ShedReason):
            try:
                object.__setattr__(self, "reason", ShedReason(self.reason))
            except ValueError:
                raise ValidationError(
                    f"unknown failure reason {self.reason!r}; "
                    f"choose from {sorted(SHED_REASONS)}"
                ) from None
        if self.attempts < 1:
            raise ValidationError(
                f"attempts must be >= 1, got {self.attempts}"
            )
