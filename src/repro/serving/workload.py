"""Serving workload construction: market tapes and request streams.

Arrival *times* come from :mod:`repro.workloads.traffic` (Poisson,
bursty, diurnal); this module attaches the payloads: a request mix of
single-name quotes, whole-book revals and mini VaR refreshes, each
referencing rows of a shared market tape, with per-kind deadlines and
priorities (live quotes are tightest and most urgent, VaR refreshes the
most relaxed).
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.errors import ValidationError
from repro.risk.scenarios import monte_carlo
from repro.risk.tensor import ScenarioTensor
from repro.serving.request import PricingRequest
from repro.workloads.traffic import make_arrivals

__all__ = [
    "make_market_tape",
    "make_request_stream",
    "make_risk_refresh_stream",
]

#: Per-kind coalescer priority: quotes jump the queue, VaR waits.
KIND_PRIORITY = {"quote": 2, "reval": 1, "var": 0}


def make_market_tape(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    n_states: int,
    *,
    seed: int = 101,
) -> ScenarioTensor:
    """A dense tape of live market states around a base state.

    The states are correlated Monte Carlo draws
    (:func:`~repro.risk.scenarios.monte_carlo`), already lowered to the
    :class:`~repro.risk.tensor.ScenarioTensor` the batched kernel
    consumes — the serving analogue of a market-data cache fed by tick
    updates.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Base market state.
    n_states:
        Tape length (requests reference rows ``0 .. n_states - 1``).
    seed:
        Deterministic generator seed.
    """
    shocks = monte_carlo(yield_curve, hazard_curve, n_states, seed=seed)
    tensor = ScenarioTensor.from_scenario_set(shocks)
    return tensor


def make_request_stream(
    n_requests: int,
    *,
    rate_hz: float,
    n_states: int,
    n_positions: int,
    traffic: str = "poisson",
    mix: tuple[float, float, float] = (0.90, 0.08, 0.02),
    var_rows: int = 8,
    quote_deadline_s: tuple[float, float] = (5e-3, 2e-2),
    reval_deadline_s: tuple[float, float] = (2e-2, 5e-2),
    var_deadline_s: tuple[float, float] = (5e-2, 2e-1),
    seed: int = 17,
) -> list[PricingRequest]:
    """A seeded request trace over a market tape.

    Parameters
    ----------
    n_requests:
        Trace length.
    rate_hz:
        Offered arrival rate.
    n_states:
        Market-tape length requests sample rows from.
    n_positions:
        Book size (quote requests sample an option index).
    traffic:
        Arrival-process registry key (``poisson``, ``bursty``,
        ``diurnal``).
    mix:
        ``(quote, reval, var)`` probabilities; must sum to 1.
    var_rows:
        Market states per VaR refresh (capped at the tape length).
    quote_deadline_s / reval_deadline_s / var_deadline_s:
        Per-kind ``(lo, hi)`` relative-deadline ranges, sampled
        uniformly.
    seed:
        Deterministic seed for both arrival times and payloads.

    Returns
    -------
    list[PricingRequest]
        Requests in arrival order, ids ``0 .. n_requests - 1``.
    """
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    if n_states < 1 or n_positions < 1:
        raise ValidationError("n_states and n_positions must be >= 1")
    probs = np.asarray(mix, dtype=np.float64)
    if probs.shape != (3,) or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
        raise ValidationError(
            f"mix must be three non-negative probabilities summing to 1, got {mix}"
        )
    if var_rows < 1:
        raise ValidationError(f"var_rows must be >= 1, got {var_rows}")
    for name, (lo, hi) in (
        ("quote_deadline_s", quote_deadline_s),
        ("reval_deadline_s", reval_deadline_s),
        ("var_deadline_s", var_deadline_s),
    ):
        if not 0.0 < lo <= hi:
            raise ValidationError(f"{name} must satisfy 0 < lo <= hi, got {(lo, hi)}")

    times = make_arrivals(traffic, n_requests, rate_hz, seed=seed)
    gen = np.random.default_rng(seed + 1)
    kinds = gen.choice(("quote", "reval", "var"), size=n_requests, p=probs)
    deadline_range = {
        "quote": quote_deadline_s,
        "reval": reval_deadline_s,
        "var": var_deadline_s,
    }
    k_var = min(var_rows, n_states)
    requests: list[PricingRequest] = []
    for i, (t, kind) in enumerate(zip(times, kinds)):
        lo, hi = deadline_range[kind]
        deadline = float(t + gen.uniform(lo, hi))
        if kind == "var":
            rows = tuple(
                int(r) for r in np.sort(gen.choice(n_states, k_var, replace=False))
            )
        else:
            rows = (int(gen.integers(n_states)),)
        requests.append(
            PricingRequest(
                request_id=i,
                kind=str(kind),
                arrival_s=float(t),
                deadline_s=deadline,
                rows=rows,
                option_index=(
                    int(gen.integers(n_positions)) if kind == "quote" else None
                ),
                priority=KIND_PRIORITY[str(kind)],
            )
        )
    return requests


def make_risk_refresh_stream(
    n_refreshes: int,
    *,
    period_s: float,
    n_states: int,
    var_rows: int = 16,
    start_s: float | None = None,
    deadline_fraction: float = 0.8,
    request_id_base: int = 0,
    seed: int = 17,
) -> list[PricingRequest]:
    """A periodic stream of VaR-refresh requests.

    The risk desk's heartbeat on a shared cluster: one ``var`` request
    every ``period_s``, each re-measuring VaR over a fresh sample of
    market-tape rows.  A refresh is stale once its successor lands, so
    its deadline is a fraction of the period — contrast the per-request
    uniform deadlines of :func:`make_request_stream`.

    Merge the stream with a quote trace (ids offset via
    ``request_id_base``) and replay both through one
    :class:`~repro.serving.engine.QuoteServer` to study how periodic
    batch work rides alongside latency-sensitive traffic — the
    ``repro-cds simulate`` scenario.

    Parameters
    ----------
    n_refreshes:
        Stream length.
    period_s:
        Seconds between refreshes.
    n_states:
        Market-tape length rows are sampled from.
    var_rows:
        Market states per refresh (capped at the tape length).
    start_s:
        First refresh instant (default: one period in).
    deadline_fraction:
        Relative deadline as a fraction of the period, in ``(0, 1]``.
    request_id_base:
        Id of the first refresh (offset past the quote trace when
        merging streams — ids must be unique within one replay).
    seed:
        Deterministic seed for the row samples.

    Returns
    -------
    list[PricingRequest]
        Refreshes in arrival order, ids ``request_id_base ..
        request_id_base + n_refreshes - 1``.
    """
    if n_refreshes < 1:
        raise ValidationError(f"n_refreshes must be >= 1, got {n_refreshes}")
    if period_s <= 0:
        raise ValidationError(f"period_s must be > 0, got {period_s}")
    if n_states < 1:
        raise ValidationError(f"n_states must be >= 1, got {n_states}")
    if var_rows < 1:
        raise ValidationError(f"var_rows must be >= 1, got {var_rows}")
    if not 0.0 < deadline_fraction <= 1.0:
        raise ValidationError(
            f"deadline_fraction must be in (0, 1], got {deadline_fraction}"
        )
    start = start_s if start_s is not None else period_s
    if start < 0:
        raise ValidationError(f"start_s must be >= 0, got {start_s}")
    gen = np.random.default_rng(seed)
    k = min(var_rows, n_states)
    relative_deadline = deadline_fraction * period_s
    requests: list[PricingRequest] = []
    for i in range(n_refreshes):
        t = start + i * period_s
        rows = tuple(
            int(r) for r in np.sort(gen.choice(n_states, k, replace=False))
        )
        requests.append(
            PricingRequest(
                request_id=request_id_base + i,
                kind="var",
                arrival_s=t,
                deadline_s=t + relative_deadline,
                rows=rows,
                option_index=None,
                priority=KIND_PRIORITY["var"],
            )
        )
    return requests
