"""repro.sim — the unified discrete-event simulation core.

One clock for every simulated subsystem.  Before this package, three
layers each carried an ad-hoc clock: the cluster's per-card busy
windows, the quote server's ``busy_until`` / host-dispatch
serialisation, and the risk layer's grid-timing replay.  They are all
now expressions of two primitives:

* :class:`~repro.sim.engine.Simulation` — a monotone
  :class:`~repro.sim.events.Clock` plus an
  :class:`~repro.sim.events.EventQueue` (deterministic
  ``(time, priority, seq)`` ordering, O(1) cancellation) with trace
  hooks;
* :class:`~repro.sim.resources.Resource` — busy-window reservations
  (``start = max(ready, busy_until)``), the exact arithmetic of every
  legacy clock, which is what lets the timing-conformance suite pin the
  rebuilt layers bit-identical to their pre-refactor numbers.

:class:`~repro.sim.resources.Server` adds queued capacity-``k`` stations
(FIFO or priority) for process-style models, and
:class:`~repro.sim.resources.CompletionTracker` the in-flight window the
admission controller counts against.

See ``docs/sim.md`` for the mapping from each subsystem onto these
primitives.
"""

from repro.sim.engine import Process, Simulation
from repro.sim.events import Clock, Event, EventQueue
from repro.sim.resources import (
    CompletionTracker,
    Job,
    Reservation,
    Resource,
    Server,
)

__all__ = [
    "Clock",
    "CompletionTracker",
    "Event",
    "EventQueue",
    "Job",
    "Process",
    "Reservation",
    "Resource",
    "Server",
    "Simulation",
]
