"""The event loop: one clock, one queue, every subsystem.

:class:`Simulation` is the unified discrete-event core the cluster,
serving and risk layers all drive.  It deliberately stays small — a
:class:`~repro.sim.events.Clock`, a :class:`~repro.sim.events.EventQueue`
and trace hooks — because the three legacy clocks it replaced were all,
at bottom, the same two operations: *schedule something at a simulated
instant* and *reserve a busy window on a contended resource*
(:mod:`repro.sim.resources`).

Callbacks may schedule further events (at or after the current instant),
cancel pending ones, and reserve resources; :meth:`Simulation.run`
executes events in deterministic ``(time, priority, seq)`` order until
the queue drains or ``until`` is reached.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ValidationError
from repro.sim.events import Clock, Event, EventQueue

__all__ = ["Simulation", "Process"]


class Simulation:
    """A discrete-event simulation: clock + queue + trace hooks.

    Parameters
    ----------
    start:
        Initial simulated time.

    Examples
    --------
    >>> sim = Simulation()
    >>> fired = []
    >>> _ = sim.schedule_at(2.0, lambda t: fired.append(t), payload="b")
    >>> _ = sim.schedule_at(1.0, lambda t: fired.append(t), payload="a")
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self.queue = EventQueue()
        self._trace_hooks: list[Callable[[Event], None]] = []
        self.n_executed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def add_trace(self, hook: Callable[[Event], None]) -> None:
        """Register a hook called (in registration order) as each event runs."""
        self._trace_hooks.append(hook)

    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[[Any], None],
        *,
        payload: Any = None,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(payload)`` at absolute instant ``time``.

        ``time`` must not precede the current clock; the returned
        :class:`~repro.sim.events.Event` handle supports :meth:`cancel`.
        """
        if time < self.clock.now:
            raise ValidationError(
                f"cannot schedule into the past: {time} < now={self.clock.now}"
            )
        return self.queue.push(
            Event(
                time=time,
                priority=priority,
                callback=callback,
                payload=payload,
                label=label,
            )
        )

    def schedule(
        self,
        delay: float,
        callback: Callable[[Any], None],
        *,
        payload: Any = None,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(payload)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self.clock.now + delay,
            callback,
            payload=payload,
            priority=priority,
            label=label,
        )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    def step(self) -> Event:
        """Execute exactly one event, advancing the clock to it."""
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        for hook in self._trace_hooks:
            hook(event)
        if event.callback is not None:
            event.callback(event.payload)
        self.n_executed += 1
        return event

    def run(self, until: float | None = None) -> int:
        """Drain the queue (or run up to instant ``until``, inclusive).

        Returns the number of events executed by this call.  With
        ``until`` given, events scheduled later than it stay queued and
        the clock advances to ``until`` exactly.
        """
        executed = 0
        while self.queue:
            nxt = self.queue.peek()
            if until is not None and nxt.time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
        return executed


class Process:
    """A named generator of scheduled work on one simulation.

    The thinnest useful process abstraction: :meth:`hold` schedules a
    continuation after a delay, so multi-step behaviours (a periodic risk
    refresher, a traffic source) read as small callback chains without
    the full coroutine machinery.

    Parameters
    ----------
    sim:
        The simulation this process lives on.
    name:
        Trace label prefix for every event the process schedules.
    """

    def __init__(self, sim: Simulation, name: str = "process") -> None:
        self.sim = sim
        self.name = name
        self.steps = 0

    def hold(
        self,
        delay: float,
        callback: Callable[[Any], None],
        *,
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule the process's next step after ``delay`` seconds."""
        self.steps += 1
        return self.sim.schedule(
            delay,
            callback,
            payload=payload,
            priority=priority,
            label=f"{self.name}#{self.steps}",
        )

    def every(
        self,
        period: float,
        callback: Callable[[float], None],
        *,
        start: float | None = None,
        n_times: int = 1,
    ) -> None:
        """Schedule ``callback(t)`` at ``n_times`` period-spaced instants.

        Fires at ``start, start + period, ...`` (``start`` defaults to
        one period from now) — the periodic-refresh idiom of the mixed
        workload demo, expressed once here.
        """
        if period <= 0:
            raise ValidationError(f"period must be > 0, got {period}")
        if n_times < 1:
            raise ValidationError(f"n_times must be >= 1, got {n_times}")
        first = self.sim.now + period if start is None else start
        for k in range(n_times):
            t = first + k * period
            self.steps += 1
            self.sim.schedule_at(
                t, callback, payload=t, label=f"{self.name}#{self.steps}"
            )
