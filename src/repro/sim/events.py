"""Event primitives: the heap-ordered queue and the simulated clock.

The whole unified simulator rests on three small invariants enforced
here:

* **deterministic ordering** — events pop in ``(time, priority, seq)``
  order, where ``seq`` is the push sequence number.  Two events scheduled
  for the same instant at the same priority therefore execute in the
  order they were scheduled, run after run, interpreter after
  interpreter — the stable tie-break every conformance test leans on;
* **cancellation without rebuild** — cancelling marks the entry dead and
  :meth:`EventQueue.pop` skips it (the standard lazy-deletion heap
  idiom), so O(1) cancel and no heap surgery;
* **monotone time** — :class:`Clock` refuses to move backwards, turning
  causality bugs into loud :class:`~repro.errors.SimulationError`\\ s
  instead of silently reordered timelines.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError

__all__ = ["Event", "EventQueue", "Clock"]


@dataclass(order=False, eq=False)
class Event:
    """One scheduled occurrence in simulated time.

    Attributes
    ----------
    time:
        Absolute simulated instant the event fires.
    priority:
        Secondary sort key at equal times; *lower* fires first (the
        convention of every OS run queue).
    seq:
        Push sequence number — the final, stable tie-break.  Assigned by
        the queue; two events are never equal under the full key.
    callback:
        ``callback(payload)``, invoked when the event executes.
    payload:
        Opaque datum handed back to the callback.
    label:
        Optional trace label (shows up in trace hooks).
    cancelled:
        Set by :meth:`EventQueue.cancel`; cancelled events are skipped.
    fired:
        Set by :meth:`EventQueue.pop` when the event is handed to the
        executor.  A fired event is dead: cancelling it is a no-op and
        re-pushing it raises (events are single-use).
    """

    time: float
    priority: int = 0
    seq: int = -1
    callback: Callable[[Any], None] | None = None
    payload: Any = None
    label: str = ""
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    @property
    def key(self) -> tuple[float, int, int]:
        """The full deterministic ordering key."""
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event dead; the queue will skip it on pop."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` with stable ties and lazy deletion.

    Examples
    --------
    >>> q = EventQueue()
    >>> first = q.push(Event(time=1.0))
    >>> second = q.push(Event(time=1.0))
    >>> q.pop() is first  # same instant: push order wins
    True
    >>> q.pop() is second
    True
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._seq = 0
        self._alive = 0

    def __len__(self) -> int:
        """Live (non-cancelled) events still queued."""
        return self._alive

    def __bool__(self) -> bool:
        return self._alive > 0

    def push(self, event: Event) -> Event:
        """Enqueue ``event``, assigning its sequence number.

        Returns the event itself so call sites can keep the handle for
        :meth:`cancel`.

        Events are **single-use**: re-pushing an event that was already
        queued raises, including one that has since been cancelled or
        has fired — schedule a fresh :class:`Event` instead (the lazy-
        deletion heap may still hold the stale entry, so reviving the
        object would corrupt ordering).
        """
        if event.time != event.time:  # NaN check without math.isnan import
            raise ValidationError("event time must not be NaN")
        if event.seq >= 0:
            raise ValidationError(
                f"event already queued (seq={event.seq}); events are single-use"
            )
        event.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (event.key, event))
        self._alive += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a queued event (lazy deletion; O(1)).

        The call is idempotent and safe on dead events: cancelling an
        event that already fired, was already cancelled, or was never
        pushed is a **no-op** — the live count only decrements for an
        event that is genuinely still queued.  (Cancel-after-fire used
        to corrupt the count; the contract is now explicit and tested.)
        """
        if event.fired or event.cancelled or event.seq < 0:
            return
        event.cancel()
        self._alive -= 1

    def peek(self) -> Event | None:
        """The next live event without removing it (``None`` if empty)."""
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][1] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event in ``(time, priority, seq)`` order."""
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._alive -= 1
                event.fired = True
                return event
        raise ValidationError("pop from an empty event queue")


class Clock:
    """The simulation's single monotone notion of *now*.

    Parameters
    ----------
    start:
        Initial simulated time (default 0).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise ValidationError(
                f"simulated time cannot run backwards: {time} < {self._now}"
            )
        self._now = time
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now})"
