"""Contended resources: busy-window reservations and queued servers.

Two abstractions cover every timing silo the simulator replaced:

* :class:`Resource` — the *busy-window* idiom.  ``reserve(ready,
  service)`` starts work at ``max(ready, busy_until)`` and occupies the
  resource for exactly ``service`` seconds.  This is, verbatim, the
  arithmetic of the legacy per-card ``busy_until`` tracking in the quote
  server, the host-thread serialisation of
  :class:`~repro.cluster.interconnect.HostLinkModel` dispatches, and the
  per-card busy accumulation of the cluster and risk roll-ups — which is
  what lets the conformance suite pin the rebuilt layers bit-identical.
* :class:`Server` — a capacity-``k`` queued station driven by a
  :class:`~repro.sim.engine.Simulation`: jobs are submitted at instants,
  wait under a FIFO or priority discipline, and complete via scheduled
  events.  This is the general form used by process-style models and the
  primitive the contention-semantics unit tests exercise.

:class:`CompletionTracker` is the small in-flight window helper the
admission controller needs: a min-heap of completion instants with
"drain everything done by *now*" semantics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.sim.engine import Simulation

__all__ = ["Reservation", "Resource", "Server", "Job", "CompletionTracker"]


@dataclass(frozen=True)
class Reservation:
    """One busy window granted by a :class:`Resource`.

    Attributes
    ----------
    resource:
        Name of the granting resource.
    ready_s:
        Instant the work was ready to start (request time).
    start_s:
        Instant the resource actually started it (``>= ready_s``).
    done_s:
        Completion instant (``start_s + service_s``).
    service_s:
        Busy time charged.
    """

    resource: str
    ready_s: float
    start_s: float
    done_s: float
    service_s: float

    @property
    def waited_s(self) -> float:
        """Queueing delay before service began."""
        return self.start_s - self.ready_s


class Resource:
    """A serially-occupied resource with busy-window accounting.

    Reservations are granted in call order: work ready at ``ready``
    starts at ``max(ready, busy_until)`` — exactly the legacy
    ``busy_until`` update — and the resource accumulates busy seconds,
    reservation counts and (optionally) the full window trace.

    Parameters
    ----------
    name:
        Identifier used in reservations and traces.
    sim:
        Optional owning simulation; reservations then assert they are
        not granted in the simulated past.
    keep_windows:
        Record every :class:`Reservation` in :attr:`windows` (off by
        default; large runs reserve millions of windows).
    recorder:
        Optional telemetry span recorder (anything with ``enabled`` and
        ``record(...)``, e.g. :class:`repro.telemetry.SpanRecorder`).
        When enabled, every busy window is emitted as a span on a track
        named after the resource.  Kept duck-typed so :mod:`repro.sim`
        has no telemetry dependency; ``None`` (the default) costs one
        attribute check per reservation.

    Availability
    ------------
    A resource is *available* by default.  :meth:`add_downtime` registers
    half-open ``[start, end)`` windows during which the resource cannot
    start work: a reservation whose prospective start falls inside a down
    window is pushed to the window's end (``end`` may be ``math.inf`` for
    a permanent outage).  With no windows registered the reservation
    arithmetic is exactly the legacy ``max(ready, busy_until)`` — the
    fault-free conformance pin.  Downtime models *when work may start*;
    a window that would straddle a later outage is the caller's concern
    (the fault-aware serving layer detects and fails such dispatches
    explicitly).
    """

    __slots__ = ("name", "sim", "busy_until", "busy_seconds",
                 "n_reservations", "keep_windows", "windows", "recorder",
                 "down_windows")

    def __init__(
        self,
        name: str = "resource",
        *,
        sim: Simulation | None = None,
        keep_windows: bool = False,
        recorder=None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.n_reservations = 0
        self.keep_windows = keep_windows
        self.windows: list[Reservation] = []
        self.recorder = recorder
        self.down_windows: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    def add_downtime(self, start_s: float, end_s: float) -> None:
        """Register an unavailability window ``[start_s, end_s)``.

        Windows may be added in any order; they are kept sorted.  Use
        ``math.inf`` as ``end_s`` for a permanent outage.
        """
        if end_s <= start_s:
            raise ValidationError(
                f"downtime must end after it starts: [{start_s}, {end_s})"
            )
        self.down_windows.append((start_s, end_s))
        self.down_windows.sort()

    def is_down(self, t: float) -> bool:
        """Whether the resource is inside a down window at instant ``t``."""
        return any(start <= t < end for start, end in self.down_windows)

    def next_available(self, t: float) -> float:
        """Earliest instant ``>= t`` outside every down window.

        Returns ``math.inf`` when a permanent outage covers ``t``.
        """
        for start, end in self.down_windows:
            if start <= t < end:
                t = end
        return t

    def peek_start(self, ready_s: float) -> float:
        """The instant a reservation ready at ``ready_s`` would start.

        The same arithmetic :meth:`reserve` applies — ``max(ready,
        busy_until)`` pushed past any down window — without granting
        the window, so fault-aware dispatchers can inspect prospective
        busy windows before committing them.
        """
        start = max(ready_s, self.busy_until)
        if self.down_windows:
            start = self.next_available(start)
        return start

    def reserve(
        self,
        ready_s: float,
        service_s: float,
        *,
        span_name: str | None = None,
        span_kind: str = "",
        span_args=None,
    ) -> Reservation:
        """Grant the next busy window: start at ``max(ready, busy_until)``.

        Parameters
        ----------
        ready_s:
            Instant the work becomes available to this resource.
        service_s:
            Busy time the work occupies (``>= 0``).  **Zero is legal**:
            a zero-service reservation starts and completes at the same
            instant (``done == start``), leaves ``busy_until`` where the
            start landed, accumulates no busy seconds, and still counts
            one reservation — the contract boundary tests pin this.
        span_name / span_kind / span_args:
            Telemetry metadata for the busy-window span emitted when a
            recording :attr:`recorder` is attached (name defaults to the
            resource name).  Ignored otherwise.
        """
        if service_s < 0:
            raise ValidationError(f"service_s must be >= 0, got {service_s}")
        if self.sim is not None and ready_s < self.sim.now:
            raise ValidationError(
                f"resource {self.name!r}: reservation ready at {ready_s} "
                f"is in the simulated past (now={self.sim.now})"
            )
        start = max(ready_s, self.busy_until)
        if self.down_windows:
            start = self.next_available(start)
        done = start + service_s
        self.busy_until = done
        self.busy_seconds += service_s
        self.n_reservations += 1
        reservation = Reservation(
            resource=self.name,
            ready_s=ready_s,
            start_s=start,
            done_s=done,
            service_s=service_s,
        )
        if self.keep_windows:
            self.windows.append(reservation)
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.record(
                span_name if span_name is not None else self.name,
                start,
                done,
                track=self.name,
                category="resource",
                kind=span_kind,
                args=span_args if span_args is not None else {},
            )
        return reservation

    def utilisation(self, span_s: float) -> float:
        """Busy fraction of a ``span_s``-second observation window."""
        return self.busy_seconds / span_s if span_s > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, busy_until={self.busy_until}, "
            f"n={self.n_reservations})"
        )


@dataclass
class Job:
    """One unit of work submitted to a :class:`Server`.

    ``start_s``/``done_s`` are filled in when the simulation runs.
    """

    submit_s: float
    service_s: float
    priority: int = 0
    label: str = ""
    start_s: float | None = None
    done_s: float | None = None

    @property
    def finished(self) -> bool:
        """Whether the job has completed."""
        return self.done_s is not None


class Server:
    """A capacity-``k`` queued service station on a simulation.

    Jobs submitted while all slots are busy wait under the configured
    discipline:

    * ``"fifo"`` — submission order (stable);
    * ``"priority"`` — highest :attr:`Job.priority` first, submission
      order within a priority level (stable).

    Parameters
    ----------
    sim:
        The driving simulation.
    name:
        Identifier for traces.
    capacity:
        Concurrent jobs the server can hold.
    discipline:
        ``"fifo"`` or ``"priority"``.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str = "server",
        *,
        capacity: int = 1,
        discipline: str = "fifo",
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if discipline not in ("fifo", "priority"):
            raise ValidationError(
                f"unknown discipline {discipline!r}; choose 'fifo' or 'priority'"
            )
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.discipline = discipline
        self.resource = Resource(name, keep_windows=True)
        self._waiting: list[tuple[tuple, Job]] = []  # heap of (key, job)
        self._wait_seq = 0
        self._in_service = 0
        self.completed: list[Job] = []

    # ------------------------------------------------------------------
    def submit(self, at_s: float, service_s: float, *, priority: int = 0,
               label: str = "") -> Job:
        """Submit a job arriving at ``at_s`` for ``service_s`` of work."""
        if service_s < 0:
            raise ValidationError(f"service_s must be >= 0, got {service_s}")
        job = Job(
            submit_s=at_s, service_s=service_s, priority=priority, label=label
        )
        self.sim.schedule_at(
            at_s, self._admit, payload=job, label=f"{self.name}:submit"
        )
        return job

    # ------------------------------------------------------------------
    def _key(self, job: Job) -> tuple:
        if self.discipline == "priority":
            return (-job.priority, self._wait_seq)
        return (self._wait_seq,)

    def _admit(self, job: Job) -> None:
        heapq.heappush(self._waiting, (self._key(job), job))
        self._wait_seq += 1
        self._try_start()

    def _try_start(self) -> None:
        while self._in_service < self.capacity and self._waiting:
            _, job = heapq.heappop(self._waiting)
            self._in_service += 1
            job.start_s = self.sim.now
            job.done_s = self.sim.now + job.service_s
            self.resource.busy_seconds += job.service_s
            self.resource.n_reservations += 1
            self.resource.busy_until = max(self.resource.busy_until, job.done_s)
            self.sim.schedule_at(
                job.done_s, self._complete, payload=job,
                label=f"{self.name}:done",
            )

    def _complete(self, job: Job) -> None:
        self._in_service -= 1
        self.completed.append(job)
        self._try_start()

    @property
    def n_waiting(self) -> int:
        """Jobs queued but not yet in service."""
        return len(self._waiting)


class CompletionTracker:
    """A min-heap of in-flight completion instants.

    The admission controller's view of outstanding work: push each
    dispatched completion time, drain everything finished by *now*, and
    the length is the in-flight population.
    """

    def __init__(self) -> None:
        self._heap: list[float] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, done_s: float) -> None:
        """Record one in-flight completion instant."""
        heapq.heappush(self._heap, done_s)

    def drain(self, now_s: float) -> int:
        """Drop every completion at or before ``now_s``; returns the count."""
        dropped = 0
        while self._heap and self._heap[0] <= now_s:
            heapq.heappop(self._heap)
            dropped += 1
        return dropped
