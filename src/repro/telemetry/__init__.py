"""repro.telemetry — spans, metrics and trace export on the unified clock.

The observability substrate over :mod:`repro.sim`: every
:class:`~repro.sim.Resource` busy window and every request phase in the
serving path can be recorded as a :class:`~repro.telemetry.spans.Span`
keyed to the simulated clock, run tallies live in a
:class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
streaming-quantile histograms), and :mod:`repro.telemetry.export`
serialises both — Chrome trace-event JSON for Perfetto timelines,
Prometheus text exposition, flat span CSV.

Recording is opt-in: the default :data:`NULL_TELEMETRY` handle costs one
attribute check per would-be span, and every report stays byte-identical
whether telemetry is attached or not.  Pass
``Telemetry.recording()`` into :func:`repro.api.open_session` (or use
the ``--trace-out`` / ``--metrics-out`` CLI flags) to capture a run;
``repro-cds trace`` summarises the resulting file.
"""

from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.export import (
    chrome_trace,
    load_chrome_trace,
    metrics_snapshot,
    parse_prometheus_text,
    prometheus_text,
    spans_csv,
    write_chrome_trace,
    write_metrics_snapshot,
    write_spans_csv,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    metric_key,
)
from repro.telemetry.profile import KernelProfiler
from repro.telemetry.spans import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanRecorder,
)

__all__ = [
    "NULL_RECORDER",
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "NullRecorder",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "chrome_trace",
    "load_chrome_trace",
    "escape_label_value",
    "metric_key",
    "metrics_snapshot",
    "parse_prometheus_text",
    "prometheus_text",
    "spans_csv",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "write_spans_csv",
]
