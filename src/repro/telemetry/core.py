"""The :class:`Telemetry` handle: one recorder + one registry per run.

Every consumer layer takes a ``telemetry`` object rather than separate
recorder/registry arguments: the serving engine guards span emission on
``telemetry.enabled``, run tallies are published into
``telemetry.metrics``, and the CLI's ``--trace-out`` / ``--metrics-out``
flags serialise the two sides through :mod:`repro.telemetry.export`.

:data:`NULL_TELEMETRY` is the process-wide default — a
:class:`~repro.telemetry.spans.NullRecorder` plus an (unused) registry —
so un-instrumented runs pay one attribute check per would-be span and
nothing else, and every ``--json`` output stays byte-identical whether
telemetry is wired through or not.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_RECORDER, NullRecorder, SpanRecorder

__all__ = ["Telemetry", "NULL_TELEMETRY"]


class Telemetry:
    """A span recorder and a metrics registry travelling together.

    Parameters
    ----------
    recorder:
        Span sink (default: the shared no-op recorder).
    metrics:
        Metrics registry (default: a fresh one).
    """

    def __init__(
        self,
        *,
        recorder: SpanRecorder | NullRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def recording(cls) -> "Telemetry":
        """A fully-recording handle: fresh span buffer, fresh registry."""
        return cls(recorder=SpanRecorder(), metrics=MetricsRegistry())

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded (metrics always are)."""
        return self.recorder.enabled

    @property
    def spans(self):
        """Recorded spans (empty under the no-op recorder)."""
        return self.recorder.spans

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "recording" if self.enabled else "no-op"
        return (
            f"Telemetry({state}, {len(self.recorder)} span(s), "
            f"{len(self.metrics)} metric(s))"
        )


#: Process-wide no-op handle: the default for every consumer layer.
NULL_TELEMETRY = Telemetry(recorder=NULL_RECORDER)
