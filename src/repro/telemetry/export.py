"""Exporters: Chrome trace-event JSON, Prometheus text, flat span CSV.

Three serialisations of one telemetry run:

* :func:`chrome_trace` — the Chrome trace-event format (the JSON that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ open
  directly).  Resource busy windows become complete (``"X"``) slices on
  one named track per resource; request-phase spans (those carrying a
  ``trace_id``) become async begin/end (``"b"``/``"e"``) pairs keyed by
  the trace id, so each request renders as its own lane of sequential
  phases.  Timestamps are microseconds of *simulated* time.
* :func:`prometheus_text` — the text exposition format, one
  ``# HELP``/``# TYPE`` block per metric; histograms render as summaries
  (quantile-labelled samples plus ``_sum``/``_count``).
* :func:`spans_csv` — a flat CSV of spans for spreadsheet/pandas
  consumption.

:func:`load_chrome_trace` inverts :func:`chrome_trace`, which is what
the ``repro-cds trace`` subcommand builds its summary from.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import ValidationError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "spans_csv",
    "write_spans_csv",
    "metrics_snapshot",
    "write_metrics_snapshot",
]

#: Simulated seconds → trace-event microseconds.
_US = 1e6

#: Version stamp carried in trace files and metrics snapshots so
#: downstream tooling can evolve the formats safely.
TELEMETRY_SCHEMA_VERSION = 1


def _resolve_spans(spans) -> tuple[Span, ...]:
    """Accept a recorder (anything with ``.spans``) or a span iterable."""
    inner = getattr(spans, "spans", None)
    if inner is not None:
        return tuple(inner)
    return tuple(spans)


def _track_order(spans: Sequence[Span]) -> list[str]:
    """Stable track → tid assignment: first-seen order of track names."""
    seen: list[str] = []
    for span in spans:
        track = span.track or "main"
        if track not in seen:
            seen.append(track)
    return seen


def chrome_trace(spans, *, process_name: str = "repro-cds") -> dict:
    """Build a Chrome trace-event payload from recorded spans.

    Parameters
    ----------
    spans:
        A :class:`~repro.telemetry.spans.SpanRecorder` or span iterable.
    process_name:
        Name shown for the single simulated process.

    Returns
    -------
    dict
        ``{"traceEvents": [...], "displayTimeUnit": "ms", ...}`` —
        serialise with :func:`json.dump` or :func:`write_chrome_trace`.
    """
    resolved = _resolve_spans(spans)
    tracks = _track_order(resolved)
    tid_of = {track: tid for tid, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, tid in tid_of.items():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in resolved:
        tid = tid_of[span.track or "main"]
        args = dict(span.args)
        if span.kind:
            args["kind"] = span.kind
        if span.trace_id is None:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.category or "span",
                    "ts": span.start_s * _US,
                    "dur": span.duration_s * _US,
                    "args": args,
                }
            )
        else:
            # Request phases: async begin/end keyed by the trace id, so
            # every request gets its own lane of sequential phases.
            common = {
                "pid": 0,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "request",
                "id": span.trace_id,
            }
            events.append(
                {**common, "ph": "b", "ts": span.start_s * _US, "args": args}
            )
            events.append({**common, "ph": "e", "ts": span.end_s * _US})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "clock": "simulated",
        },
    }


def write_chrome_trace(path, spans, *, process_name: str = "repro-cds") -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans, process_name=process_name)))
    return path


def load_chrome_trace(source) -> tuple[Span, ...]:
    """Rebuild spans from a Chrome trace-event payload.

    The inverse of :func:`chrome_trace` for payloads it wrote (complete
    slices plus async begin/end pairs); the trace summariser runs on the
    result.  Accepts a path or an already-parsed payload dict.
    """
    if isinstance(source, (str, Path)):
        payload = json.loads(Path(source).read_text())
    else:
        payload = source
    events = payload.get("traceEvents")
    if events is None:
        raise ValidationError("not a trace-event payload: no traceEvents key")
    track_of_tid: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            track_of_tid[ev["tid"]] = ev["args"]["name"]

    spans: list[Span] = []
    open_async: dict[tuple, dict] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            args = dict(ev.get("args", {}))
            kind = args.pop("kind", "")
            spans.append(
                Span(
                    name=ev["name"],
                    start_s=ev["ts"] / _US,
                    end_s=(ev["ts"] + ev.get("dur", 0.0)) / _US,
                    track=track_of_tid.get(ev["tid"], str(ev["tid"])),
                    category=ev.get("cat", ""),
                    kind=kind,
                    args=args,
                )
            )
        elif ph == "b":
            open_async[(ev["id"], ev["name"], ev["ts"])] = ev
        elif ph == "e":
            # Pair with the earliest still-open begin of the same id+name.
            match = min(
                (key for key in open_async if key[0] == ev["id"]
                 and key[1] == ev["name"] and key[2] <= ev["ts"]),
                default=None,
                key=lambda key: key[2],
            )
            if match is None:
                raise ValidationError(
                    f"unmatched async end for trace id {ev['id']!r}"
                )
            begin = open_async.pop(match)
            args = dict(begin.get("args", {}))
            kind = args.pop("kind", "")
            spans.append(
                Span(
                    name=begin["name"],
                    start_s=begin["ts"] / _US,
                    end_s=ev["ts"] / _US,
                    track=track_of_tid.get(begin["tid"], str(begin["tid"])),
                    category=begin.get("cat", ""),
                    trace_id=begin["id"],
                    kind=kind,
                    args=args,
                )
            )
    if open_async:
        raise ValidationError(
            f"{len(open_async)} async span(s) never ended in trace payload"
        )
    spans.sort(key=lambda s: (s.start_s, s.end_s, s.track, s.name))
    return tuple(spans)


# ----------------------------------------------------------------------
def _prom_name(key: str) -> tuple[str, str]:
    """Split a registry key into ``(bare name, label suffix)``."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return name, "{" + rest
    return key, ""


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line body (backslash and newline only —
    quotes are legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges emit one sample each; histograms emit a summary
    (quantile-labelled samples, ``_sum`` and ``_count``).  Metrics
    sharing a bare name emit one ``# HELP``/``# TYPE`` block.  Label
    values arrive pre-escaped by :func:`~repro.telemetry.metrics.
    metric_key`; help text is escaped here — so an exposition built from
    hostile strings still parses line by line
    (:func:`parse_prometheus_text` is the inverse).
    """
    lines: list[str] = []
    typed: set[str] = set()
    for key, metric in registry.items():
        name, labels = _prom_name(key)
        if name not in typed:
            typed.add(name)
            if metric.help_text:
                lines.append(f"# HELP {name} {_escape_help(metric.help_text)}")
            prom_type = (
                "summary" if metric.kind == "histogram" else metric.kind
            )
            lines.append(f"# TYPE {name} {prom_type}")
        if metric.kind == "histogram":
            snap = metric.snapshot()
            base_labels = labels[1:-1] if labels else ""
            for q in metric.quantiles:
                value = metric.quantile(q)
                quantile_label = f'quantile="{q}"'
                inner = (
                    f"{base_labels},{quantile_label}"
                    if base_labels
                    else quantile_label
                )
                rendered = "nan" if snap["count"] == 0 else repr(value)
                lines.append(f"{name}{{{inner}}} {rendered}")
            lines.append(f"{name}_sum{labels} {repr(snap['sum'])}")
            lines.append(f"{name}_count{labels} {snap['count']}")
        else:
            value = metric.value
            rendered = str(int(value)) if value == int(value) else repr(value)
            lines.append(f"{key} {rendered}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_label_block(inner: str) -> dict[str, str]:
    """Parse ``k="v",...`` honouring ``\\\\``, ``\\"`` and ``\\n`` escapes."""
    labels: dict[str, str] = {}
    i, n = 0, len(inner)
    while i < n:
        eq = inner.index("=", i)
        key = inner[i:eq]
        if inner[eq + 1] != '"':
            raise ValidationError(
                f"label value for {key!r} is not quoted: {inner!r}"
            )
        value_chars: list[str] = []
        i = eq + 2
        while True:
            if i >= n:
                raise ValidationError(f"unterminated label value: {inner!r}")
            ch = inner[i]
            if ch == "\\":
                esc = inner[i + 1] if i + 1 < n else ""
                if esc == "\\":
                    value_chars.append("\\")
                elif esc == '"':
                    value_chars.append('"')
                elif esc == "n":
                    value_chars.append("\n")
                else:
                    raise ValidationError(
                        f"bad escape \\{esc} in label value: {inner!r}"
                    )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        labels[key] = "".join(value_chars)
        if i < n:
            if inner[i] != ",":
                raise ValidationError(
                    f"expected ',' between labels at {i}: {inner!r}"
                )
            i += 1
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse a text exposition back into samples, help and types.

    The inverse of :func:`prometheus_text` for documents it wrote —
    which is exactly what the escaping round-trip test needs: render a
    registry holding hostile label values (quotes, backslashes,
    newlines), parse it back, and compare.  Returns::

        {
          "samples": [{"name": ..., "labels": {...}, "value": ...}, ...],
          "help": {bare_name: help_text, ...},
          "type": {bare_name: prom_type, ...},
        }

    Label values are unescaped; sample order follows the document.
    """
    samples: list[dict] = []
    help_of: dict[str, str] = {}
    type_of: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            help_of[name] = help_text.replace("\\n", "\n").replace(
                "\\\\", "\\"
            )
            continue
        if line.startswith("# TYPE "):
            name, _, prom_type = line[len("# TYPE "):].partition(" ")
            type_of[name] = prom_type
            continue
        if line.startswith("#"):
            continue
        key, _, rendered = line.rpartition(" ")
        if "{" in key:
            name, _, rest = key.partition("{")
            if not rest.endswith("}"):
                raise ValidationError(f"malformed sample key: {key!r}")
            labels = _parse_label_block(rest[:-1])
        else:
            name, labels = key, {}
        samples.append(
            {"name": name, "labels": labels, "value": float(rendered)}
        )
    return {"samples": samples, "help": help_of, "type": type_of}


# ----------------------------------------------------------------------
#: Column order of the flat span CSV.
CSV_COLUMNS = (
    "name",
    "category",
    "track",
    "trace_id",
    "kind",
    "start_s",
    "end_s",
    "duration_s",
)


def spans_csv(spans) -> str:
    """Flatten spans to CSV (header + one row per span, record order)."""
    resolved = _resolve_spans(spans)
    lines = [",".join(CSV_COLUMNS)]
    for s in resolved:
        lines.append(
            ",".join(
                (
                    s.name,
                    s.category,
                    s.track,
                    "" if s.trace_id is None else str(s.trace_id),
                    s.kind,
                    repr(s.start_s),
                    repr(s.end_s),
                    repr(s.duration_s),
                )
            )
        )
    return "\n".join(lines) + "\n"


def write_spans_csv(path, spans) -> Path:
    """Serialise :func:`spans_csv` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(spans_csv(spans))
    return path


# ----------------------------------------------------------------------
def metrics_snapshot(registry: MetricsRegistry) -> dict:
    """Versioned JSON-friendly registry dump (the ``--metrics-out`` body).

    ``metrics`` maps rendered keys (labels included) to typed values;
    key order is sorted, so two runs of the same configuration produce
    the same schema — which is what the committed metrics-schema test
    pins.
    """
    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "metrics": registry.snapshot(),
    }


def write_metrics_snapshot(path, registry: MetricsRegistry) -> Path:
    """Serialise :func:`metrics_snapshot` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(metrics_snapshot(registry), indent=2) + "\n")
    return path
