"""The metrics registry: counters, gauges, streaming-quantile histograms.

One process-local registry replaces the ad-hoc tallies that used to live
inside each layer (serving's batch counters, the risk grid's dispatch
sum, the cluster roll-up): code paths increment named metrics while they
run, report dataclasses read those metrics back, and the exporters
(:mod:`repro.telemetry.export`) serialise the registry as a Prometheus
text exposition or a JSON snapshot.

Quantiles stream.  :class:`Histogram` keeps exact ``count``/``sum``/
``min``/``max`` plus one P² estimator (Jain & Chlamtac, 1985) per
tracked quantile, so a million latency observations cost five markers
each instead of a stored vector.  Report percentiles that must stay
bit-identical to their pre-registry values (``LatencyStats``) keep using
exact vectors; the streaming histograms serve the export path, where an
estimate over an unbounded stream is the point.

Metrics may carry Prometheus-style labels; a labelled metric's registry
key renders as ``name{k="v",...}`` with keys sorted, which keeps
snapshots deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "metric_key",
]

#: Quantiles a histogram tracks unless told otherwise.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format reserves inside quoted label values; everything else passes
    through verbatim.  Order matters: backslashes first, or the escapes
    themselves would be re-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def metric_key(name: str, labels: Mapping[str, str] | None = None) -> str:
    """Registry key for a metric: ``name`` or ``name{k="v",...}``.

    Label keys render sorted, so logically-equal label sets map to one
    key and snapshots are deterministic.  Values are escaped per the
    exposition format (:func:`escape_label_value`), so a value holding
    a quote, backslash or newline still renders as one well-formed key
    — and two values that differ only in those characters stay two
    distinct keys.
    """
    if not name:
        raise ValidationError("metric name must be non-empty")
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    def snapshot(self) -> float:
        """JSON-friendly value."""
        return self._value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0

    @property
    def value(self) -> float:
        """Last value set."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current level."""
        self._value = float(value)

    def snapshot(self) -> float:
        """JSON-friendly value."""
        return self._value


class _P2Quantile:
    """One streaming quantile: the P² algorithm (Jain & Chlamtac, 1985).

    Five markers track the running estimate of quantile ``q`` in O(1)
    memory and time per observation.  Until five observations arrive the
    estimate is exact (sorted-buffer interpolation).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValidationError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []  # marker heights (or warm-up buffer)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2 * q, 1.0 + 4 * q, 3.0 + 2 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.n = 0

    def observe(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self.n += 1
        if self.n <= 5:
            self._heights.append(x)
            if self.n == 5:
                self._heights.sort()
            return
        h = self._heights
        # Cell containing x; clamp the extremes to x itself.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired spots.
        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            pos, prev_pos, next_pos = (
                self._positions[i],
                self._positions[i - 1],
                self._positions[i + 1],
            )
            if (d >= 1.0 and next_pos - pos > 1.0) or (
                d <= -1.0 and prev_pos - pos < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        """Current estimate (``nan`` before any observation)."""
        if self.n == 0:
            return float("nan")
        if self.n <= 5:
            ordered = sorted(self._heights)
            # Exact linear interpolation over the warm-up buffer.
            rank = self.q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return self._heights[2]


class Histogram:
    """Streaming distribution summary: exact moments, P² quantiles.

    Parameters
    ----------
    name / help_text:
        Identity in the registry and expositions.
    quantiles:
        Quantile levels to track (default ``(0.5, 0.95, 0.99)``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        *,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.quantiles = tuple(quantiles)
        if not self.quantiles:
            raise ValidationError(f"histogram {name!r} needs >= 1 quantile")
        self._estimators = {q: _P2Quantile(q) for q in self.quantiles}
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        """Fold one observation into every tracked statistic."""
        x = float(x)
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._estimators.values():
            est.observe(x)

    def observe_many(self, xs: Iterable[float]) -> None:
        """Fold a batch of observations, in order."""
        for x in xs:
            self.observe(x)

    def quantile(self, q: float) -> float:
        """Current estimate of a tracked quantile level."""
        if q not in self._estimators:
            raise ValidationError(
                f"histogram {self.name!r} does not track q={q}; "
                f"tracked: {self.quantiles}"
            )
        return self._estimators[q].value

    @property
    def mean(self) -> float:
        """Running mean (``nan`` when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        """JSON-friendly summary (empty streams report null-ish floats)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "quantiles": {
                str(q): (None if empty else self._estimators[q].value)
                for q in self.quantiles
            },
        }


class MetricsRegistry:
    """Named metrics, get-or-create, deterministically ordered.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the (name, labels) key is already registered — re-registration
    with a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, key: str, factory):
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValidationError(
                    f"metric {key!r} is a {existing.kind}, not a "
                    f"{cls.kind}"
                )
            return existing
        metric = factory()
        self._metrics[key] = metric
        return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """Get or create a counter."""
        key = metric_key(name, labels)
        return self._get_or_create(Counter, key, lambda: Counter(key, help_text))

    def gauge(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        """Get or create a gauge."""
        key = metric_key(name, labels)
        return self._get_or_create(Gauge, key, lambda: Gauge(key, help_text))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ) -> Histogram:
        """Get or create a streaming-quantile histogram."""
        key = metric_key(name, labels)
        return self._get_or_create(
            Histogram, key, lambda: Histogram(key, help_text, quantiles=quantiles)
        )

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> tuple[str, ...]:
        """Registered keys, sorted (the stable schema of a snapshot)."""
        return tuple(sorted(self._metrics))

    def get(self, key: str) -> Counter | Gauge | Histogram:
        """Look up one metric by its rendered key."""
        if key not in self._metrics:
            raise ValidationError(f"no metric registered under {key!r}")
        return self._metrics[key]

    def items(self):
        """``(key, metric)`` pairs in sorted-key order."""
        return ((k, self._metrics[k]) for k in self.names())

    def snapshot(self) -> dict:
        """JSON-friendly dump: ``{key: {"type": ..., "value": ...}}``."""
        return {
            key: {"type": metric.kind, "value": metric.snapshot()}
            for key, metric in self.items()
        }

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters and gauges into this one.

        Counters add, gauges overwrite — the publish step of a run-local
        registry into a session-level one.  Histograms cannot be merged
        (P² markers do not compose); re-observe the underlying stream on
        the target registry instead.
        """
        for key, metric in other.items():
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help_text).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help_text).set(metric.value)
            else:
                raise ValidationError(
                    f"cannot absorb histogram {key!r}: P² estimators do "
                    "not merge; observe the stream on the target registry"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({len(self._metrics)} metric(s))"
