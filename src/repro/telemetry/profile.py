"""Kernel profiling: wall-time per chunk vs simulated busy time.

The batched kernel (:func:`~repro.core.vector_pricing.price_packed_many`)
exposes a process-wide profile hook called once per internal chunk with
the chunk's shape and measured host wall-time.  :class:`KernelProfiler`
is the telemetry-side consumer: installed for the duration of a run (as
a context manager), it folds every chunk into a metrics registry —

* ``kernel_calls_total`` / ``kernel_chunks_total`` — kernel entries and
  internal chunks executed;
* ``kernel_rows_total`` / ``kernel_cells_total`` — market-state rows and
  (row, option) cells priced;
* ``kernel_wall_seconds_total`` — measured host wall-time in the kernel;
* ``kernel_chunk_wall_seconds`` — streaming-quantile histogram of
  per-chunk wall-times —

and, once the simulated run completes, pairs that against the simulated
card busy time (:meth:`set_simulated_busy`) so a report can show the
host-numerics cost next to the device-model cost for the same work:
the wall/simulated ratio is the "how much faster would the modelled
cluster be than this host" number.
"""

from __future__ import annotations

from repro.core import vector_pricing
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["KernelProfiler"]


class KernelProfiler:
    """Collects per-chunk kernel timings into a metrics registry.

    Parameters
    ----------
    registry:
        Where the kernel metrics live (a fresh registry by default).

    Use as a context manager around the run to profile::

        profiler = KernelProfiler(registry)
        with profiler:
            server.serve(requests)
        profiler.set_simulated_busy(sum(c.busy_seconds for c in rig.cards))
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous_hook = None
        self._installed = False
        self._calls = self.registry.counter(
            "kernel_calls_total", "price_packed_many entries"
        )
        self._chunks = self.registry.counter(
            "kernel_chunks_total", "internal kernel chunks executed"
        )
        self._rows = self.registry.counter(
            "kernel_rows_total", "market-state rows priced"
        )
        self._cells = self.registry.counter(
            "kernel_cells_total", "(row, option) cells priced"
        )
        self._wall = self.registry.counter(
            "kernel_wall_seconds_total", "measured host wall-time in the kernel"
        )
        self._chunk_wall = self.registry.histogram(
            "kernel_chunk_wall_seconds", "per-chunk host wall-time"
        )

    # ------------------------------------------------------------------
    def on_call(self) -> None:
        """Hook: one kernel entry began."""
        self._calls.inc()

    def on_chunk(self, n_rows: int, n_cells: int, wall_s: float) -> None:
        """Hook: one internal chunk completed in ``wall_s`` seconds."""
        self._chunks.inc()
        self._rows.inc(n_rows)
        self._cells.inc(n_cells)
        self._wall.inc(wall_s)
        self._chunk_wall.observe(wall_s)

    # ------------------------------------------------------------------
    def install(self) -> "KernelProfiler":
        """Install as the process-wide kernel profile hook."""
        if not self._installed:
            self._previous_hook = vector_pricing.get_kernel_profile_hook()
            vector_pricing.set_kernel_profile_hook(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore whatever hook was installed before (idempotent)."""
        if self._installed:
            vector_pricing.set_kernel_profile_hook(self._previous_hook)
            self._previous_hook = None
            self._installed = False

    def __enter__(self) -> "KernelProfiler":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    def set_simulated_busy(self, busy_seconds: float) -> None:
        """Record the simulated device busy time for the profiled work.

        Sets ``kernel_simulated_busy_seconds`` and, when wall time was
        measured, ``kernel_wall_vs_simulated_ratio`` (host seconds per
        simulated device second — how much the modelled cluster would
        beat this host by).
        """
        self.registry.gauge(
            "kernel_simulated_busy_seconds",
            "simulated device busy time for the profiled work",
        ).set(busy_seconds)
        wall = self._wall.value
        if busy_seconds > 0 and wall > 0:
            self.registry.gauge(
                "kernel_wall_vs_simulated_ratio",
                "host wall seconds per simulated device busy second",
            ).set(wall / busy_seconds)

    @property
    def n_chunks(self) -> int:
        """Chunks profiled so far."""
        return int(self._chunks.value)

    @property
    def wall_seconds(self) -> float:
        """Total measured kernel wall-time."""
        return self._wall.value
