"""Spans: where simulated time went, one busy window at a time.

A :class:`Span` is a named interval on the unified :mod:`repro.sim`
clock — a card busy window, a host-link dispatch, a request's wait in
the coalescer — optionally tagged with the *trace id* of the request it
served (request ids double as trace ids across the serving stack) and a
``track`` naming the timeline lane it belongs to (``host``, ``card0``,
``requests``...).

Recording is opt-in and zero-cost by default: every instrumented call
site guards on :attr:`SpanRecorder.enabled`, and the default
:data:`NULL_RECORDER` answers ``False`` without allocating anything.
The recording :class:`SpanRecorder` is a flat append-only buffer the
exporters (:mod:`repro.telemetry.export`) and the trace summariser
(:mod:`repro.analysis.trace`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = ["Span", "SpanRecorder", "NullRecorder", "NULL_RECORDER"]


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time.

    Attributes
    ----------
    name:
        What happened (``card_service``, ``coalesce``, ``dispatch``...).
    start_s / end_s:
        Interval bounds on the simulated clock (``end_s >= start_s``;
        equal bounds mark an instant event such as a shed).
    track:
        Timeline lane: the resource name for busy windows, a logical
        lane (``requests``) for request phases.
    category:
        Coarse grouping for exporters (``resource``, ``request``,
        ``coalescer``...).
    trace_id:
        Request id this span served, or ``None`` for spans not tied to
        one request (e.g. a card window covering a whole micro-batch).
    kind:
        Request kind (``quote``/``reval``/``var``) when applicable.
    args:
        Free-form metadata carried into the exporters (batch ids, row
        and cell counts...).
    """

    name: str
    start_s: float
    end_s: float
    track: str = ""
    category: str = ""
    trace_id: int | None = None
    kind: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValidationError(
                f"span {self.name!r} ends before it starts: "
                f"[{self.start_s}, {self.end_s}]"
            )

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds."""
        return self.end_s - self.start_s


class NullRecorder:
    """The zero-cost default: records nothing, reports nothing.

    Instrumented call sites guard span construction on
    :attr:`enabled`, so a run without telemetry never allocates a
    :class:`Span`; :meth:`record` exists only so un-guarded callers
    stay harmless.
    """

    enabled = False

    def record(self, *args, **kwargs) -> None:
        """Drop the span."""

    @property
    def spans(self) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def __len__(self) -> int:
        return 0


#: Process-wide no-op recorder instance (stateless, shareable).
NULL_RECORDER = NullRecorder()


class SpanRecorder:
    """An append-only in-memory span buffer.

    The recording counterpart of :class:`NullRecorder`: instrumented
    layers call :meth:`record` for every busy window and request phase;
    exporters read :attr:`spans` once the run completes.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        track: str = "",
        category: str = "",
        trace_id: int | None = None,
        kind: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> Span:
        """Append one span and return it."""
        span = Span(
            name=name,
            start_s=start_s,
            end_s=end_s,
            track=track,
            category=category,
            trace_id=trace_id,
            kind=kind,
            args=args if args is not None else {},
        )
        self._spans.append(span)
        return span

    @property
    def spans(self) -> tuple[Span, ...]:
        """Everything recorded so far, in record order."""
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        self._spans.clear()

    # ------------------------------------------------------------------
    def for_track(self, track: str) -> tuple[Span, ...]:
        """Spans on one timeline lane, in record order."""
        return tuple(s for s in self._spans if s.track == track)

    def for_trace(self, trace_id: int) -> tuple[Span, ...]:
        """Spans serving one request, in record order."""
        return tuple(s for s in self._spans if s.trace_id == trace_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanRecorder({len(self._spans)} span(s))"
