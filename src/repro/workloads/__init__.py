"""Workload construction: rate curves, option portfolios, paper scenario.

``generator``
    Seeded synthetic curves and option portfolios for tests, examples and
    sweeps.
``scenarios``
    :class:`~repro.workloads.scenarios.PaperScenario` — the exact
    experimental configuration of the paper (1024 interest and 1024 hazard
    rates, 5-year quarterly options) together with every calibration
    constant of the performance models, each documented at its definition.
``cluster``
    Scenario-diverse portfolios (uniform / skewed / heterogeneous) and
    bursty arrival traces for the multi-card cluster layer.
``history``
    Deterministic synthetic curve histories for the risk subsystem's
    historical-replay scenarios.
``traffic``
    Request arrival processes (Poisson, Markov-modulated bursty, diurnal
    sinusoid) for the live serving layer.
"""

from repro.workloads.cluster import (
    CLUSTER_WORKLOADS,
    Arrival,
    make_burst_arrivals,
    make_cluster_portfolio,
    make_heterogeneous_portfolio,
    make_skewed_portfolio,
    make_uniform_portfolio,
)
from repro.workloads.history import CurveHistory, make_curve_history
from repro.workloads.traffic import (
    TRAFFIC_PROCESSES,
    bursty_arrivals,
    diurnal_arrivals,
    make_arrivals,
    poisson_arrivals,
)
from repro.workloads.generator import (
    WorkloadGenerator,
    make_hazard_curve,
    make_option_portfolio,
    make_yield_curve,
)
from repro.workloads.scenarios import PaperScenario, PAPER_TABLE1, PAPER_TABLE2

__all__ = [
    "WorkloadGenerator",
    "make_yield_curve",
    "make_hazard_curve",
    "make_option_portfolio",
    "PaperScenario",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Arrival",
    "CLUSTER_WORKLOADS",
    "make_cluster_portfolio",
    "make_uniform_portfolio",
    "make_skewed_portfolio",
    "make_heterogeneous_portfolio",
    "make_burst_arrivals",
    "CurveHistory",
    "make_curve_history",
    "TRAFFIC_PROCESSES",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "make_arrivals",
]
