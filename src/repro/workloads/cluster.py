"""Scenario-diverse workloads for the multi-card cluster layer.

The paper's benchmark batch is perfectly uniform — identical 5-year
quarterly contracts — which is exactly the workload on which every
scheduling policy is equivalent.  The cluster layer exists for the
workloads a production pricing service actually sees, three of which are
generated here:

``skewed``
    Heavy-tailed per-option cost: lognormal maturities, with long contracts
    biased towards monthly payment frequencies, so a few options carry an
    order of magnitude more time points than the median.
``heterogeneous``
    A broad uniform mix of maturities, frequencies and recoveries — the
    realistic "whole book" portfolio.
``uniform``
    The paper's identical benchmark contracts, kept as the control.

Plus bursty *arrival processes* for the host-side batching queue: pricing
requests arrive in clumps (market-data ticks fan out into many quote
updates at once), not as a steady stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.workloads.generator import make_option_portfolio

__all__ = [
    "Arrival",
    "make_skewed_portfolio",
    "make_heterogeneous_portfolio",
    "make_uniform_portfolio",
    "make_burst_arrivals",
    "make_cluster_portfolio",
    "CLUSTER_WORKLOADS",
]


@dataclass(frozen=True)
class Arrival:
    """One pricing-request batch hitting the host queue.

    Attributes
    ----------
    time_s:
        Arrival time in seconds from the start of the session.
    options:
        The contracts carried by this request.
    """

    time_s: float
    options: list[CDSOption]

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValidationError(f"time_s must be >= 0, got {self.time_s}")
        if not self.options:
            raise ValidationError("an arrival must carry at least one option")

    @property
    def n_options(self) -> int:
        """Contracts in this request."""
        return len(self.options)


def make_uniform_portfolio(n_options: int, *, seed: int = 0) -> list[CDSOption]:
    """The paper's control workload: identical benchmark contracts.

    Parameters
    ----------
    n_options:
        Portfolio size.
    seed:
        Ignored (uniform portfolios are deterministic); accepted so every
        registry entry shares one signature.
    """
    if n_options < 1:
        raise ValidationError(f"n_options must be >= 1, got {n_options}")
    return [
        CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4)
        for _ in range(n_options)
    ]


def make_skewed_portfolio(
    n_options: int,
    *,
    median_maturity: float = 2.0,
    sigma: float = 0.8,
    max_maturity: float = 9.5,
    seed: int = 7,
) -> list[CDSOption]:
    """A heavy-tailed portfolio: most options cheap, a few very expensive.

    Maturities are lognormal around ``median_maturity`` (clipped to the
    curve span); options beyond five years pay monthly with high
    probability, so the cost tail is steeper than the maturity tail alone.
    This is the workload that separates cost-aware policies from
    round-robin.

    Parameters
    ----------
    n_options:
        Portfolio size.
    median_maturity:
        Median of the lognormal maturity distribution (years).
    sigma:
        Lognormal shape parameter; larger means heavier tail.
    max_maturity:
        Clip ceiling, kept inside the scenario's 10-year curve span.
    seed:
        Deterministic generator seed.
    """
    if n_options < 1:
        raise ValidationError(f"n_options must be >= 1, got {n_options}")
    if not 0.0 < median_maturity <= max_maturity:
        raise ValidationError(
            f"median_maturity must be in (0, {max_maturity}], "
            f"got {median_maturity}"
        )
    if sigma <= 0:
        raise ValidationError(f"sigma must be > 0, got {sigma}")
    gen = np.random.default_rng(seed)
    maturities = np.clip(
        np.exp(gen.normal(np.log(median_maturity), sigma, size=n_options)),
        0.25,
        max_maturity,
    )
    recoveries = gen.uniform(0.2, 0.6, size=n_options)
    options = []
    for m, r in zip(maturities, recoveries):
        if m > 5.0 and gen.random() < 0.8:
            freq = 12
        else:
            freq = int(gen.choice([2, 4]))
        options.append(
            CDSOption(maturity=float(m), frequency=freq, recovery_rate=float(r))
        )
    return options


def make_heterogeneous_portfolio(
    n_options: int, *, seed: int = 11
) -> list[CDSOption]:
    """A broad uniform mix of maturities and payment frequencies.

    Parameters
    ----------
    n_options:
        Portfolio size.
    seed:
        Deterministic generator seed.
    """
    return make_option_portfolio(
        n_options,
        maturity_range=(0.5, 9.5),
        frequencies=(1, 2, 4, 12),
        recovery_range=(0.1, 0.6),
        seed=seed,
    )


def make_burst_arrivals(
    n_bursts: int = 8,
    *,
    mean_batch: int = 32,
    burst_gap_s: float = 2e-3,
    workload: str = "heterogeneous",
    seed: int = 13,
) -> list[Arrival]:
    """A bursty arrival process for the host batching queue.

    Bursts arrive with exponential inter-arrival gaps; each burst carries a
    geometrically distributed number of options (so batch sizes are skewed
    too) drawn from the chosen portfolio generator.

    Parameters
    ----------
    n_bursts:
        Request batches to generate.
    mean_batch:
        Mean options per burst.
    burst_gap_s:
        Mean gap between bursts in seconds.
    workload:
        Registry key of the per-burst portfolio generator.
    seed:
        Deterministic generator seed.

    Returns
    -------
    list[Arrival]
        Arrivals sorted by time.
    """
    if n_bursts < 1:
        raise ValidationError(f"n_bursts must be >= 1, got {n_bursts}")
    if mean_batch < 1:
        raise ValidationError(f"mean_batch must be >= 1, got {mean_batch}")
    if burst_gap_s <= 0:
        raise ValidationError(f"burst_gap_s must be > 0, got {burst_gap_s}")
    gen = np.random.default_rng(seed)
    t = 0.0
    arrivals: list[Arrival] = []
    for b in range(n_bursts):
        t += float(gen.exponential(burst_gap_s))
        size = int(gen.geometric(1.0 / mean_batch))
        arrivals.append(
            Arrival(
                time_s=t,
                options=make_cluster_portfolio(
                    workload, size, seed=seed + 1000 + b
                ),
            )
        )
    return arrivals


#: Portfolio generator registry keyed by workload name (CLI ``--workload``).
CLUSTER_WORKLOADS = {
    "uniform": make_uniform_portfolio,
    "skewed": make_skewed_portfolio,
    "heterogeneous": make_heterogeneous_portfolio,
}


def make_cluster_portfolio(
    name: str, n_options: int, *, seed: int | None = None
) -> list[CDSOption]:
    """Build a portfolio from the :data:`CLUSTER_WORKLOADS` registry.

    Parameters
    ----------
    name:
        Registry key (``uniform``, ``skewed``, ``heterogeneous``).
    n_options:
        Portfolio size.
    seed:
        Optional seed override (each generator has its own default).

    Raises
    ------
    ValidationError
        For an unknown workload name.
    """
    try:
        maker = CLUSTER_WORKLOADS[name]
    except KeyError:
        raise ValidationError(
            f"unknown cluster workload {name!r}; "
            f"choose from {sorted(CLUSTER_WORKLOADS)}"
        ) from None
    if seed is None:
        return maker(n_options)
    return maker(n_options, seed=seed)
