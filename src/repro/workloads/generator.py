"""Seeded synthetic workload generation.

All generators take an explicit seed (or a :class:`numpy.random.Generator`)
so every test, example and benchmark is reproducible.  Curves are generated
with realistic shapes: upward-sloping yield curves built from a Nelson-
Siegel-like parametrisation plus small noise, and hazard curves with gently
increasing intensities (credit risk typically grows with horizon).
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.errors import ValidationError

__all__ = [
    "make_yield_curve",
    "make_hazard_curve",
    "make_option_portfolio",
    "WorkloadGenerator",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def make_yield_curve(
    n_points: int = 1024,
    *,
    span_years: float = 10.0,
    base_rate: float = 0.015,
    slope: float = 0.012,
    noise: float = 5e-4,
    seed: int | np.random.Generator = 0,
) -> YieldCurve:
    """An upward-sloping zero curve with ``n_points`` knots.

    ``rate(t) = base + slope * (1 - exp(-t / 2.5)) + noise`` — a Nelson-
    Siegel-style level/slope shape, clipped to stay positive.
    """
    if n_points < 2:
        raise ValidationError(f"n_points must be >= 2, got {n_points}")
    gen = _rng(seed)
    times = np.linspace(span_years / n_points, span_years, n_points)
    rates = base_rate + slope * (1.0 - np.exp(-times / 2.5))
    rates = rates + gen.normal(0.0, noise, size=n_points)
    rates = np.clip(rates, 1e-5, None)
    return YieldCurve(times, rates)


def make_hazard_curve(
    n_points: int = 1024,
    *,
    span_years: float = 10.0,
    base_hazard: float = 0.008,
    slope: float = 0.010,
    noise: float = 3e-4,
    seed: int | np.random.Generator = 1,
) -> HazardCurve:
    """A gently increasing hazard curve with ``n_points`` knots."""
    if n_points < 2:
        raise ValidationError(f"n_points must be >= 2, got {n_points}")
    gen = _rng(seed)
    times = np.linspace(span_years / n_points, span_years, n_points)
    hazards = base_hazard + slope * (times / span_years)
    hazards = hazards + gen.normal(0.0, noise, size=n_points)
    hazards = np.clip(hazards, 1e-6, None)
    return HazardCurve(times, hazards)


def make_option_portfolio(
    n_options: int,
    *,
    maturity_range: tuple[float, float] = (1.0, 8.0),
    frequencies: tuple[int, ...] = (2, 4, 12),
    recovery_range: tuple[float, float] = (0.2, 0.6),
    seed: int | np.random.Generator = 2,
) -> list[CDSOption]:
    """A random portfolio of ``n_options`` CDS contracts."""
    if n_options < 1:
        raise ValidationError(f"n_options must be >= 1, got {n_options}")
    lo, hi = maturity_range
    if not 0.0 < lo <= hi:
        raise ValidationError(f"bad maturity_range {maturity_range}")
    rlo, rhi = recovery_range
    if not 0.0 <= rlo <= rhi < 1.0:
        raise ValidationError(f"bad recovery_range {recovery_range}")
    gen = _rng(seed)
    maturities = gen.uniform(lo, hi, size=n_options)
    freqs = gen.choice(list(frequencies), size=n_options)
    recoveries = gen.uniform(rlo, rhi, size=n_options)
    return [
        CDSOption(
            maturity=float(m), frequency=int(f), recovery_rate=float(r)
        )
        for m, f, r in zip(maturities, freqs, recoveries)
    ]


class WorkloadGenerator:
    """Convenience bundle: one seeded source for curves and portfolios.

    Examples
    --------
    >>> wg = WorkloadGenerator(seed=42)
    >>> yc = wg.yield_curve(n_points=64)
    >>> opts = wg.portfolio(10)
    >>> len(opts)
    10
    """

    def __init__(self, seed: int = 0) -> None:
        self._root = np.random.default_rng(seed)

    def _child(self) -> np.random.Generator:
        return np.random.default_rng(self._root.integers(0, 2**63 - 1))

    def yield_curve(self, n_points: int = 1024, **kwargs) -> YieldCurve:
        """Seeded :func:`make_yield_curve`."""
        kwargs.setdefault("seed", self._child())
        return make_yield_curve(n_points, **kwargs)

    def hazard_curve(self, n_points: int = 1024, **kwargs) -> HazardCurve:
        """Seeded :func:`make_hazard_curve`."""
        kwargs.setdefault("seed", self._child())
        return make_hazard_curve(n_points, **kwargs)

    def portfolio(self, n_options: int, **kwargs) -> list[CDSOption]:
        """Seeded :func:`make_option_portfolio`."""
        kwargs.setdefault("seed", self._child())
        return make_option_portfolio(n_options, **kwargs)
