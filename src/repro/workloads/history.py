"""Synthetic market-data history for historical-replay risk scenarios.

A historical-simulation VaR run replays observed day-over-day curve moves
on top of today's market state.  No real market data ships with this
reproduction, so this module generates a *deterministic synthetic history*:
a mean-reverting random walk of yield and hazard curves around the paper
scenario's base shapes, with correlated level moves and smaller independent
knot noise — enough structure that replay scenarios exercise the same code
paths (level shifts, steepening, credit/rates co-moves) as a real history
would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.errors import ValidationError
from repro.workloads.generator import make_hazard_curve, make_yield_curve

__all__ = ["CurveHistory", "make_curve_history"]


@dataclass(frozen=True)
class CurveHistory:
    """A dated sequence of joint (yield, hazard) market states.

    Attributes
    ----------
    yields / hazards:
        Equal-length curve sequences; entry ``d`` is day ``d``'s close.
    """

    yields: tuple[YieldCurve, ...]
    hazards: tuple[HazardCurve, ...]

    def __post_init__(self) -> None:
        if len(self.yields) != len(self.hazards):
            raise ValidationError(
                "history needs one hazard curve per yield curve, got "
                f"{len(self.yields)} and {len(self.hazards)}"
            )
        if len(self.yields) < 2:
            raise ValidationError(
                "a history needs at least 2 days to have any day-over-day move"
            )

    @property
    def n_days(self) -> int:
        """Days of history."""
        return len(self.yields)

    @property
    def n_moves(self) -> int:
        """Day-over-day moves available for replay (``n_days - 1``)."""
        return len(self.yields) - 1


def make_curve_history(
    n_days: int = 64,
    *,
    n_points: int = 64,
    span_years: float = 10.0,
    rate_daily_vol: float = 4e-4,
    hazard_daily_vol: float = 6e-4,
    rate_hazard_correlation: float = -0.3,
    mean_reversion: float = 0.05,
    knot_noise: float = 5e-5,
    seed: int = 17,
) -> CurveHistory:
    """Generate a deterministic synthetic curve history.

    Day-over-day dynamics: each curve's *level* follows a mean-reverting
    Gaussian walk (rates and hazards correlated by
    ``rate_hazard_correlation`` — credit spreads tend to widen when rates
    rally), plus independent per-knot noise an order of magnitude smaller.

    Parameters
    ----------
    n_days:
        Days of history to generate (>= 2).
    n_points / span_years:
        Knot grid of every curve in the history.
    rate_daily_vol / hazard_daily_vol:
        Daily level-move standard deviations (decimal).
    rate_hazard_correlation:
        Correlation between the two level moves, in ``(-1, 1)``.
    mean_reversion:
        Pull-back fraction towards the base level per day.
    knot_noise:
        Standard deviation of the idiosyncratic per-knot noise.
    seed:
        Deterministic generator seed.
    """
    if n_days < 2:
        raise ValidationError(f"n_days must be >= 2, got {n_days}")
    if not -1.0 < rate_hazard_correlation < 1.0:
        raise ValidationError(
            f"correlation must be in (-1, 1), got {rate_hazard_correlation}"
        )
    if not 0.0 <= mean_reversion <= 1.0:
        raise ValidationError(
            f"mean_reversion must be in [0, 1], got {mean_reversion}"
        )
    gen = np.random.default_rng(seed)
    base_yc = make_yield_curve(n_points, span_years=span_years, seed=gen)
    base_hc = make_hazard_curve(n_points, span_years=span_years, seed=gen)

    # 2x2 Cholesky factor for the correlated (rate, hazard) level moves.
    rho = rate_hazard_correlation
    chol = np.array([[1.0, 0.0], [rho, np.sqrt(1.0 - rho * rho)]])

    rate_values = np.asarray(base_yc.values).copy()
    hazard_values = np.asarray(base_hc.values).copy()
    rate_level = 0.0
    hazard_level = 0.0
    yields = [base_yc]
    hazards = [base_hc]
    for _ in range(n_days - 1):
        dr, dh = chol @ gen.standard_normal(2)
        rate_level += dr * rate_daily_vol - mean_reversion * rate_level
        hazard_level += dh * hazard_daily_vol - mean_reversion * hazard_level
        rates = np.clip(
            rate_values + rate_level + gen.normal(0.0, knot_noise, n_points),
            1e-5,
            None,
        )
        hzs = np.clip(
            hazard_values + hazard_level + gen.normal(0.0, knot_noise, n_points),
            1e-6,
            None,
        )
        yields.append(YieldCurve(base_yc.times, rates))
        hazards.append(HazardCurve(base_hc.times, hzs))
    return CurveHistory(yields=tuple(yields), hazards=tuple(hazards))
