"""The paper's experimental scenario and every calibration constant.

The paper states its workload precisely enough to reconstruct: "For all
experiments, 1024 interest and hazard rates are used" (Section II.B); the
performance metric is options/second including PCIe transfer.  It does not
state the option parameters; we use **5-year quarterly options** (20 time
points — the standard benchmark contract, and the choice under which the
mechanistic cycle model lands closest to all five published rows
simultaneously) with rate tables spanning 10 years.

Calibration constants
---------------------
Only three free constants are fitted to the paper's numbers; everything
else is mechanistic (loop trip counts x operator latencies):

``invocation_overhead_cycles = 18_000``
    Host-driven kernel invocation cost (XRT enqueue + ap_ctrl handshake +
    DMA doorbell), ~60 us at 300 MHz.  Charged once per *option* for the
    baseline and per-option-restart dataflow engines (both are invoked per
    option) and once per *batch* for the free-running engines.  This is
    what separates the optimised-dataflow row from the inter-option row in
    Table I.

``uram_read_ports = 2``
    The rate tables live in dual-ported URAM.  Replicated hazard/
    interpolation units share the table ports, capping the effective
    speedup of 6-fold replication at ~2x — exactly the factor the paper
    observes ("we replicated the hazard and interpolation calculations six
    times, which doubled performance").

``multi_engine_contention = 0.05``
    Shared HBM/PCIe-interface contention between engines:
    ``rate(n) = n * rate(1) / (1 + 0.05 * (n - 1))`` reproducing Table II's
    sub-linear five-engine scaling (4.12x at 5 engines).

The CPU model's two constants (``calibration_factor = 2.565``,
``contention = 0.0768``) are documented in :mod:`repro.cpu.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.fpga.clock import ClockDomain
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.hbm import HBMModel
from repro.fpga.pcie import PCIeModel
from repro.fpga.power import FPGAPowerModel
from repro.cpu.power import CPUPowerModel
from repro.cpu.scaling import CPUPerformanceModel

__all__ = ["PaperScenario", "PAPER_TABLE1", "PAPER_TABLE2"]


#: Table I of the paper (options/second).
PAPER_TABLE1: dict[str, float] = {
    "cpu_single_core": 8738.92,
    "xilinx_baseline": 3462.53,
    "optimised_dataflow": 7368.42,
    "dataflow_interoption": 13298.70,
    "vectorised_dataflow": 27675.67,
}

#: Table II of the paper: (options/second, watts, options/watt).
PAPER_TABLE2: dict[str, tuple[float, float, float]] = {
    "cpu_24_cores": (75823.77, 175.39, 432.31),
    "fpga_1_engine": (27675.67, 35.86, 771.77),
    "fpga_2_engines": (53763.86, 35.79, 1502.20),
    "fpga_5_engines": (114115.92, 37.38, 3052.86),
}


@dataclass(frozen=True)
class PaperScenario:
    """The paper's experimental configuration, fully parameterised.

    Construct with defaults for the published setup; override fields for
    ablations (e.g. ``replication_factor=2`` or ``n_rates=256``).

    Parameters
    ----------
    n_rates:
        Entries in each rate table (paper: 1024).
    curve_span_years:
        Horizon of the rate tables.
    option_maturity / option_frequency / option_recovery:
        The benchmark contract (5-year quarterly, 40% recovery).
    n_options:
        Batch size used for simulated runs.  Throughput is
        batch-size-insensitive for the free-running engines, so the default
        keeps discrete-event runs fast; Table II quality is unchanged at
        1024.
    clock:
        FPGA kernel clock domain.
    invocation_overhead_cycles:
        See module docstring.
    replication_factor:
        Hazard/interp replication in the vectorised engine (paper: 6).
    uram_read_ports:
        Concurrent table reads per URAM instance (dual-ported: 2).
    multi_engine_contention:
        Shared-interface contention coefficient between engines.
    stream_depth:
        Default FIFO depth between dataflow stages.
    """

    # Workload -----------------------------------------------------------
    n_rates: int = 1024
    curve_span_years: float = 10.0
    option_maturity: float = 5.0
    option_frequency: int = 4
    option_recovery: float = 0.4
    n_options: int = 128
    seed: int = 2021

    # FPGA platform ------------------------------------------------------
    device: FPGADevice = ALVEO_U280
    clock: ClockDomain = field(default_factory=lambda: ClockDomain(300e6))
    hbm: HBMModel = field(default_factory=HBMModel)
    pcie: PCIeModel = field(default_factory=PCIeModel)
    fpga_power: FPGAPowerModel = field(default_factory=FPGAPowerModel)

    # Engine calibration ---------------------------------------------------
    invocation_overhead_cycles: float = 18_000.0
    replication_factor: int = 6
    uram_read_ports: int = 2
    multi_engine_contention: float = 0.05
    stream_depth: int = 4
    #: Datapath precision: "double" (the paper's engines) or "single" (the
    #: reduced-precision future-work study): shorter operator latencies and
    #: doubled effective table-port bandwidth (a 64-bit URAM port delivers
    #: two binary32 entries per cycle).
    precision: str = "double"

    # CPU models -----------------------------------------------------------
    cpu_perf: CPUPerformanceModel = field(default_factory=CPUPerformanceModel)
    cpu_power: CPUPowerModel = field(default_factory=CPUPowerModel)

    def __post_init__(self) -> None:
        if self.n_rates < 2:
            raise ValidationError(f"n_rates must be >= 2, got {self.n_rates}")
        if self.n_options < 1:
            raise ValidationError(f"n_options must be >= 1, got {self.n_options}")
        if self.replication_factor < 1:
            raise ValidationError("replication_factor must be >= 1")
        if self.uram_read_ports < 1:
            raise ValidationError("uram_read_ports must be >= 1")
        if self.multi_engine_contention < 0:
            raise ValidationError("multi_engine_contention must be >= 0")
        if self.option_maturity > self.curve_span_years:
            raise ValidationError(
                "option maturity beyond the curve span would flat-extrapolate "
                "the whole tail; extend curve_span_years"
            )
        if self.precision not in ("double", "single"):
            raise ValidationError(
                f"precision must be 'double' or 'single', got {self.precision!r}"
            )

    @property
    def effective_uram_ports(self) -> int:
        """Concurrent table reads per URAM instance at the chosen precision.

        A dual-ported URAM delivers ``uram_read_ports`` 64-bit words per
        cycle; in single precision each word carries two table entries.
        """
        return self.uram_read_ports * (2 if self.precision == "single" else 1)

    # ------------------------------------------------------------------
    # Workload construction (deterministic in the seed)
    # ------------------------------------------------------------------
    def yield_curve(self) -> YieldCurve:
        """The interest-rate table: ``n_rates`` entries over the span."""
        gen = np.random.default_rng(self.seed)
        times = np.linspace(
            self.curve_span_years / self.n_rates, self.curve_span_years, self.n_rates
        )
        rates = 0.015 + 0.012 * (1.0 - np.exp(-times / 2.5))
        rates = np.clip(rates + gen.normal(0.0, 5e-4, self.n_rates), 1e-5, None)
        return YieldCurve(times, rates)

    def hazard_curve(self) -> HazardCurve:
        """The hazard-rate table: ``n_rates`` entries over the span."""
        gen = np.random.default_rng(self.seed + 1)
        times = np.linspace(
            self.curve_span_years / self.n_rates, self.curve_span_years, self.n_rates
        )
        hazards = 0.008 + 0.010 * (times / self.curve_span_years)
        hazards = np.clip(hazards + gen.normal(0.0, 3e-4, self.n_rates), 1e-6, None)
        return HazardCurve(times, hazards)

    def options(self, n: int | None = None) -> list[CDSOption]:
        """The option batch: ``n`` identical benchmark contracts."""
        count = self.n_options if n is None else n
        if count < 1:
            raise ValidationError(f"option count must be >= 1, got {count}")
        return [
            CDSOption(
                maturity=self.option_maturity,
                frequency=self.option_frequency,
                recovery_rate=self.option_recovery,
            )
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    def pcie_seconds(self, n_options: int) -> float:
        """PCIe overhead for a batch (included in all FPGA rates)."""
        return self.pcie.batch_seconds(n_options, self.n_rates)

    def with_overrides(self, **kwargs) -> "PaperScenario":
        """A copy with selected fields replaced (ablation helper)."""
        from dataclasses import replace

        return replace(self, **kwargs)
