"""Unit tests for capacity planning."""

import pytest

from repro.analysis.capacity import (
    compare_platforms,
    plan_cpu_deployment,
    plan_fpga_deployment,
)
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario()


class TestFPGAPlanning:
    def test_loose_deadline_one_engine(self, sc):
        plan = plan_fpga_deployment(sc, 1_000, deadline_seconds=10.0)
        assert plan.units == 1
        assert plan.cards == 1
        assert plan.meets_deadline

    def test_tight_deadline_needs_more_engines(self, sc):
        loose = plan_fpga_deployment(sc, 100_000, deadline_seconds=10.0)
        tight = plan_fpga_deployment(sc, 100_000, deadline_seconds=1.0)
        assert tight.units > loose.units

    def test_very_tight_deadline_spills_to_second_card(self, sc):
        plan = plan_fpga_deployment(sc, 100_000, deadline_seconds=0.6)
        assert plan.cards >= 2

    def test_batch_time_below_deadline(self, sc):
        plan = plan_fpga_deployment(sc, 50_000, deadline_seconds=0.9)
        assert plan.batch_seconds <= 0.9

    def test_impossible_deadline_raises(self, sc):
        with pytest.raises(ValidationError):
            plan_fpga_deployment(sc, 10_000_000, deadline_seconds=1e-5)

    def test_single_precision_plans_leaner(self, sc):
        """The reduced-precision engine needs fewer units for the same job."""
        dp = plan_fpga_deployment(sc, 200_000, deadline_seconds=1.0)
        sp = plan_fpga_deployment(
            sc.with_overrides(precision="single"), 200_000, deadline_seconds=1.0
        )
        assert sp.units <= dp.units

    def test_validation(self, sc):
        with pytest.raises(ValidationError):
            plan_fpga_deployment(sc, 0, 1.0)
        with pytest.raises(ValidationError):
            plan_fpga_deployment(sc, 10, 0.0)


class TestCPUPlanning:
    def test_loose_deadline_few_cores(self, sc):
        plan = plan_cpu_deployment(sc, 1_000, deadline_seconds=10.0)
        assert plan.units == 1
        assert plan.meets_deadline

    def test_unreachable_deadline_flagged(self, sc):
        plan = plan_cpu_deployment(sc, 1_000_000, deadline_seconds=0.5)
        assert not plan.meets_deadline
        assert plan.units == sc.cpu_perf.cpu.cores

    def test_core_count_monotone_in_load(self, sc):
        small = plan_cpu_deployment(sc, 5_000, deadline_seconds=1.0)
        large = plan_cpu_deployment(sc, 50_000, deadline_seconds=1.0)
        assert large.units >= small.units


class TestComparePlatforms:
    def test_renders_both(self, sc):
        text = compare_platforms(sc, 50_000, deadline_seconds=1.0)
        assert "U280" in text
        assert "Xeon" in text

    def test_paper_shape_fpga_more_energy_efficient(self, sc):
        """For a deadline both platforms can meet, the FPGA batch costs
        several times less energy (the paper's efficiency headline applied
        operationally)."""
        fpga = plan_fpga_deployment(sc, 60_000, deadline_seconds=1.0)
        cpu = plan_cpu_deployment(sc, 60_000, deadline_seconds=1.0)
        assert cpu.meets_deadline
        assert cpu.energy_joules / fpga.energy_joules > 3.0
