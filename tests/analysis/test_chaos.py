"""The chaos harness: baseline golden pin, recovery, determinism.

Most tests here run a *small* matrix (a few hundred requests on a small
scenario) so the suite stays fast; the golden pin runs the default
baseline cell once because the committed golden was captured at the
default workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.chaos import (
    DEFAULT_CHAOS_MATRIX,
    ChaosScenario,
    chaos_report_dict,
    generate_chaos_report,
    render_chaos_report,
)
from repro.analysis.serving import generate_serving_report
from repro.errors import ValidationError
from repro.faults import FaultPlan
from repro.workloads.scenarios import PaperScenario

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Host wall-clock keys inside the baseline serving block — never pinned.
VOLATILE = {"host_seconds", "requests_per_sec_host"}

#: Small matrix scaled to a ~0.1 s replay (300 requests at 3000 req/s).
SMALL_MATRIX = (
    ChaosScenario("baseline", ""),
    ChaosScenario("crash", "crash:card=1,at=0.02,repair=0.02"),
    ChaosScenario(
        "crash-straggler",
        "slow:card=1,at=0.005,for=0.06,factor=80;crash:card=1,at=0.03,repair=0.03",
    ),
    ChaosScenario("straggler-hedged", "slow:card=1,at=0.01,for=0.08,factor=6",
                  hedge=True),
)

SMALL_KW = dict(
    seed=7,
    n_requests=300,
    rate_hz=3000.0,
    n_cards=2,
    max_batch=16,
    queue_depth=256,
    n_states=32,
    matrix=SMALL_MATRIX,
)


@pytest.fixture(scope="module")
def small_scenario():
    return PaperScenario(n_rates=64, n_options=10)


@pytest.fixture(scope="module")
def small_report(small_scenario):
    return generate_chaos_report(small_scenario, **SMALL_KW)


class TestBaselinePin:
    def test_baseline_row_matches_serving_golden(self):
        """The zero-fault cell takes the legacy path byte-for-byte: its
        serving report must equal the committed chaos baseline golden."""
        report = generate_chaos_report(
            matrix=(ChaosScenario("baseline", ""),)
        )
        produced = chaos_report_dict(report)["baseline"]
        golden = json.loads((GOLDEN_DIR / "chaos_baseline.json").read_text())
        strip = lambda d: {k: v for k, v in d.items() if k not in VOLATILE}
        assert strip(produced) == strip(golden)


class TestResilience:
    def test_conservation_every_row(self, small_report):
        for row in small_report.rows:
            assert (
                row.n_completed + row.n_failed + row.n_shed
                == small_report.n_requests
            ), row.name

    def test_crash_with_repair_recovers(self, small_report):
        row = {r.name: r for r in small_report.rows}["crash"]
        assert row.recovered
        assert row.recovery_ms is not None

    def test_crash_straggler_exercises_retries(self, small_report):
        row = {r.name: r for r in small_report.rows}["crash-straggler"]
        assert row.n_retries > 0
        assert row.duplicate_work_ratio > 0.0

    def test_hedged_cell_hedges(self, small_report):
        row = {r.name: r for r in small_report.rows}["straggler-hedged"]
        assert row.hedged
        assert row.n_hedges > 0

    def test_baseline_row_clean(self, small_report):
        row = small_report.rows[0]
        assert row.name == "baseline" and row.spec == ""
        assert row.n_failed == 0 and row.n_retries == 0
        assert row.recovered


class TestDeterminism:
    def test_rows_reproduce_exactly(self, small_scenario, small_report):
        again = generate_chaos_report(small_scenario, **SMALL_KW)
        assert again.rows == small_report.rows

    def test_fault_report_matches_golden(self, small_scenario):
        """Satellite pin: same seed + same plan ⇒ identical FaultReport
        JSON, against a committed golden."""
        report = generate_serving_report(
            small_scenario,
            n_requests=300,
            rate_hz=3000.0,
            n_cards=2,
            max_batch=16,
            queue_depth=256,
            n_states=32,
            seed=7,
            faults=FaultPlan.from_spec(
                "slow:card=1,at=0.005,for=0.06,factor=80;"
                "crash:card=1,at=0.03,repair=0.03",
                seed=7,
            ),
        )
        golden = json.loads((GOLDEN_DIR / "fault_report.json").read_text())
        assert report.fault_report.to_dict() == golden


class TestRendering:
    def test_table_lists_every_scenario(self, small_report):
        text = render_chaos_report(small_report)
        for row in small_report.rows:
            assert row.name in text
        assert "Chaos matrix" in text

    def test_dict_shape(self, small_report):
        payload = chaos_report_dict(small_report)
        assert [r["name"] for r in payload["rows"]] == [
            r.name for r in small_report.rows
        ]
        assert payload["baseline"]["n_requests"] == 300
        assert payload["seed"] == 7


class TestValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(ValidationError):
            generate_chaos_report(matrix=())

    def test_default_matrix_leads_with_baseline(self):
        assert DEFAULT_CHAOS_MATRIX[0].spec == ""
