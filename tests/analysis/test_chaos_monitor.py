"""The chaos harness under monitoring: the committed detection golden.

Two properties the golden pins are acceptance-grade:

* the **baseline** cell fires zero alerts (no false positives on a
  healthy replay), and
* the **crash-1of4** cell detects its card crash with a finite
  time-to-detect and no false positives — from sampled availability
  alone, since prospective dispatch steers around the dead card and
  keeps the latency profile indistinguishable from baseline.

Everything is simulated-time arithmetic, so the whole document (floats
included) reproduces exactly and the pin is a strict equality.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.chaos import generate_chaos_report
from repro.monitor import monitor_result_dict
from repro.monitor.core import MONITOR_SCHEMA_VERSION

GOLDEN = (
    Path(__file__).resolve().parent / "golden" / "chaos_monitor_seed7.json"
)


@pytest.fixture(scope="module")
def monitored_report():
    """The default seed-7 matrix, every cell monitored."""
    return generate_chaos_report(monitor=True)


@pytest.fixture(scope="module")
def monitor_payload(monitored_report):
    return {
        "schema_version": MONITOR_SCHEMA_VERSION,
        "seed": monitored_report.seed,
        "cells": {
            name: monitor_result_dict(result)
            for name, result in monitored_report.monitor.items()
        },
    }


class TestGoldenPin:
    def test_matches_committed_golden_exactly(self, monitor_payload):
        golden = json.loads(GOLDEN.read_text())
        assert monitor_payload == golden

    def test_baseline_fires_no_alerts(self, monitor_payload):
        baseline = monitor_payload["cells"]["baseline"]
        assert baseline["n_alerts"] == 0
        assert baseline["detection"] is None  # no plan, nothing to score

    def test_crash_detected_with_finite_ttd(self, monitor_payload):
        crash = monitor_payload["cells"]["crash-1of4"]
        det = crash["detection"]
        assert det["detected"] is True
        assert det["time_to_detect_s"] is not None
        assert 0.0 < det["time_to_detect_s"] < 0.1
        assert det["false_positives"] == 0
        assert det["false_negatives"] == 0

    def test_crash_alert_is_availability(self, monitor_payload):
        crash = monitor_payload["cells"]["crash-1of4"]
        assert [a["objective"] for a in crash["alerts"]] == [
            "card-availability"
        ]

    def test_correlated_loss_detected_faster_than_single_crash(
        self, monitor_payload
    ):
        # Losing 2 of 4 cards burns budget twice as fast, so the burn
        # windows fill sooner.
        crash = monitor_payload["cells"]["crash-1of4"]["detection"]
        corr = monitor_payload["cells"]["correlated-2of4"]["detection"]
        assert corr["time_to_detect_s"] < crash["time_to_detect_s"]

    def test_hedged_straggler_is_masked(self, monitor_payload):
        # Hedging absorbs the slowdown: no SLO breaches, so the fault
        # goes undetected — an honest false negative, pinned as such.
        cell = monitor_payload["cells"]["straggler-hedged"]
        assert cell["n_alerts"] == 0
        assert cell["detection"]["false_negatives"] == 1


class TestMonitoredRowsUnchanged:
    def test_resilience_rows_match_unmonitored_run(self, monitored_report):
        # Monitoring must observe, never perturb: the resilience table
        # of a monitored run equals the unmonitored one exactly.
        plain = generate_chaos_report()
        assert monitored_report.rows == plain.rows
        assert plain.monitor is None

    def test_monitor_maps_every_cell(self, monitored_report):
        assert set(monitored_report.monitor) == {
            row.name for row in monitored_report.rows
        }
