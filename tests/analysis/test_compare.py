"""Unit tests for paper comparison records."""

import pytest

from repro.analysis.compare import Comparison, compare_ratio, shape_report
from repro.errors import ValidationError


class TestComparison:
    def test_pass_within_tolerance(self):
        c = Comparison("x", measured=2.0, expected=2.1, rel_tolerance=0.1)
        assert c.passes
        assert c.relative_error == pytest.approx(0.1 / 2.1)

    def test_fail_outside_tolerance(self):
        c = Comparison("x", measured=3.0, expected=2.0, rel_tolerance=0.25)
        assert not c.passes

    def test_render_states_verdict(self):
        assert "[PASS]" in Comparison("x", 1.0, 1.0).render()
        assert "[FAIL]" in Comparison("x", 9.0, 1.0).render()

    def test_validation(self):
        with pytest.raises(ValidationError):
            Comparison("x", 1.0, 0.0)
        with pytest.raises(ValidationError):
            Comparison("x", 1.0, 1.0, rel_tolerance=0.0)


class TestCompareRatio:
    def test_ratio_of_ratios(self):
        c = compare_ratio("speedup", 200.0, 100.0, 210.0, 100.0)
        assert c.measured == pytest.approx(2.0)
        assert c.expected == pytest.approx(2.1)
        assert c.passes

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValidationError):
            compare_ratio("x", 1.0, 0.0, 1.0, 1.0)


class TestShapeReport:
    def test_summary_line(self):
        comps = [
            Comparison("a", 1.0, 1.0),
            Comparison("b", 10.0, 1.0),
        ]
        text = shape_report("My study", comps)
        assert "My study" in text
        assert "1/2 shape checks pass" in text
