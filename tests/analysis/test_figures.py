"""Integration tests for the figure generators."""

import pytest

from repro.analysis.figures import (
    figure1_baseline,
    figure2_dataflow,
    figure3_vectorised,
)
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario(n_rates=64, n_options=2)


class TestFigure1:
    def test_sequential_phases(self):
        g = figure1_baseline()
        # The seven boxes of the paper's flowchart.
        assert len(g.nodes) == 7
        assert g.stage_depth() == 7
        names = {n.name for n in g.nodes}
        assert "default_probability" in names
        assert "combine_spread" in names

    def test_renders(self):
        g = figure1_baseline()
        assert "default_probability" in g.to_dot()
        assert "default_probability" in g.to_ascii()


class TestFigure2:
    def test_concurrent_stages(self, sc):
        g = figure2_dataflow(sc)
        names = {n.name for n in g.nodes}
        for stage in ("timegrid", "hazard_acc", "interp", "combine", "drain"):
            assert stage in names
        assert g.is_acyclic()

    def test_red_and_blue_streams(self, sc):
        """Fig. 2's legend: red = per option, blue = per time point."""
        g = figure2_dataflow(sc)
        per_option = [e for e in g.edges if e.per_option]
        per_point = [e for e in g.edges if not e.per_option]
        assert per_option and per_point

    def test_parallel_branches(self, sc):
        """Hazard and interpolation paths both fan out of the time grid."""
        g = figure2_dataflow(sc)
        assert g.fan_out("timegrid") == 3  # hazard, interp, params


class TestFigure3:
    def test_replica_clusters(self, sc):
        g = figure3_vectorised(sc)
        groups = g.groups()
        assert len(groups["hazard"]) == sc.replication_factor
        assert len(groups["interp"]) == sc.replication_factor

    def test_round_robin_scheduler_fanout(self, sc):
        g = figure3_vectorised(sc)
        assert g.fan_out("hazard_rr_sched") == sc.replication_factor
        assert g.fan_in("hazard_rr_collect") == sc.replication_factor

    def test_dot_has_clusters(self, sc):
        dot = figure3_vectorised(sc).to_dot()
        assert "subgraph cluster_" in dot
