"""The gateway report: generation, rendering, and the serve-identity pin.

The load-bearing test here is the **pass-through identity**: a gateway
collapsed to one server, one tenant and no cache is just plumbing, so
its report must reproduce the committed ``serve.json`` golden's
simulated numbers bit-for-bit — routing, admission and cache lookup all
cost zero when switched off.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.gateway import (
    gateway_report_dict,
    generate_gateway_report,
    render_gateway_report,
)
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The exact configuration behind tests/analysis/golden/serve.json.
SERVE_GOLDEN_KWARGS = dict(
    n_requests=400,
    rate_hz=20000.0,
    n_servers=1,
    n_cards=2,
    n_tenants=1,
    cache=False,
    n_ticks=0,
    n_states=32,
    seed=5,
)


@pytest.fixture(scope="module")
def small_report():
    sc = PaperScenario(n_rates=64, n_options=12)
    return generate_gateway_report(
        sc,
        n_requests=600,
        rate_hz=40000.0,
        n_states=48,
        n_ticks=20,
        seed=11,
    )


class TestGenerate:
    def test_accounting(self, small_report):
        r = small_report.result
        assert r.n_offered == 600
        assert r.n_offered == r.n_completed + r.n_shed + r.n_failed

    def test_config_echoed(self, small_report):
        assert small_report.n_requests == 600
        assert small_report.seed == 11
        assert small_report.cache is True
        assert small_report.n_servers == 2
        assert small_report.fault_spec == ""

    def test_single_tenant_needs_no_profiles(self):
        sc = PaperScenario(n_rates=64, n_options=8)
        rep = generate_gateway_report(
            sc, n_requests=50, rate_hz=20000.0, n_tenants=1, n_states=16,
            n_ticks=0, seed=3,
        )
        assert rep.n_tenants == 1
        assert [t.tenant for t in rep.result.tenants] == ["default"]

    def test_bad_tenant_count_raises(self):
        sc = PaperScenario(n_rates=64, n_options=8)
        with pytest.raises(ValidationError):
            generate_gateway_report(sc, n_tenants=9, seed=3)


class TestRender:
    def test_text_is_deterministic(self, small_report):
        a = render_gateway_report(small_report)
        b = render_gateway_report(small_report)
        assert a == b
        assert "Gateway" in a
        assert "gold" in a

    def test_dict_roundtrips_through_json(self, small_report):
        payload = gateway_report_dict(small_report)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cache"] == "on"
        assert payload["n_offered"] == 600


class TestServeIdentity:
    """1 server x 1 tenant x cache off == the committed serving golden."""

    #: Aggregate keys the two reports share, all simulated time.
    SHARED = (
        "n_offered", "n_completed", "n_shed_queue", "n_shed_deadline",
        "n_deadline_met", "n_late", "span_seconds", "throughput_rps",
        "goodput_rps", "shed_rate", "deadline_hit_rate", "latency",
    )

    @pytest.fixture(scope="class")
    def passthrough(self):
        # Same scenario the golden's CLI run built from ``--options 8``.
        sc = PaperScenario(n_options=8)
        report = generate_gateway_report(sc, **SERVE_GOLDEN_KWARGS)
        golden = json.loads((GOLDEN_DIR / "serve.json").read_text())
        return gateway_report_dict(report), golden

    def test_aggregates_bit_identical(self, passthrough):
        produced, golden = passthrough
        for key in self.SHARED:
            assert produced[key] == golden[key], key

    def test_server_row_matches_dispatch_shape(self, passthrough):
        produced, golden = passthrough
        (server,) = produced["servers"]
        assert server["n_dispatches"] == golden["n_dispatches"]
        assert server["mean_batch_requests"] == golden["mean_batch_requests"]
        assert server["mean_batch_rows"] == golden["mean_batch_rows"]
        assert server["latency"] == golden["latency"]

    def test_gateway_machinery_reports_inert(self, passthrough):
        produced, _ = passthrough
        assert produced["cache"] == "off"
        assert produced["n_cache_hits"] == 0
        assert produced["n_cache_joins"] == 0
        assert produced["n_shed_quota"] == 0
        assert produced["n_failed"] == 0
