"""Golden-snapshot tests for the CLI ``--json`` reports.

The committed goldens under ``tests/analysis/golden/`` were captured
from ``repro-cds serve --json`` and ``repro-cds risk --json`` **before**
the timing layers were rebuilt on :mod:`repro.sim` — so these tests
prove the rebuild (and any future change) leaves every simulated number
bit-identical, not merely close.  Host wall-clock keys are stripped;
everything else must match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Keys measured on the host wall-clock — real time, never pinned.
VOLATILE = {
    "serve": {"host_seconds", "requests_per_sec_host"},
    "risk": {"host_seconds", "scenarios_per_sec"},
    "gateway_seed7": {"host_seconds", "requests_per_sec_host"},
}

ARGV = {
    "serve": [
        "--options", "8", "serve", "--json", "--requests", "400",
        "--rate", "20000", "--states", "32", "--cards", "2", "--seed", "5",
    ],
    "risk": [
        "--options", "8", "risk", "--json", "--scenarios", "64",
        "--cards", "2", "--seed", "5",
    ],
    "gateway_seed7": ["gateway", "--seed", "7", "--json"],
}


def _strip(payload: dict, volatile: set[str]) -> dict:
    missing = volatile - payload.keys()
    assert not missing, f"expected volatile keys absent from report: {missing}"
    return {k: v for k, v in payload.items() if k not in volatile}


@pytest.mark.parametrize("report", sorted(ARGV))
def test_json_report_matches_golden(report, capsys):
    assert main(ARGV[report]) == 0
    produced = json.loads(capsys.readouterr().out)
    golden = json.loads((GOLDEN_DIR / f"{report}.json").read_text())
    assert _strip(produced, VOLATILE[report]) == _strip(golden, VOLATILE[report])


@pytest.mark.parametrize("report", sorted(ARGV))
def test_json_report_is_deterministic(report, capsys):
    """Same flags, same process → byte-identical simulated payloads."""
    assert main(ARGV[report]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(ARGV[report]) == 0
    second = json.loads(capsys.readouterr().out)
    assert _strip(first, VOLATILE[report]) == _strip(second, VOLATILE[report])
