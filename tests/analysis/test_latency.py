"""Unit tests for the streaming latency analysis."""

import numpy as np
import pytest

from repro.analysis.latency import LatencyProfile, measure_streaming_latency
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def profile():
    sc = PaperScenario(n_rates=128, n_options=12)
    return measure_streaming_latency(sc)


class TestMeasurement:
    def test_one_completion_per_option(self, profile):
        assert profile.completion_cycles.size == 12
        assert profile.inter_completion_cycles.size == 11

    def test_completions_monotone(self, profile):
        assert np.all(np.diff(profile.completion_cycles) > 0)

    def test_fill_latency_positive(self, profile):
        assert profile.first_result_cycles > 0

    def test_steady_cadence_matches_bottleneck(self):
        """Steady-state cadence ~ time-points x table scan / replication
        speedup."""
        sc = PaperScenario(n_options=12)
        prof = measure_streaming_latency(sc, replication=1)
        # 20 points x 1024-entry scan per option.
        assert prof.steady_cadence_cycles == pytest.approx(20 * 1024, rel=0.1)

    def test_replication_shortens_cadence(self):
        sc = PaperScenario(n_rates=256, n_options=10)
        slow = measure_streaming_latency(sc, replication=1)
        fast = measure_streaming_latency(sc, replication=6)
        assert fast.steady_cadence_cycles < slow.steady_cadence_cycles

    def test_render(self, profile):
        text = profile.render(300e6)
        assert "p99" in text and "us" in text


class TestLatencyProfile:
    def test_percentiles_ordered(self, profile):
        assert profile.percentile(50) <= profile.percentile(95) <= profile.percentile(99)

    def test_bad_percentile(self, profile):
        with pytest.raises(ValidationError):
            profile.percentile(101)

    def test_empty_gaps(self):
        p = LatencyProfile(
            completion_cycles=np.array([100.0]),
            inter_completion_cycles=np.array([]),
            first_result_cycles=100.0,
        )
        assert p.steady_cadence_cycles == 0.0
        assert p.percentile(95) == 0.0
