"""Unit tests for metric arithmetic."""

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    options_per_watt,
    relative_error,
    speedup,
)
from repro.errors import ValidationError


class TestSpeedup:
    def test_basic(self):
        assert speedup(200.0, 100.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            speedup(0.0, 1.0)
        with pytest.raises(ValidationError):
            speedup(1.0, -1.0)


class TestOptionsPerWatt:
    def test_basic(self):
        assert options_per_watt(27675.67, 35.86) == pytest.approx(771.77, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            options_per_watt(100.0, 0.0)
        with pytest.raises(ValidationError):
            options_per_watt(-1.0, 10.0)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            relative_error(1.0, 0.0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            geometric_mean([])
        with pytest.raises(ValidationError):
            geometric_mean([1.0, 0.0])
