"""The metrics snapshot schema, pinned.

``--metrics-out`` is a machine interface: dashboards and the CI artifact
check key it by name.  The committed schema
(``tests/analysis/golden/metrics_schema.json``) lists every key a
default-shape ``repro-cds simulate`` run emits with its metric type;
this test regenerates the key set from a small run of the same cluster
shape (the key set depends on shape, not run length) and the tier-2 CI
job asserts the full-size artifact against the same file.

If a key is added, renamed or retyped on purpose, regenerate the schema
from ``repro-cds simulate --seed 7 --metrics-out`` and commit it with
the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.simulate import generate_simulation_report
from repro.telemetry import Telemetry, metrics_snapshot
from repro.workloads.scenarios import PaperScenario

SCHEMA_PATH = (
    Path(__file__).resolve().parent / "golden" / "metrics_schema.json"
)


@pytest.fixture(scope="module")
def snapshot() -> dict:
    telemetry = Telemetry.recording()
    generate_simulation_report(
        PaperScenario(n_rates=64, n_options=8),
        n_requests=400,
        rate_hz=20_000.0,
        n_states=32,
        seed=7,
        telemetry=telemetry,
    )
    return metrics_snapshot(telemetry.metrics)


def test_snapshot_matches_committed_schema(snapshot):
    schema = json.loads(SCHEMA_PATH.read_text())
    assert snapshot["schema_version"] == schema["schema_version"]
    produced = {k: v["type"] for k, v in snapshot["metrics"].items()}
    assert produced == schema["keys"], (
        "metrics snapshot keys drifted from the committed schema; if "
        "intentional, regenerate tests/analysis/golden/metrics_schema.json"
    )


def test_schema_file_is_sorted():
    schema = json.loads(SCHEMA_PATH.read_text())
    keys = list(schema["keys"])
    assert keys == sorted(keys)
