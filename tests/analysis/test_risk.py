"""Tests for the risk report analysis layer."""

import json

import pytest

from repro.analysis.risk import (
    RISK_GENERATORS,
    generate_risk_report,
    render_risk_report,
    risk_report_dict,
)
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=64, n_options=6)


@pytest.fixture(scope="module")
def report():
    return generate_risk_report(SC, n_scenarios=24, n_cards=2, seed=7)


class TestGenerate:
    def test_shape(self, report):
        assert report.n_scenarios == 24
        assert report.n_positions == 6
        assert report.generator == "mc"
        assert [m.confidence for m in report.measures] == [0.95, 0.99]
        assert report.timing.n_cards == 2

    def test_var_le_es(self, report):
        for m in report.measures:
            assert m.var <= m.es

    def test_deterministic(self, report):
        again = generate_risk_report(SC, n_scenarios=24, n_cards=2, seed=7)
        assert again == report

    def test_seed_changes_numbers(self, report):
        other = generate_risk_report(SC, n_scenarios=24, n_cards=2, seed=8)
        assert other.measures != report.measures

    def test_every_generator_runs(self):
        for gen in RISK_GENERATORS:
            rep = generate_risk_report(
                SC, n_scenarios=6, n_cards=1, seed=3, generator=gen
            )
            assert rep.n_scenarios >= 1

    def test_unknown_generator(self):
        with pytest.raises(ValidationError):
            generate_risk_report(SC, n_scenarios=4, generator="quantum")


class TestRender:
    def test_render_contains_blocks(self, report):
        text = render_risk_report(report)
        assert "Risk report" in text
        assert "VaR" in text and "ES" in text
        assert "CS01 ladder" in text and "IR01 ladder" in text
        assert "JTD:" in text
        assert "repricings/s" in text

    def test_measure_filter(self, report):
        text = render_risk_report(report, measures=("var",))
        assert "VaR" in text
        assert " ES" not in text

    def test_unknown_measure(self, report):
        with pytest.raises(ValidationError):
            render_risk_report(report, measures=("var", "cvar"))


class TestDict:
    def test_json_round_trip(self, report):
        payload = risk_report_dict(report)
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["n_scenarios"] == 24
        assert len(back["measures"]) == 2
        assert back["cs01"]["kind"] == "cs01"
        assert back["timing"]["n_cards"] == 2
