"""Tests for the serving analysis report."""

import pytest

from repro.analysis.serving import (
    generate_serving_report,
    render_serving_report,
    serving_report_dict,
)
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

SMALL = dict(
    n_requests=300,
    rate_hz=2000.0,
    n_cards=2,
    n_engines=2,
    n_states=32,
    seed=11,
)


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(n_rates=64, n_options=10)


@pytest.fixture(scope="module")
def report(scenario):
    return generate_serving_report(scenario, **SMALL)


class TestGenerate:
    def test_shape(self, report):
        assert report.n_requests == 300
        assert report.n_positions == 10
        assert report.result.n_offered == 300
        assert report.result.n_completed + report.result.n_shed == 300
        assert report.result.latency.p50_s <= report.result.latency.p99_s

    def test_deterministic_in_seed(self, scenario, report):
        again = generate_serving_report(scenario, **SMALL)
        # Wall-clock fields are excluded from equality.
        assert again == report

    def test_seed_changes_outcome(self, scenario, report):
        other = generate_serving_report(scenario, **{**SMALL, "seed": 12})
        assert other != report

    def test_unknown_traffic(self, scenario):
        with pytest.raises(ValidationError, match="unknown traffic"):
            generate_serving_report(scenario, **{**SMALL, "traffic": "storm"})

    def test_host_wallclock_measured(self, report):
        assert report.host_seconds > 0
        assert report.requests_per_sec_host > 0


class TestRender:
    def test_text_sections(self, report):
        text = render_serving_report(report)
        assert "Serving report" in text
        assert "goodput" in text
        assert "coalescing" in text
        assert "Card" in text

    def test_text_deterministic(self, scenario, report):
        again = generate_serving_report(scenario, **SMALL)
        assert render_serving_report(again) == render_serving_report(report)


class TestDict:
    def test_json_fields(self, report):
        payload = serving_report_dict(report)
        for key in (
            "goodput_rps",
            "shed_rate",
            "latency",
            "per_card",
            "n_dispatches",
            "host_seconds",
        ):
            assert key in payload
        assert {"p50_s", "p95_s", "p99_s"} <= set(payload["latency"])
        assert len(payload["per_card"]) == SMALL["n_cards"]
        # Raw per-request streams stay out of the JSON payload.
        assert "responses" not in payload and "sheds" not in payload
