"""Unit tests for the market-session queueing study."""

import numpy as np
import pytest

from repro.analysis.session import (
    engine_service_cycles,
    simulate_market_session,
)
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario(n_rates=256)


class TestServiceModel:
    def test_paper_cadence(self):
        """At the paper configuration: 20 points x 1024 scan / 2 ports."""
        assert engine_service_cycles(PaperScenario()) == pytest.approx(
            20 * 1024 / 2
        )

    def test_single_precision_halves_cadence(self):
        dp = engine_service_cycles(PaperScenario())
        sp = engine_service_cycles(PaperScenario(precision="single"))
        assert sp == pytest.approx(dp / 2)


class TestSession:
    def test_response_at_least_service(self, sc):
        result = simulate_market_session(sc, n_requests=100, load=0.3)
        service = engine_service_cycles(sc)
        assert np.all(result.response_cycles >= service - 1e-9)

    def test_light_load_near_service_time(self, sc):
        result = simulate_market_session(sc, n_requests=150, load=0.1)
        service = engine_service_cycles(sc)
        # Little queueing: median response close to bare service.
        assert result.percentile(50) == pytest.approx(service, rel=0.25)

    def test_heavy_load_queues(self, sc):
        light = simulate_market_session(sc, n_requests=150, load=0.2, seed=3)
        heavy = simulate_market_session(sc, n_requests=150, load=0.95, seed=3)
        assert heavy.mean() > 2.0 * light.mean()

    def test_tail_grows_with_load(self, sc):
        light = simulate_market_session(sc, n_requests=200, load=0.3, seed=5)
        heavy = simulate_market_session(sc, n_requests=200, load=0.9, seed=5)
        assert heavy.percentile(99) > light.percentile(99)

    def test_deterministic_in_seed(self, sc):
        a = simulate_market_session(sc, n_requests=50, load=0.5, seed=11)
        b = simulate_market_session(sc, n_requests=50, load=0.5, seed=11)
        assert np.array_equal(a.response_cycles, b.response_cycles)

    def test_render(self, sc):
        result = simulate_market_session(sc, n_requests=50, load=0.5)
        text = result.render(300e6)
        assert "p99" in text

    def test_validation(self, sc):
        with pytest.raises(ValidationError):
            simulate_market_session(sc, n_requests=0)
        with pytest.raises(ValidationError):
            simulate_market_session(sc, load=0.0)
        with pytest.raises(ValidationError):
            simulate_market_session(sc, load=1.5)
        with pytest.raises(ValidationError):
            simulate_market_session(sc, queue_depth=0)
