"""Tests for the mixed-workload simulation report and the ``repro-cds
simulate`` subcommand — including the acceptance requirement that the
report is deterministic under ``--seed``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.simulate import (
    generate_simulation_report,
    render_simulation_report,
    simulation_report_dict,
)
from repro.cli import main
from repro.workloads.scenarios import PaperScenario

ARGS = dict(
    n_requests=400,
    rate_hz=5000.0,
    refresh_period_s=2e-3,
    n_cards=2,
    n_engines=2,
    n_states=32,
    seed=5,
)

ARGV = [
    "--options", "8", "simulate", "--json", "--requests", "400",
    "--rate", "5000", "--states", "32", "--cards", "2", "--seed", "5",
]


@pytest.fixture(scope="module")
def report():
    return generate_simulation_report(
        PaperScenario(n_rates=64, n_options=8), **ARGS
    )


class TestGenerate:
    def test_both_workloads_ran(self, report):
        kinds = {k.kind for k in report.kinds}
        assert kinds == {"quote", "var"}
        assert report.n_refreshes >= 1
        by_kind = {k.kind: k for k in report.kinds}
        assert by_kind["quote"].n_offered == report.n_requests
        assert by_kind["var"].n_offered == report.n_refreshes
        assert report.result.n_offered == report.n_requests + report.n_refreshes

    def test_refreshes_span_the_quote_trace(self, report):
        refreshes = [
            r for r in report.result.responses if r.kind == "var"
        ]
        assert refreshes
        arrivals = sorted(r.arrival_s for r in refreshes)
        # Periodic heartbeat: consecutive arrivals one period apart.
        diffs = {
            round(b - a, 12) for a, b in zip(arrivals, arrivals[1:])
        }
        assert diffs <= {round(report.refresh_period_s, 12)}

    def test_deterministic_under_seed(self, report):
        again = generate_simulation_report(
            PaperScenario(n_rates=64, n_options=8), **ARGS
        )
        assert again == report  # host_seconds excluded from equality
        assert render_simulation_report(again) == render_simulation_report(
            report
        )
        other = generate_simulation_report(
            PaperScenario(n_rates=64, n_options=8), **{**ARGS, "seed": 6}
        )
        assert other != report

    def test_render_contains_per_workload_rows(self, report):
        text = render_simulation_report(report)
        assert "Workload" in text
        assert "quote" in text and "var" in text
        assert f"{report.n_refreshes} risk refreshes" in text

    def test_dict_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(simulation_report_dict(report)))
        assert payload["n_requests"] == report.n_requests
        assert payload["n_refreshes"] == report.n_refreshes
        assert [w["kind"] for w in payload["per_workload"]] == ["quote", "var"]
        assert len(payload["per_card"]) == report.n_cards

    def test_rejects_unknown_traffic_and_bad_period(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            generate_simulation_report(traffic="tsunami")
        with pytest.raises(ValidationError):
            generate_simulation_report(refresh_period_s=0.0)


class TestCli:
    def test_json_deterministic_under_seed(self, capsys):
        assert main(ARGV) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(ARGV) == 0
        second = json.loads(capsys.readouterr().out)
        first.pop("host_seconds")
        second.pop("host_seconds")
        assert first == second

    def test_text_mode_prints_the_report(self, capsys):
        argv = [a for a in ARGV if a != "--json"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Mixed-workload simulation" in out
        assert "Workload" in out

    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["simulate"])
        assert args.traffic == "bursty"
        assert args.refresh_period == 2e-3
        assert args.refresh_rows == 16
        assert args.requests == 8_000
        assert args.cards == 4
