"""Unit tests for the sweep harness."""

import pytest

from repro.analysis.sweep import SweepPoint, SweepResult, sweep
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


class TestSweep:
    def test_sweeps_scenario_field(self):
        result = sweep(
            "replication_factor",
            [1, 2, 4],
            lambda sc: float(sc.replication_factor * 10),
            base=PaperScenario(n_rates=64, n_options=2),
        )
        assert result.values() == [1, 2, 4]
        assert result.measurements() == [10.0, 20.0, 40.0]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            sweep("no_such_field", [1], lambda sc: 0.0)

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError):
            sweep("replication_factor", [], lambda sc: 0.0)

    def test_base_fields_preserved(self):
        captured = []
        sweep(
            "stream_depth",
            [2, 8],
            lambda sc: captured.append(sc.n_rates) or 0.0,
            base=PaperScenario(n_rates=128, n_options=2),
        )
        assert captured == [128, 128]


class TestSweepResult:
    def test_best_maximise(self):
        r = SweepResult("p", [SweepPoint(1, 5.0), SweepPoint(2, 9.0)])
        assert r.best().value == 2

    def test_best_minimise(self):
        r = SweepResult("p", [SweepPoint(1, 5.0), SweepPoint(2, 9.0)])
        assert r.best(maximise=False).value == 1

    def test_best_empty_rejected(self):
        with pytest.raises(ValidationError):
            SweepResult("p", []).best()

    def test_render(self):
        r = SweepResult("p", [SweepPoint(1, 5.0), SweepPoint(2, 10.0)])
        text = r.render(unit=" opt/s")
        assert "sweep of p" in text
        assert "opt/s" in text
