"""Integration tests for the table generators."""

import pytest

from repro.analysis.tables import (
    generate_table1,
    generate_table2,
    render_table1,
    render_table2,
)
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario(n_options=16)


@pytest.fixture(scope="module")
def t1(sc):
    return generate_table1(sc)


@pytest.fixture(scope="module")
def t2(sc):
    return generate_table2(sc, engine_counts=(1, 2))


class TestTable1:
    def test_five_rows_in_paper_order(self, t1):
        assert [r.key for r in t1] == [
            "cpu_single_core",
            "xilinx_baseline",
            "optimised_dataflow",
            "dataflow_interoption",
            "vectorised_dataflow",
        ]

    def test_all_rows_have_paper_values(self, t1):
        assert all(r.paper_options_per_second is not None for r in t1)

    def test_ratios_near_one(self, t1):
        for r in t1:
            assert r.ratio_to_paper == pytest.approx(1.0, abs=0.2), r.key

    def test_render(self, t1):
        text = render_table1(t1)
        assert "Xilinx Vitis library CDS engine" in text
        assert "Options/sec" in text


class TestTable2:
    def test_rows(self, t2):
        assert [r.key for r in t2] == ["cpu_24_cores", "fpga_1_engines", "fpga_2_engines"]

    def test_efficiency_consistent(self, t2):
        for r in t2:
            assert r.options_per_watt == pytest.approx(
                r.options_per_second / r.watts, rel=1e-9
            )

    def test_fpga_more_efficient_than_cpu(self, t2):
        cpu = t2[0]
        for fpga in t2[1:]:
            assert fpga.options_per_watt > cpu.options_per_watt

    def test_render(self, t2):
        text = render_table2(t2)
        assert "24 core Xeon CPU" in text
        assert "Opt/Watt" in text
