"""Tests for the trace summariser and the ``repro-cds trace`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.trace import (
    render_trace_summary,
    summarise_trace,
    trace_summary_dict,
)
from repro.cli import main
from repro.errors import ValidationError
from repro.telemetry import SpanRecorder, chrome_trace


@pytest.fixture
def recorder() -> SpanRecorder:
    r = SpanRecorder()
    # Two requests (one slow), two cards, one shed.
    for trace_id, kind, t0, service in ((1, "quote", 0.0, 1e-3),
                                        (2, "var", 0.0, 4e-3)):
        r.record("coalesce", t0, t0 + 1e-3, track="requests",
                 category="request", trace_id=trace_id, kind=kind)
        r.record("host_link", t0 + 1e-3, t0 + 1.1e-3, track="requests",
                 category="request", trace_id=trace_id, kind=kind)
        r.record("card_queue", t0 + 1.1e-3, t0 + 2e-3, track="requests",
                 category="request", trace_id=trace_id, kind=kind)
        r.record("card_service", t0 + 2e-3, t0 + 2e-3 + service,
                 track="requests", category="request", trace_id=trace_id,
                 kind=kind)
    r.record("chunk", 2e-3, 3e-3, track="card0", category="resource")
    r.record("chunk", 2e-3, 6e-3, track="card1", category="resource")
    r.record("dispatch", 1e-3, 1.1e-3, track="host", category="resource")
    r.record("shed", 5e-3, 5e-3, track="server", category="request",
             trace_id=9, kind="quote")
    return r


class TestSummariseTrace:
    def test_counts(self, recorder):
        summary = summarise_trace(recorder)
        assert summary.n_spans == len(recorder.spans)
        assert summary.n_requests == 2
        assert summary.n_shed == 1
        assert summary.span_seconds == pytest.approx(6e-3)

    def test_critical_path_ordering_and_phases(self, recorder):
        summary = summarise_trace(recorder, top=1)
        (slowest,) = summary.critical_path
        assert slowest.trace_id == 2
        assert slowest.kind == "var"
        assert slowest.latency_s == pytest.approx(6e-3)
        assert [name for name, _ in slowest.phases] == [
            "coalesce", "host_link", "card_queue", "card_service"
        ]
        assert sum(d for _, d in slowest.phases) == pytest.approx(
            slowest.latency_s
        )
        assert slowest.wait_s == pytest.approx(1e-3 + 0.9e-3)

    def test_tracks_sorted_by_busy(self, recorder):
        summary = summarise_trace(recorder)
        assert [t.track for t in summary.tracks] == ["card1", "card0", "host"]
        card1 = summary.tracks[0]
        assert card1.busy_seconds == pytest.approx(4e-3)
        assert card1.busy_share == pytest.approx(4e-3 / 6e-3)

    def test_kind_wait_breakdown(self, recorder):
        summary = summarise_trace(recorder)
        by_kind = {k.kind: k for k in summary.kinds}
        assert set(by_kind) == {"quote", "var"}
        assert by_kind["quote"].n_requests == 1
        assert by_kind["var"].mean_wait_s == pytest.approx(1.9e-3)

    def test_round_trips_through_chrome_payload(self, recorder, tmp_path):
        direct = summarise_trace(recorder)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome_trace(recorder)))
        loaded = summarise_trace(path)
        assert loaded == direct

    def test_accepts_span_sequence(self, recorder):
        assert summarise_trace(tuple(recorder.spans)) == summarise_trace(
            recorder
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            summarise_trace(SpanRecorder())

    def test_bad_top_rejected(self, recorder):
        with pytest.raises(ValidationError):
            summarise_trace(recorder, top=0)

    def test_dict_shape(self, recorder):
        payload = trace_summary_dict(summarise_trace(recorder))
        assert set(payload) == {
            "n_spans", "n_requests", "n_shed", "span_seconds",
            "critical_path", "tracks", "kinds",
        }
        assert payload["critical_path"][0]["trace_id"] == 2

    def test_render_is_deterministic(self, recorder):
        text = render_trace_summary(summarise_trace(recorder))
        assert text == render_trace_summary(summarise_trace(recorder))
        assert "resources by busy share" in text
        assert "critical path" in text


class TestTraceCli:
    def test_serve_writes_and_trace_reads(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "--options", "8", "serve", "--requests", "60", "--rate", "20000",
            "--states", "32", "--cards", "2", "--seed", "5",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        capsys.readouterr()
        assert trace_path.exists() and metrics_path.exists()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema_version"] == 1
        assert "serving_requests_offered_total" in snapshot["metrics"]

        assert main(["trace", str(trace_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "critical path" in out

        assert main(["trace", str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_requests"] == 60
        assert len(payload["critical_path"]) <= 10

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
