"""Backend-conformance suite: every registered backend meets the contract.

One parametrised pass over ``repro.api.available_backends()`` checks, for
each backend:

* spreads are **bit-identical** to the backend's designated reference
  implementation (the pre-redesign entry point it wraps: the scalar
  pricer loop for ``cpu``, ``price_packed_book`` for ``vectorized``,
  the engine's direct ``run()`` for ``dataflow``, the wrapped base for
  ``cluster``);
* spreads match the scalar reference pricer — the repository's ground
  truth — up to bounded floating-point reassociation (the padded vector
  kernels re-associate the leg sums; the repo-wide doctrine since PR 0);
* capability flags are honoured: tensor requests batch or decompose per
  the ``supports_batch_tensor`` flag with identical numbers, leg
  surfaces exist iff ``supports_legs``, ``supports_streaming`` decides
  whether the quote server accepts the backend, ``simulated_timing``
  backends attach their timing metadata;
* repeated identical requests are bit-identically deterministic.

New backends registered via :func:`repro.api.register_backend`
automatically join this suite.
"""

import numpy as np
import pytest

from repro.api import (
    PriceRequest,
    available_backends,
    create_backend,
    open_session,
)
from repro.core.pricing import CDSPricer
from repro.errors import CapabilityError
from repro.risk.engine import make_book
from repro.risk.scenarios import monte_carlo
from repro.serving.engine import QuoteServer
from repro.serving.workload import make_market_tape
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=5)
YC = SC.yield_curve()
HC = SC.hazard_curve()

#: Per-backend construction config keeping the suite fast.
BACKEND_CONFIG = {
    "dataflow": {"scenario": SC},
    "cluster": {"n_cards": 2},
}


def make_session(name, options):
    return open_session(name, options, **BACKEND_CONFIG.get(name, {}))


@pytest.fixture(params=sorted(available_backends()))
def backend_name(request):
    return request.param


def reference_spreads(options, yc=YC, hc=HC):
    pricer = CDSPricer(yield_curve=yc, hazard_curve=hc)
    return np.asarray(
        [pricer.price(o).spread_bps for o in options], dtype=np.float64
    )


#: Each backend's pre-redesign entry point, for the bit-identity pin.
def _pre_redesign_spreads(backend_name, options):
    if backend_name == "cpu":
        return reference_spreads(options)
    if backend_name in ("vectorized", "cluster"):
        from repro.core.vector_pricing import (
            PackedPortfolio,
            price_packed_book,
        )

        spreads, _ = price_packed_book(
            PackedPortfolio.pack(options), YC, HC, want_legs=False
        )
        return spreads
    if backend_name == "dataflow":
        from repro.engines import VectorizedDataflowEngine

        return VectorizedDataflowEngine(SC).run(options, YC, HC).spreads_bps
    pytest.skip(f"no pre-redesign reference for backend {backend_name!r}")


class TestSpreadConformance:
    def test_bit_identical_to_pre_redesign_entry_point(
        self, backend_name, mixed_options
    ):
        with make_session(backend_name, mixed_options) as session:
            spreads = session.spreads(YC, HC)
        np.testing.assert_array_equal(
            spreads, _pre_redesign_spreads(backend_name, mixed_options)
        )

    def test_matches_scalar_ground_truth(self, backend_name, mixed_options):
        with make_session(backend_name, mixed_options) as session:
            spreads = session.spreads(YC, HC)
        ref = reference_spreads(mixed_options)
        np.testing.assert_allclose(spreads, ref, rtol=1e-12)

    def test_deterministic_across_calls(self, backend_name, mixed_options):
        with make_session(backend_name, mixed_options) as session:
            a = session.spreads(YC, HC)
            b = session.spreads(YC, HC)
        np.testing.assert_array_equal(a, b)

    def test_result_shape_and_finiteness(self, backend_name, mixed_options):
        with make_session(backend_name, mixed_options) as session:
            result = session.price_state(YC, HC)
        assert result.n_states == 1
        assert result.n_options == len(mixed_options)
        assert result.spreads_bps.shape == (1, len(mixed_options))
        assert np.all(np.isfinite(result.spreads_bps))
        assert np.all(result.spreads_bps > 0)


class TestCapabilityFlags:
    def test_tensor_requests_honour_batch_flag(self, backend_name):
        """Tensor batches work on every backend — batched in one call or
        negotiated per state — and the numbers never depend on which."""
        options = make_book("heterogeneous", 4, seed=11).options
        shocks = monte_carlo(YC, HC, 6, seed=5)
        tensor = shocks.tensor
        with make_session(backend_name, options) as session:
            batched = session.price_tensor(tensor)
            # The per-state reference: one state request per row.
            rows = [
                session.price_state(
                    s.yield_curve, s.hazard_curve
                ).spreads_bps[0]
                for s in shocks
            ]
            if session.capabilities.supports_batch_tensor:
                # Direct backend call must also work (no negotiation).
                direct = session.backend.price(
                    PriceRequest.tensor_rows(tensor)
                )
                np.testing.assert_array_equal(
                    direct.spreads_bps, batched.spreads_bps
                )
            else:
                # Direct tensor calls are refused; only the session
                # facade negotiates them down to per-state requests.
                with pytest.raises(CapabilityError):
                    session.backend.price(PriceRequest.tensor_rows(tensor))
        np.testing.assert_array_equal(batched.spreads_bps, np.vstack(rows))

    def test_tensor_row_selection_preserves_order(self, backend_name):
        options = make_book("uniform", 3, seed=2).options
        tensor = monte_carlo(YC, HC, 8, seed=9).tensor
        with make_session(backend_name, options) as session:
            full = session.price_tensor(tensor)
            picked = session.price_tensor(tensor, rows=[5, 0, 3])
        np.testing.assert_array_equal(
            picked.spreads_bps, full.spreads_bps[[5, 0, 3]]
        )

    def test_legs_flag(self, backend_name, mixed_options):
        with make_session(backend_name, mixed_options) as session:
            if session.capabilities.supports_legs:
                result = session.price_state(YC, HC, want_legs=True)
                assert result.legs is not None
                surf = result.legs
                assert surf.premium.shape == (1, len(mixed_options))
                assert np.all(surf.annuity > 0)
                pv = surf.buyer_pv(np.zeros(len(mixed_options)))
                np.testing.assert_array_equal(pv, surf.protection)
            else:
                with pytest.raises(CapabilityError):
                    session.price_state(YC, HC, want_legs=True)

    def test_streaming_flag_gates_the_quote_server(self, backend_name):
        book = make_book("uniform", 3, seed=4)
        tape = make_market_tape(YC, HC, 4, seed=8)
        config = BACKEND_CONFIG.get(backend_name, {})
        streaming = create_backend(
            backend_name, **config
        ).capabilities.supports_streaming

        def build():
            return QuoteServer(
                book,
                tape,
                scenario=SC,
                n_cards=2,
                backend=create_backend(backend_name, **config),
            )

        if backend_name == "cluster":
            # The risk engine already wraps its base in the cluster
            # backend, and cluster backends do not nest.
            from repro.errors import ValidationError

            with pytest.raises(ValidationError, match="do not nest"):
                build()
        elif streaming:
            server = build()
            assert server.engine.session.capabilities.supports_streaming
        else:
            with pytest.raises(CapabilityError, match="supports_streaming"):
                build()

    def test_streaming_gate_fires_even_with_legs(self):
        """The server's own gate must trip for a legs-capable but
        non-streaming backend — not be shadowed by the risk engine's
        supports_legs check."""
        from repro.api import BackendCapabilities, CpuBackend

        class BatchOnlyBackend(CpuBackend):
            name = "batch-only"
            capabilities = BackendCapabilities(
                supports_batch_tensor=False,
                supports_streaming=False,
                supports_legs=True,
                simulated_timing=False,
            )

        backend = BatchOnlyBackend()
        book = make_book("uniform", 3, seed=4)
        tape = make_market_tape(YC, HC, 4, seed=8)
        with pytest.raises(CapabilityError, match="supports_streaming"):
            QuoteServer(book, tape, scenario=SC, backend=backend)
        # Nothing was bound: the backend stays usable for batch work.
        from repro.risk.engine import ScenarioRiskEngine

        engine = ScenarioRiskEngine(book, YC, HC, scenario=SC, backend=backend)
        assert engine.session.capabilities.supports_legs

    def test_simulated_timing_backends_attach_metadata(self, backend_name):
        options = make_book("uniform", 3, seed=6).options
        with make_session(backend_name, options) as session:
            if not session.capabilities.simulated_timing:
                pytest.skip("host-only backend")
            if backend_name == "dataflow":
                result = session.price_state(YC, HC)
                engine_result = result.meta["engine_result"]
                assert engine_result.kernel_cycles > 0
                assert engine_result.seconds > 0
            else:  # cluster
                tensor = monte_carlo(YC, HC, 5, seed=1).tensor
                result = session.price_tensor(tensor)
                assignment = result.meta["assignment"]
                assert len(assignment) == session.backend.n_cards
                covered = sorted(i for chunk in assignment for i in chunk)
                assert covered == list(range(5))
