"""Deprecation-shim tests: old entry points work and warn exactly once.

The unified API supersedes the free-function pricing entry points; each
keeps working bit-identically behind a shim that emits
``DeprecationWarning`` exactly once per process (per entry point), via
:mod:`repro.deprecation`.
"""

import warnings

import numpy as np
import pytest

from repro.api import open_session
from repro.core.vector_pricing import (
    PackedPortfolio,
    VectorCDSPricer,
    portfolio_arrays,
    price_packed,
    price_packed_book,
    price_portfolio,
)
from repro.deprecation import deprecated_call, reset_deprecation_registry
from repro.risk.engine import make_book
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()
BOOK = make_book("heterogeneous", 4, seed=5).options


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test observes a fresh once-per-process registry."""
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


def _collect(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = fn()
    return value, [w for w in caught if w.category is DeprecationWarning]


class TestDeprecatedCallHelper:
    def test_warns_once_per_key(self):
        _, first = _collect(lambda: deprecated_call("k1", "gone"))
        _, second = _collect(lambda: deprecated_call("k1", "gone"))
        assert len(first) == 1 and len(second) == 0

    def test_distinct_keys_warn_independently(self):
        def both():
            deprecated_call("k1", "gone")
            deprecated_call("k2", "also gone")

        _, caught = _collect(both)
        assert len(caught) == 2


class TestPricePackedShim:
    def test_still_works_bit_identically(self):
        times, accruals, mask, recovery = portfolio_arrays(list(BOOK))

        def run():
            return price_packed(times, accruals, mask, recovery, YC, HC)

        (spreads, legs), caught = _collect(run)
        assert len(caught) == 1
        assert "open_session" in str(caught[0].message)
        ref_spreads, ref_legs = price_packed_book(
            PackedPortfolio.pack(list(BOOK)), YC, HC
        )
        np.testing.assert_array_equal(spreads, ref_spreads)
        for a, b in zip(legs, ref_legs):
            np.testing.assert_array_equal(a, b)

    def test_warns_exactly_once_across_calls(self):
        times, accruals, mask, recovery = portfolio_arrays(list(BOOK))

        def run_twice():
            price_packed(times, accruals, mask, recovery, YC, HC)
            price_packed(times, accruals, mask, recovery, YC, HC)

        _, caught = _collect(run_twice)
        assert len(caught) == 1


class TestPricePortfolioShim:
    def test_still_works_bit_identically(self):
        spreads, caught = _collect(
            lambda: price_portfolio(list(BOOK), YC, HC)
        )
        assert len(caught) == 1
        with open_session("vectorized", BOOK) as session:
            np.testing.assert_array_equal(spreads, session.spreads(YC, HC))

    def test_warns_exactly_once_across_calls(self):
        def run_twice():
            price_portfolio(list(BOOK), YC, HC)
            price_portfolio(list(BOOK), YC, HC)

        _, caught = _collect(run_twice)
        assert len(caught) == 1


class TestVectorPricerMethodShim:
    def test_price_portfolio_method_works_and_warns_once(self):
        pricer = VectorCDSPricer(YC, HC)

        def run_twice():
            first = pricer.price_portfolio(list(BOOK))
            second = pricer.price_portfolio(list(BOOK))
            return first, second

        (first, second), caught = _collect(run_twice)
        assert len(caught) == 1
        assert [r.spread_bps for r in first] == [r.spread_bps for r in second]
        spreads, legs = pricer.price_portfolio_detailed(list(BOOK))
        np.testing.assert_array_equal(
            np.asarray([r.spread_bps for r in first]), spreads
        )

    def test_each_entry_point_warns_separately(self):
        times, accruals, mask, recovery = portfolio_arrays(list(BOOK))

        def run_all():
            price_packed(times, accruals, mask, recovery, YC, HC)
            price_portfolio(list(BOOK), YC, HC)
            VectorCDSPricer(YC, HC).price_portfolio(list(BOOK))

        _, caught = _collect(run_all)
        assert len(caught) == 3
