"""Unit tests for the session facade, the registry and request validation."""

import numpy as np
import pytest

from repro.api import (
    BackendCapabilities,
    ClusterBackend,
    CpuBackend,
    DispatchCostModel,
    PriceRequest,
    PricingBackend,
    VectorizedBackend,
    available_backends,
    create_backend,
    open_session,
    register_backend,
    unregister_backend,
)
from repro.errors import CapabilityError, ValidationError
from repro.risk.engine import ScenarioRiskEngine, make_book
from repro.risk.scenarios import monte_carlo
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()
BOOK = make_book("heterogeneous", 4, seed=23).options


class TestOpenSession:
    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValidationError, match="unknown pricing backend"):
            open_session("fpga-rev2", BOOK)

    def test_options_required(self):
        with pytest.raises(ValidationError, match="book to bind"):
            open_session("vectorized")

    def test_instance_with_config_rejected(self):
        with pytest.raises(ValidationError, match="registry name"):
            open_session(VectorizedBackend(), BOOK, n_cards=2)

    def test_backend_instance_accepted(self):
        session = open_session(CpuBackend(), BOOK)
        assert session.backend_name == "cpu"
        assert session.n_options == len(BOOK)

    def test_empty_book_rejected(self):
        with pytest.raises(ValidationError, match="at least one option"):
            open_session("vectorized", [])

    def test_context_manager_closes(self):
        with open_session("vectorized", BOOK) as session:
            assert not session.closed
        assert session.closed
        with pytest.raises(ValidationError, match="closed"):
            session.price_state(YC, HC)

    def test_close_is_idempotent(self):
        session = open_session("vectorized", BOOK)
        session.close()
        session.close()
        assert session.closed

    def test_spreads_convenience_shape(self):
        with open_session("vectorized", BOOK) as session:
            assert session.spreads(YC, HC).shape == (len(BOOK),)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {
            "cpu",
            "vectorized",
            "dataflow",
            "cluster",
        }

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend("vectorized", VectorizedBackend)

    def test_register_replace_and_unregister(self):
        class TracingBackend(CpuBackend):
            name = "tracing"

        register_backend("tracing", TracingBackend)
        try:
            register_backend("tracing", TracingBackend, replace=True)
            assert "tracing" in available_backends()
            with open_session("tracing", BOOK) as session:
                assert session.backend_name == "tracing"
                assert session.spreads(YC, HC).shape == (len(BOOK),)
        finally:
            unregister_backend("tracing")
        assert "tracing" not in available_backends()

    def test_unregister_unknown_is_error(self):
        with pytest.raises(ValidationError, match="not registered"):
            unregister_backend("no-such-backend")

    def test_factory_must_return_backend(self):
        register_backend("broken", lambda: object())
        try:
            with pytest.raises(ValidationError, match="not a PricingBackend"):
                create_backend("broken")
        finally:
            unregister_backend("broken")


class TestPriceRequestValidation:
    def test_state_needs_both_curves(self):
        with pytest.raises(ValidationError, match="both yield_curve"):
            PriceRequest(yield_curve=YC)

    def test_state_and_tensor_exclusive(self):
        tensor = monte_carlo(YC, HC, 3, seed=1).tensor
        with pytest.raises(ValidationError, match="not both"):
            PriceRequest(yield_curve=YC, hazard_curve=HC, tensor=tensor)

    def test_rows_only_with_tensor(self):
        with pytest.raises(ValidationError, match="tensor requests"):
            PriceRequest(yield_curve=YC, hazard_curve=HC, rows=(0,))

    def test_rows_out_of_range(self):
        tensor = monte_carlo(YC, HC, 3, seed=1).tensor
        with pytest.raises(ValidationError, match="outside"):
            PriceRequest(tensor=tensor, rows=(0, 3))

    def test_rows_must_be_non_empty(self):
        tensor = monte_carlo(YC, HC, 3, seed=1).tensor
        with pytest.raises(ValidationError, match="non-empty"):
            PriceRequest(tensor=tensor, rows=())

    def test_recovery_only_for_state_requests(self):
        tensor = monte_carlo(YC, HC, 3, seed=1).tensor
        with pytest.raises(ValidationError, match="recovery"):
            PriceRequest(tensor=tensor, recovery=np.zeros(4))

    def test_chunk_size_positive(self):
        with pytest.raises(ValidationError, match="chunk_size"):
            PriceRequest(yield_curve=YC, hazard_curve=HC, chunk_size=0)

    def test_state_request_has_no_rows(self):
        req = PriceRequest.state(YC, HC)
        assert req.kind == "state"
        assert req.n_states == 1
        with pytest.raises(ValidationError, match="no tensor rows"):
            req.row_indices

    def test_tensor_request_defaults_to_all_rows(self):
        tensor = monte_carlo(YC, HC, 5, seed=1).tensor
        req = PriceRequest.tensor_rows(tensor)
        assert req.kind == "tensor"
        assert req.n_states == 5
        np.testing.assert_array_equal(req.row_indices, np.arange(5))

    def test_requests_compare_by_identity_and_hash(self):
        # The optional array field makes field-wise == ill-defined, so
        # requests are identity-compared (and hashable) like PriceResult.
        rec = np.full(len(BOOK), 0.4)
        a = PriceRequest.state(YC, HC, recovery=rec)
        b = PriceRequest.state(YC, HC, recovery=rec.copy())
        assert a == a and a != b
        assert len({a, b}) == 2


class TestBackendLifecycle:
    def test_price_before_bind_raises(self):
        backend = VectorizedBackend()
        with pytest.raises(ValidationError, match="no bound book"):
            backend.price(PriceRequest.state(YC, HC))

    def test_rebinding_a_bound_backend_is_refused(self):
        """One backend instance serves one session: a silent rebind would
        repoint every session sharing the instance at the new book."""
        backend = VectorizedBackend()
        backend.bind(BOOK)
        other = make_book("uniform", len(BOOK), seed=99).options
        with pytest.raises(ValidationError, match="already bound"):
            backend.bind(other)
        # The original binding is untouched.
        assert backend.options == tuple(BOOK)

    def test_shared_instance_across_sessions_is_refused(self):
        backend = VectorizedBackend()
        open_session(backend, BOOK)
        with pytest.raises(ValidationError, match="already bound"):
            open_session(backend, BOOK)

    def test_rebind_after_close_is_allowed(self):
        backend = VectorizedBackend()
        with open_session(backend, BOOK) as session:
            first = session.spreads(YC, HC)
        other = make_book("uniform", 3, seed=99).options
        with open_session(backend, other) as session:
            assert session.n_options == 3
            assert session.spreads(YC, HC).shape == (3,)
        assert first.shape == (len(BOOK),)

    def test_direct_tensor_on_non_batch_backend_refused(self):
        backend = CpuBackend()
        backend.bind(BOOK)
        tensor = monte_carlo(YC, HC, 3, seed=1).tensor
        with pytest.raises(CapabilityError, match="cannot price tensor"):
            backend.price(PriceRequest.tensor_rows(tensor))

    def test_want_legs_on_dataflow_refused(self):
        with open_session("dataflow", BOOK, scenario=SC) as session:
            with pytest.raises(CapabilityError, match="leg surfaces"):
                session.price_state(YC, HC, want_legs=True)

    def test_failed_engine_construction_releases_the_backend(self):
        """A capability mismatch raised mid-construction must unbind a
        caller-supplied backend instance so it stays reusable."""
        from repro.api import DataflowBackend

        backend = DataflowBackend(scenario=SC)
        portfolio = make_book("uniform", 3, seed=1)
        with pytest.raises(CapabilityError, match="leg surfaces"):
            ScenarioRiskEngine(portfolio, YC, HC, scenario=SC, backend=backend)
        # Still bindable: the failed constructor closed its session.
        with open_session(backend, BOOK) as session:
            assert session.spreads(YC, HC).shape == (len(BOOK),)

    def test_capabilities_are_flags(self):
        caps = VectorizedBackend.capabilities
        assert isinstance(caps, BackendCapabilities)
        assert caps.supports_batch_tensor and caps.supports_legs


class TestClusterBackend:
    def test_nested_cluster_rejected(self):
        with pytest.raises(ValidationError, match="do not nest"):
            ClusterBackend(base="cluster")

    def test_bad_card_count(self):
        with pytest.raises(ValidationError, match="n_cards"):
            ClusterBackend(n_cards=0)

    def test_base_config_with_instance_rejected(self):
        with pytest.raises(ValidationError, match="registry name"):
            ClusterBackend(base=VectorizedBackend(), variant="baseline")

    def test_capabilities_derive_from_base(self):
        over_vec = ClusterBackend(base="vectorized", n_cards=2)
        over_cpu = ClusterBackend(base="cpu", n_cards=2)
        assert over_vec.capabilities.supports_batch_tensor
        assert not over_cpu.capabilities.supports_batch_tensor
        assert over_vec.capabilities.simulated_timing
        assert over_cpu.capabilities.supports_legs

    def test_assignment_metadata_covers_requested_rows(self):
        tensor = monte_carlo(YC, HC, 9, seed=7).tensor
        with open_session(
            "cluster", BOOK, n_cards=3, scheduler="round-robin"
        ) as session:
            result = session.price_tensor(tensor, rows=[8, 1, 4, 2])
        assignment = result.meta["assignment"]
        assert len(assignment) == 3
        covered = sorted(i for chunk in assignment for i in chunk)
        # Positions into the request's row list, not tensor indices.
        assert covered == [0, 1, 2, 3]
        assert result.meta["policy"] == "round-robin"
        assert result.meta["base"] == "vectorized"

    def test_state_requests_delegate_without_sharding(self):
        with open_session("cluster", BOOK, n_cards=4) as session:
            result = session.price_state(YC, HC)
        assert result.backend == "cluster"
        assert result.meta["base"] == "vectorized"
        assert "assignment" not in result.meta


class TestQuoteRowsHotPath:
    def test_one_kernel_call_regardless_of_card_count(self, monkeypatch):
        """The serving hot path must stay one kernel call per micro-batch:
        quote_rows prices through the session's *base* backend, skipping
        the cluster wrapper's per-card sharding (which is timing-only)."""
        import repro.api.backends as backends_mod

        calls = []
        real = backends_mod.price_packed_many

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(backends_mod, "price_packed_many", counting)
        engine = ScenarioRiskEngine(
            make_book("heterogeneous", 4, seed=23), YC, HC,
            scenario=SC, n_cards=4,
        )
        tensor = monte_carlo(YC, HC, 8, seed=3).tensor
        calls.clear()
        spreads, pv = engine.quote_rows(tensor, range(8))
        assert len(calls) == 1
        assert spreads.shape == pv.shape == (8, 4)
        # Revaluation, by contrast, shards: one call per active card.
        calls.clear()
        engine.revalue(monte_carlo(YC, HC, 8, seed=3), with_timing=False)
        assert len(calls) == 4


class TestDispatchCostModelHook:
    def test_hook_matches_direct_calibration(self):
        with open_session("vectorized", BOOK) as session:
            hooked = session.dispatch_cost_model(SC, YC, HC, n_engines=3)
        direct = DispatchCostModel.calibrate(
            SC, list(BOOK), YC, HC, n_engines=3
        )
        assert hooked == direct

    def test_cluster_delegates_to_base(self):
        with open_session("cluster", BOOK, n_cards=2) as session:
            hooked = session.dispatch_cost_model(SC, YC, HC)
        direct = DispatchCostModel.calibrate(SC, list(BOOK), YC, HC)
        assert hooked == direct


class TestCustomBackendExtension:
    def test_minimal_third_party_backend(self):
        """The protocol is enough: a new backend plugs in via the registry
        and immediately works through the session facade."""

        class ConstantBackend(PricingBackend):
            name = "constant"
            capabilities = BackendCapabilities(
                supports_batch_tensor=False,
                supports_streaming=False,
                supports_legs=False,
                simulated_timing=False,
                description="answers 100 bps for everything",
            )

            def _price_state(self, request):
                from repro.api import PriceResult

                return PriceResult(
                    backend=self.name,
                    spreads_bps=np.full((1, self.n_options), 100.0),
                )

        register_backend("constant", ConstantBackend)
        try:
            with open_session("constant", BOOK) as session:
                assert np.all(session.spreads(YC, HC) == 100.0)
                # Tensor requests negotiate down to per-state calls.
                tensor = monte_carlo(YC, HC, 3, seed=1).tensor
                result = session.price_tensor(tensor)
                assert result.spreads_bps.shape == (3, len(BOOK))
                assert result.meta["negotiated"] == "per-state"
        finally:
            unregister_backend("constant")
