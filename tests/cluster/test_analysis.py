"""Tests for the 'Table II extended' cluster scaling table."""

import pytest

from repro.analysis.cluster import generate_cluster_table, render_cluster_table
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=64, n_options=16)


@pytest.fixture(scope="module")
def rows():
    return generate_cluster_table(SC, (1, 2), n_engines=2)


class TestGenerate:
    def test_row_shape(self, rows):
        assert [r.cards for r in rows] == [1, 2]
        assert rows[0].key == "cluster_1_cards"
        assert rows[0].speedup_vs_base == pytest.approx(1.0)
        for r in rows:
            assert r.options_per_second > 0
            assert r.options_per_watt == pytest.approx(
                r.options_per_second / r.watts
            )
            assert 0.0 < r.mean_utilisation <= 1.0

    def test_power_grows_with_cards(self, rows):
        assert rows[1].watts > rows[0].watts

    def test_empty_counts_rejected(self):
        with pytest.raises(ValidationError):
            generate_cluster_table(SC, ())

    def test_speedup_baseline_is_one_card_even_out_of_order(self):
        rows = generate_cluster_table(SC, (2, 1), n_engines=2)
        by_cards = {r.cards: r for r in rows}
        assert by_cards[1].speedup_vs_base == pytest.approx(1.0)
        assert by_cards[2].speedup_vs_base > 1.0


class TestRender:
    def test_render(self, rows):
        text = render_cluster_table(rows)
        assert "Speedup" in text
        assert "1 card x 2 engines" in text
        assert "2 cards x 2 engines" in text
