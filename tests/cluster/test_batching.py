"""Unit tests for the host-side batching queue."""

import pytest

from repro.cluster import BatchQueue, CDSCluster, simulate_batched_stream
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.workloads.cluster import Arrival, make_burst_arrivals
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=64, n_options=8)


def opt(maturity=5.0):
    return CDSOption(maturity=maturity, frequency=4, recovery_rate=0.4)


class TestBatchQueue:
    def test_validation(self):
        with pytest.raises(ValidationError):
            BatchQueue(max_batch=0)
        with pytest.raises(ValidationError):
            BatchQueue(linger_s=-1.0)

    def test_size_trigger(self):
        q = BatchQueue(max_batch=2, linger_s=10.0)
        batches = q.coalesce([Arrival(0.0, [opt()] * 5)])
        assert [b.n_options for b in batches] == [2, 2, 1]
        # Full batches dispatch at the arrival that filled them.
        assert batches[0].dispatch_time_s == 0.0

    def test_linger_trigger(self):
        q = BatchQueue(max_batch=100, linger_s=1e-3)
        batches = q.coalesce(
            [Arrival(0.0, [opt()]), Arrival(5e-3, [opt()])]
        )
        assert len(batches) == 2
        assert batches[0].dispatch_time_s == pytest.approx(1e-3)
        assert batches[1].dispatch_time_s == pytest.approx(5e-3 + 1e-3)

    def test_every_request_dispatched_once(self):
        arrivals = make_burst_arrivals(5, mean_batch=6, seed=9)
        total = sum(a.n_options for a in arrivals)
        q = BatchQueue(max_batch=8, linger_s=1e-3)
        batches = q.coalesce(arrivals)
        assert sum(b.n_options for b in batches) == total

    def test_unsorted_arrivals(self):
        q = BatchQueue(max_batch=100, linger_s=1e-3)
        batches = q.coalesce(
            [Arrival(5e-3, [opt()]), Arrival(0.0, [opt()])]
        )
        assert batches[0].arrival_times == [0.0]


class TestArrival:
    def test_validation(self):
        with pytest.raises(ValidationError):
            Arrival(-1.0, [opt()])
        with pytest.raises(ValidationError):
            Arrival(0.0, [])


class TestSimulateBatchedStream:
    def test_report_sanity(self):
        cluster = CDSCluster(SC, n_cards=2, n_engines=2)
        arrivals = make_burst_arrivals(4, mean_batch=5, seed=17)
        report = simulate_batched_stream(
            cluster, arrivals, BatchQueue(max_batch=8, linger_s=5e-4)
        )
        assert report.n_requests == sum(a.n_options for a in arrivals)
        assert report.n_batches >= 1
        assert report.mean_batch_size == pytest.approx(
            report.n_requests / report.n_batches
        )
        assert 0.0 < report.p50_latency_s <= report.p99_latency_s
        assert report.p99_latency_s <= report.max_latency_s
        assert report.options_per_second > 0
        assert "requests" in report.summary()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            simulate_batched_stream(CDSCluster(SC, n_cards=1, n_engines=1), [])
