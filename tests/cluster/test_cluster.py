"""Integration tests for the multi-card cluster system."""

import numpy as np
import pytest

from repro.cluster import CDSCluster, HostLinkModel
from repro.core.pricing import CDSPricer
from repro.engines import MultiEngineSystem
from repro.errors import ValidationError
from repro.workloads.cluster import make_skewed_portfolio
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=64, n_options=12)
POLICIES = ("round-robin", "least-loaded", "work-stealing")


@pytest.fixture(scope="module")
def skewed():
    return make_skewed_portfolio(15, seed=3)


class TestConstruction:
    def test_zero_cards_rejected(self):
        with pytest.raises(ValidationError):
            CDSCluster(SC, n_cards=0)

    def test_total_engines(self):
        cluster = CDSCluster(SC, n_cards=3, n_engines=2)
        assert cluster.n_cards == 3
        assert cluster.total_engines == 6

    def test_scheduler_by_name_and_instance(self):
        from repro.cluster.scheduler import RoundRobinScheduler

        by_name = CDSCluster(SC, n_cards=2, scheduler="round-robin")
        by_inst = CDSCluster(SC, n_cards=2, scheduler=RoundRobinScheduler())
        assert by_name.scheduler.name == by_inst.scheduler.name == "round-robin"


class TestNumericalInvariance:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_reference_pricer(self, policy, skewed):
        result = CDSCluster(
            SC, n_cards=3, n_engines=2, scheduler=policy
        ).run(skewed)
        ref = CDSPricer(SC.yield_curve(), SC.hazard_curve())
        expected = np.array([ref.price(o).spread_bps for o in skewed])
        np.testing.assert_allclose(result.spreads_bps, expected, rtol=1e-9)

    def test_policies_agree_exactly(self, skewed):
        spreads = [
            CDSCluster(SC, n_cards=3, n_engines=2, scheduler=p)
            .run(skewed)
            .spreads_bps
            for p in POLICIES
        ]
        np.testing.assert_array_equal(spreads[0], spreads[1])
        np.testing.assert_array_equal(spreads[1], spreads[2])

    def test_matches_single_card_system(self):
        single = MultiEngineSystem(SC, n_engines=2).run()
        clustered = CDSCluster(SC, n_cards=4, n_engines=2).run()
        np.testing.assert_allclose(
            clustered.spreads_bps, single.spreads_bps, rtol=1e-9
        )


class TestDegenerateShapes:
    def test_one_card(self):
        result = CDSCluster(SC, n_cards=1, n_engines=2).run()
        assert result.n_cards == result.n_active_cards == 1
        assert result.cards[0].utilisation == pytest.approx(1.0, abs=0.05)

    def test_more_cards_than_options(self):
        options = SC.options(3)
        result = CDSCluster(SC, n_cards=5, n_engines=2).run(options)
        assert result.n_active_cards == 3
        idle = [c for c in result.cards if c.idle]
        assert len(idle) == 2
        assert all(c.utilisation == 0.0 for c in idle)
        assert all(c.watts == SC.fpga_power.watts(0) for c in idle)
        assert result.spreads_bps.shape == (3,)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            CDSCluster(SC, n_cards=2, n_engines=2).run([])


class TestRollups:
    def test_aggregate_consistency(self):
        result = CDSCluster(SC, n_cards=3, n_engines=2).run()
        assert result.total_watts == pytest.approx(
            sum(c.watts for c in result.cards)
        )
        assert result.makespan_seconds >= max(c.seconds for c in result.cards)
        assert result.options_per_second == pytest.approx(
            SC.n_options / result.makespan_seconds
        )
        assert result.options_per_watt == pytest.approx(
            result.options_per_second / result.total_watts
        )
        for c in result.cards:
            assert 0.0 <= c.utilisation <= 1.0

    def test_host_contention_slows_the_cluster(self):
        fast = CDSCluster(
            SC, n_cards=4, n_engines=2, link=HostLinkModel(host_contention=0.0)
        ).run()
        slow = CDSCluster(
            SC, n_cards=4, n_engines=2, link=HostLinkModel(host_contention=0.5)
        ).run()
        assert slow.options_per_second < fast.options_per_second

    def test_render_and_summary(self):
        result = CDSCluster(SC, n_cards=2, n_engines=2).run()
        assert "aggregate:" in result.render()
        assert "options/s" in result.summary()
        assert "Util" in result.render()
