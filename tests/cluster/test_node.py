"""Unit tests for the single-card cluster node."""

import numpy as np
import pytest

from repro.cluster.node import CardReport, ClusterNode
from repro.core.pricing import CDSPricer
from repro.errors import ResourceError, ValidationError


@pytest.fixture
def node(small_scenario):
    return ClusterNode(0, small_scenario, n_engines=2)


class TestConstruction:
    def test_negative_card_id(self, small_scenario):
        with pytest.raises(ValidationError):
            ClusterNode(-1, small_scenario)

    def test_floorplan_still_enforced(self, small_scenario):
        # Six paper engines do not fit on the U280 — on a cluster card
        # exactly as on a single card.
        with pytest.raises(ResourceError):
            ClusterNode(0, small_scenario, n_engines=6)

    def test_default_is_paper_maximum(self, small_scenario):
        assert ClusterNode(0, small_scenario).n_engines == 5


class TestPower:
    def test_active_above_idle(self, node):
        assert node.active_watts > node.idle_watts

    def test_idle_is_shell_power(self, node, small_scenario):
        assert node.idle_watts == small_scenario.fpga_power.watts(0)


class TestPricing:
    def test_empty_chunk_rejected(self, node, yield_curve, hazard_curve):
        with pytest.raises(ValidationError, match="empty chunk"):
            node.price([], yield_curve, hazard_curve)

    def test_chunk_matches_reference(
        self, node, mixed_options, yield_curve, hazard_curve
    ):
        result = node.price(mixed_options, yield_curve, hazard_curve)
        ref = CDSPricer(yield_curve, hazard_curve)
        expected = np.array([ref.price(o).spread_bps for o in mixed_options])
        np.testing.assert_allclose(result.spreads_bps, expected, rtol=1e-9)


class TestCardReport:
    def test_idle_flag(self):
        busy = CardReport(
            card_id=0,
            n_options=4,
            kernel_seconds=1e-3,
            pcie_seconds=1e-4,
            seconds=1.1e-3,
            utilisation=0.9,
            watts=37.0,
            options_per_second=3600.0,
        )
        idle = CardReport(
            card_id=1,
            n_options=0,
            kernel_seconds=0.0,
            pcie_seconds=0.0,
            seconds=0.0,
            utilisation=0.0,
            watts=35.0,
            options_per_second=0.0,
        )
        assert not busy.idle
        assert idle.idle
