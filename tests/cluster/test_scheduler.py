"""Unit tests for the cluster sharding policies."""

import pytest

from repro.cluster.scheduler import (
    SCHEDULERS,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    WorkStealingScheduler,
    make_scheduler,
    partition_healthy,
    validate_partition,
)
from repro.errors import ValidationError

SKEWED = [1.0, 50.0, 2.0, 3.0, 40.0, 1.0, 2.0, 60.0, 1.0, 1.0, 2.0, 3.0]


def loads(assignment, costs):
    return [sum(costs[i] for i in chunk) for chunk in assignment]


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(SCHEDULERS) == {"round-robin", "least-loaded", "work-stealing"}

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_make_scheduler(self, name):
        assert make_scheduler(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValidationError, match="unknown scheduler"):
            make_scheduler("fifo")


class TestPartitionContract:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("n_cards", [1, 2, 3, 5, 20])
    def test_exact_partition(self, name, n_cards):
        assignment = make_scheduler(name).partition(SKEWED, n_cards)
        assert len(assignment) == n_cards
        validate_partition(assignment, len(SKEWED))

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_empty_portfolio(self, name):
        assignment = make_scheduler(name).partition([], 3)
        assert assignment == [[], [], []]

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_more_cards_than_options(self, name):
        assignment = make_scheduler(name).partition([1.0, 1.0], 5)
        validate_partition(assignment, 2)
        assert sum(1 for c in assignment if not c) == 3

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_one_card_gets_everything(self, name):
        assignment = make_scheduler(name).partition(SKEWED, 1)
        assert assignment == [list(range(len(SKEWED)))]

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_zero_cards_rejected(self, name):
        with pytest.raises(ValidationError):
            make_scheduler(name).partition(SKEWED, 0)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_deterministic(self, name):
        a = make_scheduler(name).partition(SKEWED, 3)
        b = make_scheduler(name).partition(SKEWED, 3)
        assert a == b


class TestRoundRobin:
    def test_cyclic_layout(self):
        assignment = RoundRobinScheduler().partition([1.0] * 7, 3)
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]


class TestLeastLoaded:
    def test_balances_skew_better_than_round_robin(self):
        lpt = loads(LeastLoadedScheduler().partition(SKEWED, 3), SKEWED)
        rr = loads(RoundRobinScheduler().partition(SKEWED, 3), SKEWED)
        assert max(lpt) <= max(rr)

    def test_near_optimal_on_skewed(self):
        # Three dominant options (60, 50, 40) on three cards: LPT must put
        # one on each, so the makespan stays below a 2-dominant-option card.
        lpt = loads(LeastLoadedScheduler().partition(SKEWED, 3), SKEWED)
        assert max(lpt) < 90.0

    def test_chunks_sorted(self):
        for chunk in LeastLoadedScheduler().partition(SKEWED, 3):
            assert chunk == sorted(chunk)


class TestWorkStealing:
    def test_chunk_size_validation(self):
        with pytest.raises(ValidationError):
            WorkStealingScheduler(chunk_size=0)

    def test_contiguous_chunks(self):
        ws = WorkStealingScheduler(chunk_size=2)
        assignment = ws.partition([1.0] * 8, 2)
        for chunk in assignment:
            # Each card's options arrive as contiguous runs of chunk_size.
            for a, b in zip(chunk[::2], chunk[1::2]):
                assert b == a + 1

    def test_dispatch_count_is_chunk_pulls(self):
        ws = WorkStealingScheduler(chunk_size=2)
        assignment = ws.partition([1.0] * 8, 2)
        assert ws.dispatches(assignment) == 4

    def test_dispatch_count_not_stale_across_partitions(self):
        # dispatches() must describe the assignment it is given, not the
        # scheduler's most recent partition() call.
        ws = WorkStealingScheduler(chunk_size=2)
        big = ws.partition([1.0] * 100, 4)
        small = ws.partition([1.0] * 8, 4)
        assert ws.dispatches(big) == 50
        assert ws.dispatches(small) == 4

    def test_adapts_to_skew(self):
        ws = WorkStealingScheduler(chunk_size=1)
        balanced = loads(ws.partition(SKEWED, 3), SKEWED)
        static = loads(RoundRobinScheduler().partition(SKEWED, 3), SKEWED)
        assert max(balanced) <= max(static)


class TestValidatePartition:
    def test_missing_index(self):
        with pytest.raises(ValidationError, match="dropped"):
            validate_partition([[0], [2]], 3)

    def test_duplicate_index(self):
        with pytest.raises(ValidationError, match="two cards"):
            validate_partition([[0, 1], [1, 2]], 3)

    def test_out_of_range(self):
        with pytest.raises(ValidationError, match="out-of-range"):
            validate_partition([[0, 5]], 2)


class TestPartitionHealthy:
    """The health-aware wrapper: schedulers run over the healthy subset
    and the assignment is widened back to full cluster shape."""

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_all_healthy_is_plain_partition(self, name):
        sched = make_scheduler(name)
        costs = [3.0, 1.0, 2.0, 5.0, 4.0]
        assert partition_healthy(
            sched, costs, 3, (0, 1, 2)
        ) == sched.partition(costs, 3)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_down_cards_get_empty_chunks(self, name):
        sched = make_scheduler(name)
        costs = [3.0, 1.0, 2.0, 5.0]
        assignment = partition_healthy(sched, costs, 4, (1, 3))
        assert len(assignment) == 4
        assert assignment[0] == [] and assignment[2] == []
        validate_partition(assignment, len(costs))
        # The healthy cards carry exactly the 2-way partition.
        assert [assignment[1], assignment[3]] == sched.partition(costs, 2)

    def test_single_survivor_takes_everything(self):
        sched = make_scheduler("least-loaded")
        assignment = partition_healthy(sched, [1.0, 2.0, 3.0], 3, (2,))
        assert assignment[0] == [] and assignment[1] == []
        assert sorted(assignment[2]) == [0, 1, 2]

    def test_no_healthy_cards_rejected(self):
        with pytest.raises(ValidationError, match="no healthy"):
            partition_healthy(make_scheduler("round-robin"), [1.0], 2, ())

    def test_duplicate_healthy_rejected(self):
        with pytest.raises(ValidationError, match="distinct"):
            partition_healthy(
                make_scheduler("round-robin"), [1.0], 3, (1, 1)
            )

    def test_out_of_range_healthy_rejected(self):
        with pytest.raises(ValidationError, match="out of range"):
            partition_healthy(
                make_scheduler("round-robin"), [1.0], 2, (0, 2)
            )
