"""Unit tests for the cluster workload generators."""

import numpy as np
import pytest

from repro.cluster.cluster import option_costs
from repro.errors import ValidationError
from repro.workloads.cluster import (
    CLUSTER_WORKLOADS,
    make_burst_arrivals,
    make_cluster_portfolio,
    make_heterogeneous_portfolio,
    make_skewed_portfolio,
    make_uniform_portfolio,
)


class TestRegistry:
    def test_names(self):
        assert set(CLUSTER_WORKLOADS) == {"uniform", "skewed", "heterogeneous"}

    @pytest.mark.parametrize("name", sorted(CLUSTER_WORKLOADS))
    def test_make_cluster_portfolio(self, name):
        assert len(make_cluster_portfolio(name, 7)) == 7

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown cluster workload"):
            make_cluster_portfolio("adversarial", 4)

    @pytest.mark.parametrize("name", sorted(CLUSTER_WORKLOADS))
    def test_deterministic(self, name):
        a = make_cluster_portfolio(name, 9, seed=5)
        b = make_cluster_portfolio(name, 9, seed=5)
        assert a == b


class TestShapes:
    def test_uniform_is_the_benchmark_contract(self):
        options = make_uniform_portfolio(4)
        assert all(o.maturity == 5.0 and o.frequency == 4 for o in options)

    def test_skewed_has_heavier_cost_tail_than_heterogeneous(self):
        skewed = np.array(option_costs(make_skewed_portfolio(200, seed=1)))
        hetero = np.array(
            option_costs(make_heterogeneous_portfolio(200, seed=1))
        )
        skew_ratio = skewed.max() / np.median(skewed)
        hetero_ratio = hetero.max() / np.median(hetero)
        assert skew_ratio > hetero_ratio

    def test_skewed_respects_curve_span(self):
        assert all(
            o.maturity <= 9.5 for o in make_skewed_portfolio(100, seed=2)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_uniform_portfolio(0)
        with pytest.raises(ValidationError):
            make_skewed_portfolio(5, sigma=0.0)


class TestBurstArrivals:
    def test_sorted_and_sized(self):
        arrivals = make_burst_arrivals(6, mean_batch=4, seed=3)
        assert len(arrivals) == 6
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert all(a.n_options >= 1 for a in arrivals)

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_burst_arrivals(0)
        with pytest.raises(ValidationError):
            make_burst_arrivals(2, burst_gap_s=0.0)
