"""Shared fixtures: small, fast workloads for unit/integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.workloads.scenarios import PaperScenario


@pytest.fixture
def yield_curve() -> YieldCurve:
    """A small, smooth upward-sloping yield curve."""
    times = np.linspace(0.25, 10.0, 40)
    rates = 0.01 + 0.002 * np.sqrt(times)
    return YieldCurve(times, rates)


@pytest.fixture
def hazard_curve() -> HazardCurve:
    """A small increasing hazard curve."""
    times = np.linspace(0.25, 10.0, 40)
    hazards = 0.005 + 0.001 * times
    return HazardCurve(times, hazards)


@pytest.fixture
def option() -> CDSOption:
    """The benchmark contract: 5-year quarterly, 40% recovery."""
    return CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4)


@pytest.fixture
def mixed_options() -> list[CDSOption]:
    """A small heterogeneous portfolio (different N per option)."""
    return [
        CDSOption(maturity=1.0, frequency=4, recovery_rate=0.4),
        CDSOption(maturity=2.5, frequency=2, recovery_rate=0.25),
        CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4),
        CDSOption(maturity=3.7, frequency=12, recovery_rate=0.1),
        CDSOption(maturity=7.0, frequency=1, recovery_rate=0.55),
    ]


@pytest.fixture
def small_scenario() -> PaperScenario:
    """A fast scenario: short rate tables, few options."""
    return PaperScenario(n_rates=64, n_options=5)


@pytest.fixture
def paper_scenario() -> PaperScenario:
    """The full paper scenario with a small batch for speed."""
    return PaperScenario(n_options=16)
