"""Unit tests for the hazard-curve bootstrap."""

import numpy as np
import pytest

from repro.core.bootstrap import CDSQuote, bootstrap_hazard_curve, implied_quotes
from repro.core.curves import HazardCurve
from repro.core.pricing import CDSPricer
from repro.errors import CalibrationError, ValidationError


class TestCDSQuote:
    def test_valid(self):
        q = CDSQuote(maturity=5.0, spread_bps=120.0)
        assert q.frequency == 4
        assert q.as_option().maturity == 5.0

    @pytest.mark.parametrize("m", [0.0, -1.0])
    def test_bad_maturity(self, m):
        with pytest.raises(ValidationError):
            CDSQuote(maturity=m, spread_bps=100.0)

    def test_bad_spread(self):
        with pytest.raises(ValidationError):
            CDSQuote(maturity=5.0, spread_bps=0.0)


class TestBootstrap:
    def test_roundtrip_recovers_curve(self, yield_curve):
        true = HazardCurve([1.0, 3.0, 5.0, 7.0], [0.01, 0.015, 0.022, 0.03])
        quotes = implied_quotes(true, yield_curve, [1.0, 3.0, 5.0, 7.0])
        fitted = bootstrap_hazard_curve(quotes, yield_curve)
        assert np.asarray(fitted.values) == pytest.approx(
            np.asarray(true.values), rel=1e-8
        )

    def test_reprices_quotes(self, yield_curve):
        quotes = [
            CDSQuote(1.0, 60.0),
            CDSQuote(3.0, 90.0),
            CDSQuote(5.0, 120.0),
        ]
        fitted = bootstrap_hazard_curve(quotes, yield_curve)
        pricer = CDSPricer(yield_curve=yield_curve, hazard_curve=fitted)
        for q in quotes:
            assert pricer.price(q.as_option()).spread_bps == pytest.approx(
                q.spread_bps, abs=1e-6
            )

    def test_unsorted_quotes_accepted(self, yield_curve):
        quotes = [CDSQuote(5.0, 120.0), CDSQuote(1.0, 60.0)]
        fitted = bootstrap_hazard_curve(quotes, yield_curve)
        assert list(fitted.times) == [1.0, 5.0]

    def test_duplicate_maturities_rejected(self, yield_curve):
        with pytest.raises(ValidationError):
            bootstrap_hazard_curve(
                [CDSQuote(5.0, 100.0), CDSQuote(5.0, 110.0)], yield_curve
            )

    def test_empty_rejected(self, yield_curve):
        with pytest.raises(ValidationError):
            bootstrap_hazard_curve([], yield_curve)

    def test_steeply_inverted_curve_fails_clearly(self, yield_curve):
        # A second quote far below the first requires a negative forward
        # hazard, which the bracket cannot reach.
        quotes = [CDSQuote(1.0, 500.0), CDSQuote(5.0, 1.0)]
        with pytest.raises(CalibrationError):
            bootstrap_hazard_curve(quotes, yield_curve)

    def test_single_quote(self, yield_curve):
        fitted = bootstrap_hazard_curve([CDSQuote(5.0, 100.0)], yield_curve)
        assert len(fitted) == 1
        # Credit triangle: lambda ~ spread / LGD.
        assert float(fitted.values[0]) == pytest.approx(0.01 / 0.6, rel=0.05)


class TestImpliedQuotes:
    def test_monotone_for_rising_hazard(self, yield_curve, hazard_curve):
        quotes = implied_quotes(hazard_curve, yield_curve, [1.0, 3.0, 5.0, 8.0])
        spreads = [q.spread_bps for q in quotes]
        assert spreads == sorted(spreads)

    def test_count_and_order(self, yield_curve, hazard_curve):
        quotes = implied_quotes(hazard_curve, yield_curve, [2.0, 4.0])
        assert [q.maturity for q in quotes] == [2.0, 4.0]
