"""Unit tests for term-structure curves."""

import numpy as np
import pytest

from repro.core.curves import Curve, HazardCurve, YieldCurve
from repro.core.types import RatePoint
from repro.errors import CurveError


class TestCurveConstruction:
    def test_basic(self):
        c = Curve([1.0, 2.0, 3.0], [0.01, 0.02, 0.03])
        assert len(c) == 3

    def test_from_points_roundtrip(self):
        pts = [RatePoint(1.0, 0.01), RatePoint(2.0, 0.015)]
        c = Curve.from_points(pts)
        assert c.to_points() == pts

    def test_from_no_points_rejected(self):
        with pytest.raises(CurveError):
            Curve.from_points([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CurveError):
            Curve([1.0, 2.0], [0.01])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(CurveError):
            Curve([1.0, 1.0, 2.0], [0.01, 0.02, 0.03])
        with pytest.raises(CurveError):
            Curve([2.0, 1.0], [0.01, 0.02])

    def test_nonpositive_time_rejected(self):
        with pytest.raises(CurveError):
            Curve([0.0, 1.0], [0.01, 0.02])

    def test_nan_rejected(self):
        with pytest.raises(CurveError):
            Curve([1.0, float("nan")], [0.01, 0.02])
        with pytest.raises(CurveError):
            Curve([1.0, 2.0], [0.01, float("nan")])

    def test_arrays_read_only(self):
        c = Curve([1.0, 2.0], [0.01, 0.02])
        with pytest.raises(ValueError):
            c.times[0] = 5.0

    def test_input_not_aliased(self):
        t = np.array([1.0, 2.0])
        c = Curve(t, [0.01, 0.02])
        t[0] = 99.0
        assert c.times[0] == 1.0

    def test_equality_by_value_and_type(self):
        assert Curve([1.0], [0.01]) == Curve([1.0], [0.01])
        assert Curve([1.0], [0.01]) != Curve([1.0], [0.02])
        assert YieldCurve([1.0], [0.01]) != Curve([1.0], [0.01])

    def test_hashable(self):
        assert hash(Curve([1.0], [0.01])) == hash(Curve([1.0], [0.01]))


class TestInterpolation:
    @pytest.fixture
    def curve(self):
        return Curve([1.0, 2.0, 4.0], [0.01, 0.03, 0.02])

    def test_exact_knots(self, curve):
        assert curve.interpolate(2.0) == pytest.approx(0.03)

    def test_midpoint(self, curve):
        assert curve.interpolate(1.5) == pytest.approx(0.02)

    def test_flat_extrapolation_below(self, curve):
        assert curve.interpolate(0.1) == pytest.approx(0.01)

    def test_flat_extrapolation_above(self, curve):
        assert curve.interpolate(100.0) == pytest.approx(0.02)

    def test_vectorised(self, curve):
        out = curve.interpolate(np.array([1.0, 1.5, 2.0]))
        assert out == pytest.approx([0.01, 0.02, 0.03])

    def test_scalar_returns_float(self, curve):
        assert isinstance(curve.interpolate(1.5), float)

    def test_locate(self, curve):
        assert curve.locate(0.5) == 0
        assert curve.locate(1.0) == 0
        assert curve.locate(1.5) == 1
        assert curve.locate(4.0) == 2
        assert curve.locate(9.0) == 2  # clamped


class TestYieldCurve:
    @pytest.fixture
    def yc(self):
        return YieldCurve([1.0, 5.0], [0.02, 0.04])

    def test_discount_decreasing(self, yc):
        ts = np.linspace(0.1, 10.0, 50)
        dfs = yc.discount(ts)
        assert np.all(np.diff(dfs) < 0)

    def test_discount_at_zero_is_one(self, yc):
        assert yc.discount(0.0) == pytest.approx(1.0)

    def test_discount_negative_time_clamped(self, yc):
        assert yc.discount(-3.0) == pytest.approx(1.0)

    def test_discount_value(self, yc):
        assert yc.discount(1.0) == pytest.approx(np.exp(-0.02))

    def test_forward_rate_consistency(self, yc):
        # exp(-f*(t1-t0)) == D(t1)/D(t0)
        f = yc.forward_rate(1.0, 3.0)
        assert np.exp(-f * 2.0) == pytest.approx(yc.discount(3.0) / yc.discount(1.0))

    def test_forward_rate_bad_interval(self, yc):
        with pytest.raises(CurveError):
            yc.forward_rate(3.0, 3.0)


class TestHazardCurve:
    @pytest.fixture
    def hc(self):
        return HazardCurve([1.0, 2.0, 4.0], [0.01, 0.02, 0.04])

    def test_negative_hazard_rejected(self):
        with pytest.raises(CurveError):
            HazardCurve([1.0, 2.0], [0.01, -0.01])

    def test_zero_hazard_allowed(self):
        hc = HazardCurve([1.0], [0.0])
        assert hc.survival(10.0) == pytest.approx(1.0)

    def test_integrated_at_zero(self, hc):
        assert hc.integrated(0.0) == 0.0

    def test_integrated_at_knots(self, hc):
        # First segment (0,1]: 0.01; second (1,2]: 0.02; third (2,4]: 0.04.
        assert hc.integrated(1.0) == pytest.approx(0.01)
        assert hc.integrated(2.0) == pytest.approx(0.03)
        assert hc.integrated(4.0) == pytest.approx(0.11)

    def test_integrated_mid_segment(self, hc):
        assert hc.integrated(1.5) == pytest.approx(0.01 + 0.02 * 0.5)

    def test_integrated_beyond_last_knot(self, hc):
        # Flat extrapolation of the last intensity.
        assert hc.integrated(6.0) == pytest.approx(0.11 + 0.04 * 2.0)

    def test_integrated_vectorised_matches_scalar(self, hc):
        ts = np.linspace(0.0, 6.0, 37)
        vec = hc.integrated(ts)
        scal = np.array([hc.integrated(float(t)) for t in ts])
        assert vec == pytest.approx(scal)

    def test_survival_decreasing_and_bounded(self, hc):
        ts = np.linspace(0.01, 8.0, 60)
        s = hc.survival(ts)
        assert np.all(np.diff(s) <= 0)
        assert np.all((s > 0) & (s <= 1))

    def test_default_prob_complementary(self, hc):
        for t in (0.5, 1.7, 3.3, 5.5):
            assert hc.default_probability(t) == pytest.approx(1.0 - hc.survival(t))

    def test_intensity_lookup(self, hc):
        assert hc.intensity(0.5) == pytest.approx(0.01)
        assert hc.intensity(1.5) == pytest.approx(0.02)
        assert hc.intensity(99.0) == pytest.approx(0.04)

    def test_accumulation_length_monotone(self, hc):
        ls = [hc.accumulation_length(t) for t in (0.0, 0.5, 1.0, 1.5, 3.0, 4.0, 9.0)]
        assert ls == sorted(ls)
        assert ls[0] == 0
        assert ls[-1] == len(hc)

    def test_accumulation_length_bounds(self, hc):
        for t in np.linspace(0.0, 10.0, 31):
            n = hc.accumulation_length(float(t))
            assert 0 <= n <= len(hc)

    def test_survival_matches_reference_integral(self):
        # Constant hazard: S(t) = exp(-lambda * t) exactly.
        hc = HazardCurve([100.0], [0.03])
        for t in (0.5, 1.0, 7.3):
            assert hc.survival(t) == pytest.approx(np.exp(-0.03 * t))
