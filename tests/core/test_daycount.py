"""Unit tests for day-count conventions."""

import pytest

from repro.core.daycount import DayCount, year_fraction
from repro.errors import ValidationError


class TestYearFraction:
    def test_act_365_full_year(self):
        assert year_fraction(0, 365) == pytest.approx(1.0)

    def test_act_365_default(self):
        assert year_fraction(100, 465) == pytest.approx(1.0)

    def test_act_360_quarter(self):
        assert year_fraction(0, 90, DayCount.ACT_360) == pytest.approx(0.25)

    def test_thirty_360_year(self):
        # 365 actual days scale to 360 "30/360 days" over 360 denominator.
        assert year_fraction(0, 365, DayCount.THIRTY_360) == pytest.approx(1.0)

    def test_zero_period(self):
        assert year_fraction(10, 10) == 0.0

    def test_reversed_period_rejected(self):
        with pytest.raises(ValidationError):
            year_fraction(10, 5)

    @pytest.mark.parametrize("conv", list(DayCount))
    def test_monotone_in_end(self, conv):
        assert year_fraction(0, 200, conv) > year_fraction(0, 100, conv)

    @pytest.mark.parametrize("conv", list(DayCount))
    def test_additive(self, conv):
        total = year_fraction(0, 300, conv)
        parts = year_fraction(0, 120, conv) + year_fraction(120, 300, conv)
        assert total == pytest.approx(parts)


class TestDayCount:
    def test_denominators(self):
        assert DayCount.ACT_365F.denominator == 365.0
        assert DayCount.ACT_360.denominator == 360.0
        assert DayCount.THIRTY_360.denominator == 360.0

    def test_values_roundtrip(self):
        for conv in DayCount:
            assert DayCount(conv.value) is conv
