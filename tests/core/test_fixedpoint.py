"""Unit tests for the fixed-point study."""

import numpy as np
import pytest

from repro.core.fixedpoint import (
    FixedFormat,
    TableExp,
    fixedpoint_spreads,
    run_fixedpoint_study,
    wordlength_sweep,
)
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError


class TestFixedFormat:
    def test_quantum_and_range(self):
        f = FixedFormat(1, 4)
        assert f.quantum == pytest.approx(1 / 16)
        assert f.max_value == pytest.approx(2.0 - 1 / 16)
        assert f.min_value == -2.0
        assert f.total_bits == 6

    def test_quantise_rounds_to_nearest(self):
        f = FixedFormat(1, 2)  # quantum 0.25
        assert f.quantise(0.3) == pytest.approx(0.25)
        assert f.quantise(0.38) == pytest.approx(0.5)
        assert f.quantise(-0.3) == pytest.approx(-0.25)

    def test_saturation(self):
        f = FixedFormat(1, 4)
        assert f.quantise(100.0) == f.max_value
        assert f.quantise(-100.0) == f.min_value

    def test_representable_values_fixed(self):
        f = FixedFormat(2, 8)
        x = f.quantise(1.2345)
        assert f.quantise(x) == x  # idempotent

    def test_vectorised(self):
        f = FixedFormat(1, 8)
        out = f.quantise(np.array([0.1, 0.2]))
        assert out.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValidationError):
            FixedFormat(-1, 8)
        with pytest.raises(ValidationError):
            FixedFormat(1, 0)

    def test_describe(self):
        assert FixedFormat(1, 30).describe() == "Q1.30 (32 bits)"


class TestTableExp:
    def test_accurate_at_high_resolution(self):
        ex = TableExp(table_bits=14, fmt=FixedFormat(4, 27))
        for x in (0.0, 0.1, 0.5, 1.0, 3.0):
            assert ex(x) == pytest.approx(np.exp(-x), abs=1e-6)

    def test_clamps_beyond_domain(self):
        ex = TableExp(table_bits=8, x_max=4.0)
        assert ex(100.0) == pytest.approx(np.exp(-4.0), abs=1e-2)

    def test_coarse_table_worse(self):
        fine = TableExp(table_bits=14)
        coarse = TableExp(table_bits=4)
        x = 0.731
        assert abs(coarse(x) - np.exp(-x)) > abs(fine(x) - np.exp(-x))

    def test_table_bytes(self):
        ex = TableExp(table_bits=10, fmt=FixedFormat(4, 27))
        assert ex.table_bytes == 1024 * 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            TableExp(table_bits=1)
        with pytest.raises(ValidationError):
            TableExp(x_max=0.0)


class TestFixedPointPricing:
    def test_q1_30_close_to_reference(self, yield_curve, hazard_curve, mixed_options):
        ref = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        fx = fixedpoint_spreads(mixed_options, yield_curve, hazard_curve)
        assert fx == pytest.approx(ref, rel=2e-3)

    def test_error_shrinks_with_wordlength(self, yield_curve, hazard_curve, mixed_options):
        reports = wordlength_sweep(
            mixed_options, yield_curve, hazard_curve, [12, 20, 30], exp_table_bits=14
        )
        errors = [r.max_abs_error_bps for r in reports]
        assert errors[0] > errors[1] > errors[2]

    def test_study_report(self, yield_curve, hazard_curve, mixed_options):
        report = run_fixedpoint_study(
            mixed_options, yield_curve, hazard_curve, exp_table_bits=14
        )
        assert report.n_options == len(mixed_options)
        assert "Q4.27" in report.render()

    def test_coarse_format_not_quotable(self, yield_curve, hazard_curve, mixed_options):
        report = run_fixedpoint_study(
            mixed_options,
            yield_curve,
            hazard_curve,
            fmt=FixedFormat(4, 10),
        )
        assert not report.acceptable_for_quoting(0.01)

    def test_empty_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            fixedpoint_spreads([], yield_curve, hazard_curve)
        with pytest.raises(ValidationError):
            wordlength_sweep([], yield_curve, hazard_curve, [])
