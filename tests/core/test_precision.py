"""Unit tests for the reduced-precision study."""

import numpy as np
import pytest

from repro.core.precision import (
    PrecisionReport,
    float32_spreads,
    run_precision_study,
)
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


class TestFloat32Spreads:
    def test_close_to_reference(self, yield_curve, hazard_curve, mixed_options):
        ref = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        f32 = float32_spreads(mixed_options, yield_curve, hazard_curve)
        assert f32 == pytest.approx(ref, rel=1e-4)

    def test_not_identical_to_reference(self, yield_curve, hazard_curve, mixed_options):
        """binary32 must actually round — identical values would mean the
        study is accidentally running in double."""
        ref = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        f32 = float32_spreads(mixed_options, yield_curve, hazard_curve)
        assert not np.array_equal(f32, ref)

    def test_values_representable_in_binary32(
        self, yield_curve, hazard_curve, mixed_options
    ):
        f32 = float32_spreads(mixed_options, yield_curve, hazard_curve)
        assert np.array_equal(f32, f32.astype(np.float32).astype(np.float64))

    def test_empty_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            float32_spreads([], yield_curve, hazard_curve)


class TestPrecisionStudy:
    def test_paper_scenario_quoting_accuracy(self):
        """At the paper's workload, binary32 stays far below quoting
        granularity (0.01 bp)."""
        sc = PaperScenario(n_options=8)
        report = run_precision_study(sc.options(), sc.yield_curve(), sc.hazard_curve())
        assert report.acceptable_for_quoting(0.01)
        assert report.max_abs_error_bps < 1e-3

    def test_report_fields(self, yield_curve, hazard_curve, mixed_options):
        report = run_precision_study(mixed_options, yield_curve, hazard_curve)
        assert report.n_options == len(mixed_options)
        assert 0 <= report.mean_abs_error_bps <= report.max_abs_error_bps
        assert report.max_rel_error > 0
        assert "binary32" in report.render()


class TestSinglePrecisionEngines:
    """The speedup half of the study."""

    def test_single_precision_faster(self):
        from repro.engines import VectorizedDataflowEngine

        dp = PaperScenario(n_options=8)
        sp = dp.with_overrides(precision="single")
        r_dp = VectorizedDataflowEngine(dp).run()
        r_sp = VectorizedDataflowEngine(sp).run()
        assert r_sp.options_per_second > 1.4 * r_dp.options_per_second

    def test_single_precision_engine_results_unchanged(self):
        """The precision knob changes *timing*, not the simulated values
        (numerical error is studied separately in float32_spreads)."""
        from repro.engines import InterOptionDataflowEngine

        dp = PaperScenario(n_options=6)
        sp = dp.with_overrides(precision="single")
        assert np.array_equal(
            InterOptionDataflowEngine(dp).run().spreads_bps,
            InterOptionDataflowEngine(sp).run().spreads_bps,
        )

    def test_more_single_precision_engines_fit(self):
        from repro.engines.builder import engine_resources
        from repro.fpga.floorplan import max_engines

        sc = PaperScenario()
        dp = engine_resources(sc, replication=6)
        sp = engine_resources(sc.with_overrides(precision="single"), replication=6)
        assert sp.lut < dp.lut
        assert sp.dsp < dp.dsp
        assert max_engines(sc.device, sp) > max_engines(sc.device, dp)

    def test_effective_ports_double_in_single_precision(self):
        sc = PaperScenario()
        assert sc.effective_uram_ports == 2
        assert sc.with_overrides(precision="single").effective_uram_ports == 4

    def test_bad_precision_rejected(self):
        with pytest.raises(ValidationError):
            PaperScenario(precision="half")
