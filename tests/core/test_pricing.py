"""Unit tests for the scalar reference pricer."""

import numpy as np
import pytest

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS, CDSPricer, price_cds
from repro.core.types import CDSOption
from repro.errors import ValidationError


@pytest.fixture
def pricer(yield_curve, hazard_curve):
    return CDSPricer(yield_curve=yield_curve, hazard_curve=hazard_curve)


class TestPriceBasics:
    def test_positive_spread(self, pricer, option):
        r = pricer.price(option)
        assert 0 < r.spread_bps < BASIS_POINTS

    def test_legs_populated(self, pricer, option):
        legs = pricer.price(option).legs
        assert legs is not None
        assert legs.premium_leg > 0
        assert legs.protection_leg > 0
        assert legs.accrual_leg > 0
        assert 0 < legs.survival_at_maturity <= 1

    def test_accrual_smaller_than_premium(self, pricer, option):
        legs = pricer.price(option).legs
        assert legs.accrual_leg < legs.premium_leg

    def test_convenience_wrapper(self, yield_curve, hazard_curve, option):
        a = price_cds(option, yield_curve, hazard_curve)
        b = CDSPricer(yield_curve, hazard_curve).price(option)
        assert a.spread_bps == b.spread_bps

    def test_price_many_order(self, pricer, mixed_options):
        rs = pricer.price_many(mixed_options)
        singles = [pricer.price(o).spread_bps for o in mixed_options]
        assert [r.spread_bps for r in rs] == singles


class TestSpreadApproximation:
    def test_flat_hazard_credit_triangle(self, yield_curve):
        """spread ~ lambda * LGD for a flat hazard curve (credit triangle)."""
        lam = 0.02
        hc = HazardCurve([20.0], [lam])
        option = CDSOption(maturity=5.0, frequency=12, recovery_rate=0.4)
        spread = price_cds(option, yield_curve, hc).spread_bps
        approx = lam * 0.6 * BASIS_POINTS
        assert spread == pytest.approx(approx, rel=0.02)


class TestSensitivities:
    def test_spread_increases_with_hazard(self, yield_curve, option):
        low = HazardCurve([10.0], [0.01])
        high = HazardCurve([10.0], [0.05])
        s_low = price_cds(option, yield_curve, low).spread_bps
        s_high = price_cds(option, yield_curve, high).spread_bps
        assert s_high > s_low

    def test_spread_decreases_with_recovery(self, yield_curve, hazard_curve):
        lo = price_cds(CDSOption(5.0, 4, 0.1), yield_curve, hazard_curve).spread_bps
        hi = price_cds(CDSOption(5.0, 4, 0.7), yield_curve, hazard_curve).spread_bps
        assert lo > hi

    def test_spread_increases_with_maturity_for_rising_hazard(
        self, yield_curve, hazard_curve
    ):
        # Hazard rises with time, so longer protection is dearer per year.
        s2 = price_cds(CDSOption(2.0, 4, 0.4), yield_curve, hazard_curve).spread_bps
        s8 = price_cds(CDSOption(8.0, 4, 0.4), yield_curve, hazard_curve).spread_bps
        assert s8 > s2

    def test_payment_frequency_weak_effect(self, yield_curve, hazard_curve):
        # Frequency changes discretisation, not economics: small effect.
        s_q = price_cds(CDSOption(5.0, 4, 0.4), yield_curve, hazard_curve).spread_bps
        s_m = price_cds(CDSOption(5.0, 12, 0.4), yield_curve, hazard_curve).spread_bps
        assert s_m == pytest.approx(s_q, rel=0.05)

    def test_zero_recovery_maximises_spread(self, yield_curve, hazard_curve):
        s0 = price_cds(CDSOption(5.0, 4, 0.0), yield_curve, hazard_curve).spread_bps
        s4 = price_cds(CDSOption(5.0, 4, 0.4), yield_curve, hazard_curve).spread_bps
        assert s0 > s4
        assert s0 == pytest.approx(s4 / 0.6, rel=1e-9)


class TestDegenerateInputs:
    def test_zero_hazard_gives_zero_spread(self, yield_curve, option):
        hc = HazardCurve([10.0], [0.0])
        assert price_cds(option, yield_curve, hc).spread_bps == pytest.approx(0.0)

    def test_extreme_hazard_annuity_guard(self, yield_curve):
        # Hazard so high survival vanishes within the first period; the
        # annuity stays positive via the accrual term, spread is huge.
        hc = HazardCurve([10.0], [20.0])
        r = price_cds(CDSOption(5.0, 4, 0.4), yield_curve, hc)
        assert r.spread_bps > 10_000

    def test_very_short_option(self, yield_curve, hazard_curve):
        r = price_cds(CDSOption(0.05, 4, 0.4), yield_curve, hazard_curve)
        assert r.spread_bps > 0

    def test_spread_finite_across_grid(self, yield_curve, hazard_curve):
        for m in np.linspace(0.2, 9.5, 12):
            for f in (1, 2, 4, 12):
                r = price_cds(CDSOption(float(m), f, 0.4), yield_curve, hazard_curve)
                assert np.isfinite(r.spread_bps)
