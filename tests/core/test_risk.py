"""Unit tests for risk sensitivities."""

import numpy as np
import pytest

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.risk import (
    ONE_BP,
    CDSGreeks,
    RiskEngine,
    bucket_bump,
    parallel_bump,
    position_pv,
)
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError


@pytest.fixture
def engine(yield_curve, hazard_curve):
    return RiskEngine(yield_curve, hazard_curve)


class TestPositionPV:
    def test_par_contract_has_zero_pv(self, yield_curve, hazard_curve, option):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par, yield_curve, hazard_curve)
        assert pv[0] == pytest.approx(0.0, abs=1e-12)

    def test_cheap_protection_has_positive_pv(self, yield_curve, hazard_curve, option):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par - 20.0, yield_curve, hazard_curve)
        assert pv[0] > 0.0  # paying less than par for protection

    def test_expensive_protection_has_negative_pv(
        self, yield_curve, hazard_curve, option
    ):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par + 20.0, yield_curve, hazard_curve)
        assert pv[0] < 0.0

    def test_shape_mismatch_rejected(self, yield_curve, hazard_curve, option):
        with pytest.raises(ValidationError):
            position_pv([option], np.array([1.0, 2.0]), yield_curve, hazard_curve)


class TestGreeks:
    def test_par_greeks_signs(self, engine, mixed_options):
        for g in engine.greeks(mixed_options):
            assert g.pv == pytest.approx(0.0, abs=1e-12)
            assert g.cs01 > 0.0  # protection buyer gains as credit worsens
            assert g.rec01 < 0.0  # higher recovery cheapens protection
            assert g.jtd > 0.0

    def test_cs01_equals_annuity_times_bump_at_par(
        self, engine, yield_curve, hazard_curve, option
    ):
        """At par, dPV/dspread = risky annuity; the hazard bump is chosen
        to move the par spread by ~1 bp, so CS01 ~ annuity * 1bp."""
        pricer = VectorCDSPricer(yield_curve, hazard_curve)
        _, legs = pricer.price_portfolio_detailed([option])
        annuity = legs[0].risky_annuity
        g = engine.greeks([option])[0]
        assert g.cs01 == pytest.approx(annuity * ONE_BP, rel=0.05)

    def test_jtd_is_lgd_at_par(self, engine, mixed_options):
        for o, g in zip(mixed_options, engine.greeks(mixed_options)):
            assert g.jtd == pytest.approx(o.loss_given_default, abs=1e-9)

    def test_cs01_grows_with_maturity(self, engine):
        short = CDSOption(1.0, 4, 0.4)
        long = CDSOption(8.0, 4, 0.4)
        gs, gl = engine.greeks([short, long])
        assert gl.cs01 > gs.cs01  # longer annuity, more spread risk

    def test_ir01_small_relative_to_cs01(self, engine, option):
        """A par CDS is mostly a credit instrument: rate risk << credit
        risk."""
        g = engine.greeks([option])[0]
        assert abs(g.ir01) < abs(g.cs01)

    def test_custom_contract_spreads(self, engine, yield_curve, hazard_curve, option):
        g = engine.greeks([option], contract_spreads_bps=np.array([10.0]))[0]
        assert g.pv > 0.0  # 10 bps is far below par here

    def test_empty_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.greeks([])

    def test_bad_bumps_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            RiskEngine(yield_curve, hazard_curve, hazard_bump=0.0)
        with pytest.raises(ValidationError):
            RiskEngine(yield_curve, hazard_curve, rate_bump=-1e-4)


class TestBumpUtilities:
    def test_parallel_bump_preserves_type_and_times(self, yield_curve, hazard_curve):
        for curve in (yield_curve, hazard_curve):
            bumped = parallel_bump(curve, ONE_BP)
            assert type(bumped) is type(curve)
            np.testing.assert_array_equal(bumped.times, curve.times)
            np.testing.assert_allclose(
                np.asarray(bumped.values), np.asarray(curve.values) + ONE_BP
            )

    def test_parallel_bump_floor(self, hazard_curve):
        bumped = parallel_bump(hazard_curve, -1.0, floor=0.0)
        assert np.all(np.asarray(bumped.values) == 0.0)

    def test_bucket_bump_only_inside(self, hazard_curve):
        lo, hi = 2.0, 5.0
        bumped = bucket_bump(hazard_curve, lo, hi, ONE_BP)
        t = np.asarray(hazard_curve.times)
        delta = np.asarray(bumped.values) - np.asarray(hazard_curve.values)
        inside = (t > lo) & (t <= hi)
        np.testing.assert_allclose(delta[inside], ONE_BP)
        np.testing.assert_allclose(delta[~inside], 0.0)

    def test_bucket_bump_bad_bucket(self, hazard_curve):
        with pytest.raises(ValidationError):
            bucket_bump(hazard_curve, 5.0, 5.0, ONE_BP)

    def test_engine_uses_bump_utilities(self, engine):
        np.testing.assert_allclose(
            np.asarray(engine.bumped_hazard().values),
            np.asarray(engine.hazard_curve.values) + engine.hazard_bump,
        )
        np.testing.assert_allclose(
            np.asarray(engine.bumped_yield().values),
            np.asarray(engine.yield_curve.values) + engine.rate_bump,
        )


class TestSignConventions:
    """Protection buyer vs. seller: a seller is a negative notional."""

    def test_seller_totals_flip_every_greek(self, engine, mixed_options):
        buyer = engine.portfolio_totals(mixed_options)
        seller = engine.portfolio_totals(
            mixed_options, notionals=-np.ones(len(mixed_options))
        )
        assert seller.cs01 == pytest.approx(-buyer.cs01)
        assert seller.ir01 == pytest.approx(-buyer.ir01)
        assert seller.jtd == pytest.approx(-buyer.jtd)
        assert seller.rec01 == pytest.approx(-buyer.rec01)

    def test_seller_signs_at_par(self, engine, mixed_options):
        seller = engine.portfolio_totals(
            mixed_options, notionals=-np.ones(len(mixed_options))
        )
        assert seller.cs01 < 0.0  # short protection loses as credit worsens
        assert seller.jtd < 0.0  # default is a loss for the seller
        assert seller.rec01 > 0.0  # higher recovery helps the seller

    def test_off_market_buyer_pv_signs(self, engine, yield_curve, hazard_curve, option):
        """Bought cheap -> positive carry; sold cheap -> the mirror."""
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        cheap = position_pv([option], par - 30.0, yield_curve, hazard_curve)[0]
        assert cheap > 0.0
        seller_view = -cheap  # seller of the same cheap contract
        assert seller_view < 0.0


class TestClampBoundaries:
    """Bumps interact with the curves' flat extrapolation regions."""

    @pytest.fixture
    def short_curves(self):
        """Curves whose knots stop at 3y, clamped beyond."""
        times = np.linspace(0.5, 3.0, 6)
        return (
            YieldCurve(times, np.full(6, 0.02)),
            HazardCurve(times, np.full(6, 0.01)),
        )

    def test_parallel_bump_moves_extrapolated_tail(self, short_curves):
        """A 5y contract prices off the clamped last knot; a parallel
        bump moves that knot, so CS01 is still positive."""
        yc, hc = short_curves
        engine = RiskEngine(yc, hc)
        g = engine.greeks([CDSOption(5.0, 4, 0.4)])[0]
        assert g.cs01 > 0.0

    def test_bucket_beyond_last_knot_is_inert(self, short_curves):
        """Bumping a bucket that holds no knots changes nothing, even
        though the contract has cashflows in that time range — the
        clamped region is driven by the *last knot*, which lives in an
        earlier bucket."""
        yc, hc = short_curves
        option = CDSOption(5.0, 4, 0.4)
        par = VectorCDSPricer(yc, hc).spreads([option])
        bumped = bucket_bump(hc, 4.0, 10.0, ONE_BP)
        pv_base = position_pv([option], par, yc, hc)
        pv_bumped = position_pv([option], par, yc, bumped)
        assert pv_bumped[0] == pv_base[0]

    def test_last_knot_bucket_carries_the_tail_risk(self, short_curves):
        """The bucket containing the final knot moves the whole clamped
        region, so its CS01 exceeds the same-width bucket before it."""
        yc, hc = short_curves
        option = CDSOption(5.0, 4, 0.4)
        par = VectorCDSPricer(yc, hc).spreads([option])
        pv_base = position_pv([option], par, yc, hc)[0]
        early = position_pv(
            [option], par, yc, bucket_bump(hc, 1.0, 2.0, ONE_BP)
        )[0] - pv_base
        tail = position_pv(
            [option], par, yc, bucket_bump(hc, 2.0, 3.0, ONE_BP)
        )[0] - pv_base
        assert tail > early > 0.0


class TestZeroSpread:
    """A riskless reference entity: hazard identically zero."""

    @pytest.fixture
    def riskless(self, yield_curve):
        times = np.asarray(yield_curve.times)
        return RiskEngine(yield_curve, HazardCurve(times, np.zeros(times.size)))

    def test_par_spread_is_zero(self, riskless, yield_curve, option):
        pricer = VectorCDSPricer(yield_curve, riskless.hazard_curve)
        assert pricer.spreads([option])[0] == pytest.approx(0.0, abs=1e-12)

    def test_greeks_at_zero_spread(self, riskless, option):
        g = riskless.greeks([option])[0]
        assert g.pv == pytest.approx(0.0, abs=1e-12)
        assert g.cs01 > 0.0  # protection value appears as soon as risk does
        assert g.jtd == pytest.approx(option.loss_given_default, abs=1e-12)
        # With zero default probability the protection leg is zero, so a
        # recovery bump has nothing to scale.
        assert g.rec01 == pytest.approx(0.0, abs=1e-12)

    def test_zero_contract_spread_position(self, riskless, yield_curve, option):
        """Paying nothing for protection on a riskless name is worth
        exactly nothing."""
        pv = position_pv(
            [option], np.array([0.0]), yield_curve, riskless.hazard_curve
        )
        assert pv[0] == pytest.approx(0.0, abs=1e-12)


class TestPortfolioTotals:
    def test_totals_are_sums(self, engine, mixed_options):
        singles = engine.greeks(mixed_options)
        total = engine.portfolio_totals(mixed_options)
        assert total.cs01 == pytest.approx(sum(g.cs01 for g in singles))
        assert total.jtd == pytest.approx(sum(g.jtd for g in singles))

    def test_notional_weighting(self, engine, option):
        one = engine.portfolio_totals([option])
        ten = engine.portfolio_totals([option], notionals=np.array([10.0]))
        assert ten.cs01 == pytest.approx(10.0 * one.cs01)

    def test_bad_notionals(self, engine, option):
        with pytest.raises(ValidationError):
            engine.portfolio_totals([option], notionals=np.array([1.0, 2.0]))
