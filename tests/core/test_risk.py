"""Unit tests for risk sensitivities."""

import numpy as np
import pytest

from repro.core.risk import ONE_BP, CDSGreeks, RiskEngine, position_pv
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError


@pytest.fixture
def engine(yield_curve, hazard_curve):
    return RiskEngine(yield_curve, hazard_curve)


class TestPositionPV:
    def test_par_contract_has_zero_pv(self, yield_curve, hazard_curve, option):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par, yield_curve, hazard_curve)
        assert pv[0] == pytest.approx(0.0, abs=1e-12)

    def test_cheap_protection_has_positive_pv(self, yield_curve, hazard_curve, option):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par - 20.0, yield_curve, hazard_curve)
        assert pv[0] > 0.0  # paying less than par for protection

    def test_expensive_protection_has_negative_pv(
        self, yield_curve, hazard_curve, option
    ):
        par = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        pv = position_pv([option], par + 20.0, yield_curve, hazard_curve)
        assert pv[0] < 0.0

    def test_shape_mismatch_rejected(self, yield_curve, hazard_curve, option):
        with pytest.raises(ValidationError):
            position_pv([option], np.array([1.0, 2.0]), yield_curve, hazard_curve)


class TestGreeks:
    def test_par_greeks_signs(self, engine, mixed_options):
        for g in engine.greeks(mixed_options):
            assert g.pv == pytest.approx(0.0, abs=1e-12)
            assert g.cs01 > 0.0  # protection buyer gains as credit worsens
            assert g.rec01 < 0.0  # higher recovery cheapens protection
            assert g.jtd > 0.0

    def test_cs01_equals_annuity_times_bump_at_par(
        self, engine, yield_curve, hazard_curve, option
    ):
        """At par, dPV/dspread = risky annuity; the hazard bump is chosen
        to move the par spread by ~1 bp, so CS01 ~ annuity * 1bp."""
        pricer = VectorCDSPricer(yield_curve, hazard_curve)
        _, legs = pricer.price_portfolio_detailed([option])
        annuity = legs[0].risky_annuity
        g = engine.greeks([option])[0]
        assert g.cs01 == pytest.approx(annuity * ONE_BP, rel=0.05)

    def test_jtd_is_lgd_at_par(self, engine, mixed_options):
        for o, g in zip(mixed_options, engine.greeks(mixed_options)):
            assert g.jtd == pytest.approx(o.loss_given_default, abs=1e-9)

    def test_cs01_grows_with_maturity(self, engine):
        short = CDSOption(1.0, 4, 0.4)
        long = CDSOption(8.0, 4, 0.4)
        gs, gl = engine.greeks([short, long])
        assert gl.cs01 > gs.cs01  # longer annuity, more spread risk

    def test_ir01_small_relative_to_cs01(self, engine, option):
        """A par CDS is mostly a credit instrument: rate risk << credit
        risk."""
        g = engine.greeks([option])[0]
        assert abs(g.ir01) < abs(g.cs01)

    def test_custom_contract_spreads(self, engine, yield_curve, hazard_curve, option):
        g = engine.greeks([option], contract_spreads_bps=np.array([10.0]))[0]
        assert g.pv > 0.0  # 10 bps is far below par here

    def test_empty_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.greeks([])

    def test_bad_bumps_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            RiskEngine(yield_curve, hazard_curve, hazard_bump=0.0)
        with pytest.raises(ValidationError):
            RiskEngine(yield_curve, hazard_curve, rate_bump=-1e-4)


class TestPortfolioTotals:
    def test_totals_are_sums(self, engine, mixed_options):
        singles = engine.greeks(mixed_options)
        total = engine.portfolio_totals(mixed_options)
        assert total.cs01 == pytest.approx(sum(g.cs01 for g in singles))
        assert total.jtd == pytest.approx(sum(g.jtd for g in singles))

    def test_notional_weighting(self, engine, option):
        one = engine.portfolio_totals([option])
        ten = engine.portfolio_totals([option], notionals=np.array([10.0]))
        assert ten.cs01 == pytest.approx(10.0 * one.cs01)

    def test_bad_notionals(self, engine, option):
        with pytest.raises(ValidationError):
            engine.portfolio_totals([option], notionals=np.array([1.0, 2.0]))
