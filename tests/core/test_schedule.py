"""Unit tests for payment schedules."""

import numpy as np
import pytest

from repro.core.schedule import build_schedule, schedule_lengths
from repro.core.types import CDSOption


class TestBuildSchedule:
    def test_quarterly_five_years(self):
        s = build_schedule(CDSOption(5.0, 4, 0.4))
        assert len(s) == 20
        assert s.times[0] == pytest.approx(0.25)
        assert s.maturity == pytest.approx(5.0)

    def test_stub_period(self):
        s = build_schedule(CDSOption(1.1, 4, 0.4))
        assert len(s) == 5
        assert s.times[-1] == pytest.approx(1.1)
        # Final stub is short.
        assert s.accruals[-1] == pytest.approx(0.1)

    def test_short_maturity_single_payment(self):
        s = build_schedule(CDSOption(0.1, 4, 0.4))
        assert len(s) == 1
        assert s.times[0] == pytest.approx(0.1)

    def test_times_strictly_increasing(self):
        for m in (0.3, 1.0, 2.77, 5.0, 9.99):
            for f in (1, 2, 4, 12):
                s = build_schedule(CDSOption(m, f, 0.4))
                assert np.all(np.diff(s.times) > 0)

    def test_accruals_sum_to_maturity(self):
        for m in (0.4, 1.0, 3.3, 7.25):
            s = build_schedule(CDSOption(m, 4, 0.4))
            assert float(np.sum(s.accruals)) == pytest.approx(m)

    def test_accruals_match_diffs(self):
        s = build_schedule(CDSOption(3.7, 2, 0.4))
        expected = np.diff(np.concatenate(([0.0], s.times)))
        assert s.accruals == pytest.approx(expected)

    def test_last_time_is_exact_maturity(self):
        # Floating-point multiples must snap exactly to maturity.
        s = build_schedule(CDSOption(5.0, 4, 0.4))
        assert s.times[-1] == 5.0

    def test_with_time_zero(self):
        s = build_schedule(CDSOption(1.0, 2, 0.4))
        t0 = s.with_time_zero()
        assert t0[0] == 0.0
        assert len(t0) == len(s) + 1

    def test_arrays_read_only(self):
        s = build_schedule(CDSOption(1.0, 4, 0.4))
        with pytest.raises(ValueError):
            s.times[0] = 9.0

    def test_monthly_frequency(self):
        s = build_schedule(CDSOption(2.0, 12, 0.4))
        assert len(s) == 24
        assert s.accruals[0] == pytest.approx(1.0 / 12.0)

    def test_annual_frequency(self):
        s = build_schedule(CDSOption(3.0, 1, 0.4))
        assert list(s.times) == pytest.approx([1.0, 2.0, 3.0])


class TestScheduleLengths:
    def test_lengths(self):
        opts = [CDSOption(1.0, 4, 0.4), CDSOption(2.0, 2, 0.4)]
        assert list(schedule_lengths(opts)) == [4, 4]

    def test_matches_n_payments(self):
        for m in (0.5, 1.3, 4.0):
            for f in (1, 4, 12):
                o = CDSOption(m, f, 0.4)
                assert len(build_schedule(o)) == o.n_payments
