"""Unit tests for the core value types."""

import math

import pytest

from repro.core.types import CDSOption, CDSResult, LegBreakdown, RatePoint
from repro.errors import ValidationError


class TestRatePoint:
    def test_valid_point(self):
        p = RatePoint(time=1.5, value=0.02)
        assert p.time == 1.5
        assert p.value == 0.02

    def test_negative_value_allowed(self):
        # Negative interest rates are a real market condition.
        assert RatePoint(time=1.0, value=-0.005).value == -0.005

    @pytest.mark.parametrize("t", [0.0, -1.0])
    def test_nonpositive_time_rejected(self, t):
        with pytest.raises(ValidationError):
            RatePoint(time=t, value=0.01)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValidationError):
            RatePoint(time=bad, value=0.01)
        with pytest.raises(ValidationError):
            RatePoint(time=1.0, value=bad)

    def test_frozen(self):
        p = RatePoint(time=1.0, value=0.01)
        with pytest.raises(AttributeError):
            p.time = 2.0


class TestCDSOption:
    def test_valid_option(self):
        o = CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4)
        assert o.maturity == 5.0
        assert o.loss_given_default == pytest.approx(0.6)

    def test_n_payments_exact_multiple(self):
        assert CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4).n_payments == 20

    def test_n_payments_with_stub(self):
        # 5.1 years quarterly: 20 regular + 1 stub payment.
        assert CDSOption(maturity=5.1, frequency=4, recovery_rate=0.4).n_payments == 21

    def test_n_payments_short_contract(self):
        assert CDSOption(maturity=0.1, frequency=4, recovery_rate=0.4).n_payments == 1

    @pytest.mark.parametrize("m", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_maturity_rejected(self, m):
        with pytest.raises(ValidationError):
            CDSOption(maturity=m, frequency=4, recovery_rate=0.4)

    @pytest.mark.parametrize("f", [0, -4])
    def test_bad_frequency_rejected(self, f):
        with pytest.raises(ValidationError):
            CDSOption(maturity=5.0, frequency=f, recovery_rate=0.4)

    @pytest.mark.parametrize("r", [-0.1, 1.0, 1.5])
    def test_bad_recovery_rejected(self, r):
        with pytest.raises(ValidationError):
            CDSOption(maturity=5.0, frequency=4, recovery_rate=r)

    def test_zero_recovery_allowed(self):
        o = CDSOption(maturity=5.0, frequency=4, recovery_rate=0.0)
        assert o.loss_given_default == 1.0

    def test_equality_and_hash(self):
        a = CDSOption(5.0, 4, 0.4)
        b = CDSOption(5.0, 4, 0.4)
        assert a == b
        assert hash(a) == hash(b)


class TestLegBreakdown:
    def test_risky_annuity(self):
        legs = LegBreakdown(
            premium_leg=4.0,
            protection_leg=0.05,
            accrual_leg=0.01,
            survival_at_maturity=0.9,
        )
        assert legs.risky_annuity == pytest.approx(4.01)


class TestCDSResult:
    def test_spread_pct(self):
        r = CDSResult(spread_bps=125.0)
        assert r.spread_pct == pytest.approx(1.25)

    def test_legs_excluded_from_equality(self):
        legs = LegBreakdown(1.0, 0.1, 0.01, 0.9)
        assert CDSResult(spread_bps=10.0, legs=legs) == CDSResult(spread_bps=10.0)

    def test_spread_finite(self):
        assert math.isfinite(CDSResult(spread_bps=42.0).spread_bps)
