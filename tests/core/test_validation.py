"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.core.validation import (
    as_float_array,
    check_finite,
    check_positive,
    check_probability,
    check_strictly_increasing,
)
from repro.errors import CurveError, ValidationError


class TestAsFloatArray:
    def test_list_conversion(self):
        arr = as_float_array([1, 2, 3], "x")
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            as_float_array([], "x")

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            as_float_array([[1.0], [2.0]], "x")


class TestCheckFinite:
    def test_ok(self):
        check_finite(np.array([1.0, 2.0]), "x")

    def test_nan_reported_with_index(self):
        with pytest.raises(CurveError, match="index 1"):
            check_finite(np.array([1.0, np.nan]), "x")

    def test_inf_rejected(self):
        with pytest.raises(CurveError):
            check_finite(np.array([np.inf]), "x")


class TestCheckStrictlyIncreasing:
    def test_ok(self):
        check_strictly_increasing(np.array([1.0, 2.0, 3.0]), "x")

    def test_single_element_ok(self):
        check_strictly_increasing(np.array([5.0]), "x")

    def test_equal_rejected(self):
        with pytest.raises(CurveError, match="indices 0 and 1"):
            check_strictly_increasing(np.array([1.0, 1.0]), "x")

    def test_decreasing_rejected(self):
        with pytest.raises(CurveError):
            check_strictly_increasing(np.array([2.0, 1.0]), "x")


class TestCheckPositive:
    def test_strict_ok(self):
        check_positive(np.array([0.1, 1.0]), "x")

    def test_strict_zero_rejected(self):
        with pytest.raises(CurveError):
            check_positive(np.array([0.0]), "x")

    def test_nonstrict_zero_ok(self):
        check_positive(np.array([0.0, 1.0]), "x", strict=False)

    def test_negative_always_rejected(self):
        with pytest.raises(CurveError):
            check_positive(np.array([-0.1]), "x", strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_ok(self, p):
        check_probability(p, "p")

    @pytest.mark.parametrize("p", [-0.01, 1.01])
    def test_out_of_range(self, p):
        with pytest.raises(ValidationError):
            check_probability(p, "p")
