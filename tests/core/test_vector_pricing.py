"""Unit tests for the vectorised batch pricer."""

import numpy as np
import pytest

from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.core.vector_pricing import (
    VectorCDSPricer,
    portfolio_arrays,
    price_portfolio,
)
from repro.errors import ValidationError


class TestPortfolioArrays:
    def test_shapes(self, mixed_options):
        times, accruals, mask, recovery = portfolio_arrays(mixed_options)
        n = len(mixed_options)
        assert times.shape == accruals.shape == mask.shape
        assert times.shape[0] == n
        assert recovery.shape == (n,)

    def test_mask_counts_match_schedules(self, mixed_options):
        from repro.core.schedule import build_schedule

        _, _, mask, _ = portfolio_arrays(mixed_options)
        for row, o in enumerate(mixed_options):
            assert mask[row].sum() == len(build_schedule(o))

    def test_padding_masked_out(self, mixed_options):
        _, accruals, mask, _ = portfolio_arrays(mixed_options)
        assert np.all(accruals[~mask] == 0.0)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValidationError):
            portfolio_arrays([])


class TestVectorPricerAgainstReference:
    def test_matches_scalar_pricer(self, yield_curve, hazard_curve, mixed_options):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        ref = np.array(
            [
                CDSPricer(yield_curve, hazard_curve).price(o).spread_bps
                for o in mixed_options
            ]
        )
        assert vec == pytest.approx(ref, rel=1e-12, abs=1e-9)

    def test_single_option(self, yield_curve, hazard_curve, option):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        ref = CDSPricer(yield_curve, hazard_curve).price(option).spread_bps
        assert vec[0] == pytest.approx(ref, rel=1e-12)

    def test_large_homogeneous_batch(self, yield_curve, hazard_curve, option):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads([option] * 100)
        assert np.all(vec == vec[0])

    def test_legs_match_reference(self, yield_curve, hazard_curve, mixed_options):
        pricer = VectorCDSPricer(yield_curve, hazard_curve)
        _, legs = pricer.price_portfolio_detailed(mixed_options)
        ref_pricer = CDSPricer(yield_curve, hazard_curve)
        for o, lb in zip(mixed_options, legs):
            ref = ref_pricer.price(o).legs
            assert lb.premium_leg == pytest.approx(ref.premium_leg, rel=1e-12)
            assert lb.protection_leg == pytest.approx(ref.protection_leg, rel=1e-12)
            assert lb.accrual_leg == pytest.approx(ref.accrual_leg, rel=1e-12)
            assert lb.survival_at_maturity == pytest.approx(
                ref.survival_at_maturity, rel=1e-12
            )

    def test_price_portfolio_results(self, yield_curve, hazard_curve, mixed_options):
        results = VectorCDSPricer(yield_curve, hazard_curve).price_portfolio(
            mixed_options
        )
        assert len(results) == len(mixed_options)
        assert all(r.legs is not None for r in results)

    def test_wrapper(self, yield_curve, hazard_curve, mixed_options):
        a = price_portfolio(mixed_options, yield_curve, hazard_curve)
        b = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        assert np.array_equal(a, b)

    def test_order_preserved(self, yield_curve, hazard_curve, mixed_options):
        fwd = price_portfolio(mixed_options, yield_curve, hazard_curve)
        rev = price_portfolio(mixed_options[::-1], yield_curve, hazard_curve)
        assert fwd == pytest.approx(rev[::-1])
