"""Unit tests for the vectorised batch pricer."""

import numpy as np
import pytest

from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.core.vector_pricing import (
    VectorCDSPricer,
    portfolio_arrays,
    price_portfolio,
)
from repro.errors import ValidationError


class TestPortfolioArrays:
    def test_shapes(self, mixed_options):
        times, accruals, mask, recovery = portfolio_arrays(mixed_options)
        n = len(mixed_options)
        assert times.shape == accruals.shape == mask.shape
        assert times.shape[0] == n
        assert recovery.shape == (n,)

    def test_mask_counts_match_schedules(self, mixed_options):
        from repro.core.schedule import build_schedule

        _, _, mask, _ = portfolio_arrays(mixed_options)
        for row, o in enumerate(mixed_options):
            assert mask[row].sum() == len(build_schedule(o))

    def test_padding_masked_out(self, mixed_options):
        _, accruals, mask, _ = portfolio_arrays(mixed_options)
        assert np.all(accruals[~mask] == 0.0)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValidationError):
            portfolio_arrays([])


class TestVectorPricerAgainstReference:
    def test_matches_scalar_pricer(self, yield_curve, hazard_curve, mixed_options):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        ref = np.array(
            [
                CDSPricer(yield_curve, hazard_curve).price(o).spread_bps
                for o in mixed_options
            ]
        )
        assert vec == pytest.approx(ref, rel=1e-12, abs=1e-9)

    def test_single_option(self, yield_curve, hazard_curve, option):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads([option])
        ref = CDSPricer(yield_curve, hazard_curve).price(option).spread_bps
        assert vec[0] == pytest.approx(ref, rel=1e-12)

    def test_large_homogeneous_batch(self, yield_curve, hazard_curve, option):
        vec = VectorCDSPricer(yield_curve, hazard_curve).spreads([option] * 100)
        assert np.all(vec == vec[0])

    def test_legs_match_reference(self, yield_curve, hazard_curve, mixed_options):
        pricer = VectorCDSPricer(yield_curve, hazard_curve)
        _, legs = pricer.price_portfolio_detailed(mixed_options)
        ref_pricer = CDSPricer(yield_curve, hazard_curve)
        for o, lb in zip(mixed_options, legs):
            ref = ref_pricer.price(o).legs
            assert lb.premium_leg == pytest.approx(ref.premium_leg, rel=1e-12)
            assert lb.protection_leg == pytest.approx(ref.protection_leg, rel=1e-12)
            assert lb.accrual_leg == pytest.approx(ref.accrual_leg, rel=1e-12)
            assert lb.survival_at_maturity == pytest.approx(
                ref.survival_at_maturity, rel=1e-12
            )

    def test_price_portfolio_results(self, yield_curve, hazard_curve, mixed_options):
        results = VectorCDSPricer(yield_curve, hazard_curve).price_portfolio(
            mixed_options
        )
        assert len(results) == len(mixed_options)
        assert all(r.legs is not None for r in results)

    def test_wrapper(self, yield_curve, hazard_curve, mixed_options):
        a = price_portfolio(mixed_options, yield_curve, hazard_curve)
        b = VectorCDSPricer(yield_curve, hazard_curve).spreads(mixed_options)
        assert np.array_equal(a, b)

    def test_order_preserved(self, yield_curve, hazard_curve, mixed_options):
        fwd = price_portfolio(mixed_options, yield_curve, hazard_curve)
        rev = price_portfolio(mixed_options[::-1], yield_curve, hazard_curve)
        assert fwd == pytest.approx(rev[::-1])


class TestPackedPortfolio:
    def test_pack_matches_portfolio_arrays(self, mixed_options):
        from repro.core.vector_pricing import PackedPortfolio

        times, accruals, mask, recovery = portfolio_arrays(mixed_options)
        packed = PackedPortfolio.pack(mixed_options)
        np.testing.assert_array_equal(packed.times, times)
        np.testing.assert_array_equal(packed.accruals, accruals)
        np.testing.assert_array_equal(packed.mask, mask)
        np.testing.assert_array_equal(packed.recovery, recovery)
        assert packed.n_options == len(mixed_options)
        assert packed.max_len == times.shape[1]

    def test_unique_times_cover_flat_times(self, mixed_options):
        from repro.core.vector_pricing import PackedPortfolio

        packed = PackedPortfolio.pack(mixed_options)
        assert packed.unique_times.size <= packed.flat_times.size
        np.testing.assert_array_equal(
            packed.unique_times[packed.unique_inverse], packed.flat_times
        )

    def test_shape_mismatch_rejected(self):
        from repro.core.vector_pricing import PackedPortfolio

        with pytest.raises(ValidationError):
            PackedPortfolio(
                np.zeros((2, 3)),
                np.zeros((2, 3)),
                np.ones((3, 2), dtype=bool),
                np.full(2, 0.4),
            )

    def test_non_benign_padding_rejected(self, mixed_options):
        """The mask-free kernels demand the portfolio_arrays padding
        (final time repeated, zero accrual) — other paddings must fail
        loudly instead of pricing wrong."""
        from repro.core.vector_pricing import PackedPortfolio

        times, accruals, mask, recovery = portfolio_arrays(mixed_options)
        if mask.all():  # needs at least one ragged row to exercise
            pytest.skip("mixed_options produced a rectangular book")
        zero_padded = times.copy()
        zero_padded[~mask] = 0.0
        with pytest.raises(ValidationError):
            PackedPortfolio(zero_padded, accruals, mask, recovery)
        bad_accruals = accruals.copy()
        bad_accruals[~mask] = 0.25
        with pytest.raises(ValidationError):
            PackedPortfolio(times, bad_accruals, mask, recovery)


class TestPricePackedBook:
    def test_matches_price_packed(self, yield_curve, hazard_curve, mixed_options):
        from repro.core.vector_pricing import (
            PackedPortfolio,
            price_packed,
            price_packed_book,
        )

        packed = PackedPortfolio.pack(mixed_options)
        sp_a, legs_a = price_packed(
            packed.times,
            packed.accruals,
            packed.mask,
            packed.recovery,
            yield_curve,
            hazard_curve,
        )
        sp_b, legs_b = price_packed_book(packed, yield_curve, hazard_curve)
        np.testing.assert_array_equal(sp_a, sp_b)
        for a, b in zip(legs_a, legs_b):
            np.testing.assert_array_equal(a, b)


class TestPricePackedMany:
    def test_scenario_axis_leads(self, yield_curve, hazard_curve, mixed_options):
        from repro.core.vector_pricing import PackedPortfolio, price_packed_many

        packed = PackedPortfolio.pack(mixed_options)
        n_scen = 3
        yv = np.tile(np.asarray(yield_curve.values), (n_scen, 1))
        hv = np.tile(np.asarray(hazard_curve.values), (n_scen, 1))
        spreads, legs = price_packed_many(
            packed, yield_curve.times, yv, hazard_curve.times, hv
        )
        assert spreads.shape == (n_scen, len(mixed_options))
        assert all(leg.shape == spreads.shape for leg in legs)
        # Identical states price identically.
        np.testing.assert_array_equal(spreads[0], spreads[1])
        np.testing.assert_array_equal(spreads[0], spreads[2])

    def test_empty_scenario_axis_rejected(
        self, yield_curve, hazard_curve, mixed_options
    ):
        from repro.core.vector_pricing import PackedPortfolio, price_packed_many

        packed = PackedPortfolio.pack(mixed_options)
        with pytest.raises(ValidationError):
            price_packed_many(
                packed,
                yield_curve.times,
                np.empty((0, len(yield_curve))),
                hazard_curve.times,
                np.empty((0, len(hazard_curve))),
            )

    def test_scenario_count_mismatch_rejected(
        self, yield_curve, hazard_curve, mixed_options
    ):
        from repro.core.vector_pricing import PackedPortfolio, price_packed_many

        packed = PackedPortfolio.pack(mixed_options)
        with pytest.raises(ValidationError):
            price_packed_many(
                packed,
                yield_curve.times,
                np.tile(np.asarray(yield_curve.values), (3, 1)),
                hazard_curve.times,
                np.tile(np.asarray(hazard_curve.values), (2, 1)),
            )

    def test_recovery_shift_shape_rejected(
        self, yield_curve, hazard_curve, mixed_options
    ):
        from repro.core.vector_pricing import PackedPortfolio, price_packed_many

        packed = PackedPortfolio.pack(mixed_options)
        with pytest.raises(ValidationError):
            price_packed_many(
                packed,
                yield_curve.times,
                np.tile(np.asarray(yield_curve.values), (2, 1)),
                hazard_curve.times,
                np.tile(np.asarray(hazard_curve.values), (2, 1)),
                recovery_shifts=np.zeros(3),
            )

    def test_want_legs_false(self, yield_curve, hazard_curve, mixed_options):
        from repro.core.vector_pricing import PackedPortfolio, price_packed_many

        packed = PackedPortfolio.pack(mixed_options)
        spreads, legs = price_packed_many(
            packed,
            yield_curve.times,
            np.tile(np.asarray(yield_curve.values), (2, 1)),
            hazard_curve.times,
            np.tile(np.asarray(hazard_curve.values), (2, 1)),
            want_legs=False,
        )
        assert legs is None
        assert spreads.shape == (2, len(mixed_options))


class TestAutoChunkSize:
    def test_scales_inversely_with_grid(self):
        from repro.core.vector_pricing import auto_chunk_size

        small_grid = auto_chunk_size(10, 20)
        large_grid = auto_chunk_size(1000, 200)
        assert small_grid > large_grid
        assert large_grid >= 1


class TestShiftedRecovery:
    def test_conditional_clamp(self):
        from repro.core.vector_pricing import shifted_recovery

        recovery = np.array([0.4, 0.9995])
        out = shifted_recovery(recovery, np.array([0.0, 0.2, -0.5]))
        # Zero-shift rows pass through without the clamp.
        np.testing.assert_array_equal(out[0], recovery)
        np.testing.assert_array_equal(out[1], np.clip(recovery + 0.2, 0.0, 0.999))
        np.testing.assert_array_equal(out[2], np.clip(recovery - 0.5, 0.0, 0.999))
