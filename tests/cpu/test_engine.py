"""Unit tests for the runnable CPU engine."""

import numpy as np
import pytest

from repro.core.pricing import CDSPricer
from repro.cpu.engine import CPUEngine, chunk_options
from repro.errors import ValidationError


class TestChunkOptions:
    def test_even_split(self):
        chunks = chunk_options(list(range(12)), 4)
        assert [len(c) for c in chunks] == [3, 3, 3, 3]

    def test_uneven_split_differs_by_one(self):
        chunks = chunk_options(list(range(13)), 5)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 13
        assert max(sizes) - min(sizes) <= 1

    def test_order_preserved(self):
        chunks = chunk_options(list(range(10)), 3)
        flat = [x for c in chunks for x in c]
        assert flat == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk_options([1, 2], 5)
        assert [len(c) for c in chunks] == [1, 1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            chunk_options([], 2)
        with pytest.raises(ValidationError):
            chunk_options([1], 0)


class TestCPUEngine:
    def test_matches_reference(self, yield_curve, hazard_curve, mixed_options):
        engine = CPUEngine(yield_curve, hazard_curve)
        result = engine.run(mixed_options)
        ref = np.array(
            [
                CDSPricer(yield_curve, hazard_curve).price(o).spread_bps
                for o in mixed_options
            ]
        )
        assert result.spreads_bps == pytest.approx(ref, rel=1e-12)

    def test_throughput_positive(self, yield_curve, hazard_curve, mixed_options):
        result = CPUEngine(yield_curve, hazard_curve).run(mixed_options)
        assert result.options_per_second > 0
        assert result.elapsed_seconds > 0
        assert result.workers == 1

    def test_empty_batch_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            CPUEngine(yield_curve, hazard_curve).run([])

    def test_bad_workers(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            CPUEngine(yield_curve, hazard_curve, workers=0)

    def test_parallel_matches_serial(self, yield_curve, hazard_curve, mixed_options):
        """Two worker processes must reproduce the in-process result and
        preserve option order."""
        serial = CPUEngine(yield_curve, hazard_curve).run(mixed_options * 4)
        parallel = CPUEngine(yield_curve, hazard_curve, workers=2).run(
            mixed_options * 4
        )
        assert parallel.spreads_bps == pytest.approx(serial.spreads_bps, rel=1e-12)
        assert parallel.workers == 2
