"""Unit tests for the CPU power model."""

import pytest

from repro.cpu.power import CPUPowerModel
from repro.workloads.scenarios import PAPER_TABLE2
from repro.errors import ValidationError


class TestAgainstPaper:
    def test_24_core_draw(self):
        """Table II: 175.39 W for the loaded socket."""
        assert CPUPowerModel().watts(24) == pytest.approx(
            PAPER_TABLE2["cpu_24_cores"][1], abs=0.5
        )

    def test_fpga_vs_cpu_power_ratio(self):
        """Paper: 'the FPGA running with five engines draws around 4.7
        times less power than the CPU'."""
        from repro.fpga.power import FPGAPowerModel

        cpu = CPUPowerModel().watts(24)
        fpga = FPGAPowerModel().watts(5)
        assert cpu / fpga == pytest.approx(4.7, rel=0.03)


class TestModel:
    def test_idle_floor(self):
        m = CPUPowerModel()
        assert m.watts(0) == pytest.approx(m.idle_watts)

    def test_monotone(self):
        m = CPUPowerModel()
        draws = [m.watts(k) for k in range(0, 25)]
        assert draws == sorted(draws)

    def test_energy(self):
        m = CPUPowerModel(idle_watts=50.0, per_core_watts=5.0)
        assert m.energy_joules(2, 10.0) == pytest.approx(600.0)

    def test_efficiency(self):
        m = CPUPowerModel(idle_watts=100.0, per_core_watts=0.0)
        assert m.efficiency(1000.0, 10) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            CPUPowerModel(idle_watts=-1.0)
        m = CPUPowerModel()
        with pytest.raises(ValidationError):
            m.watts(-1)
        with pytest.raises(ValidationError):
            m.watts(25)
        with pytest.raises(ValidationError):
            m.energy_joules(1, -1.0)
