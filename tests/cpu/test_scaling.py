"""Unit tests for the calibrated Xeon performance model."""

import pytest

from repro.cpu.scaling import CPUPerformanceModel, CPUWorkEstimate
from repro.cpu.xeon import XEON_8260M
from repro.workloads.scenarios import PAPER_TABLE1, PAPER_TABLE2, PaperScenario
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def paper_work():
    sc = PaperScenario()
    return CPUWorkEstimate.for_option(
        sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
    )


class TestCalibrationAgainstPaper:
    def test_single_core_rate(self, paper_work):
        model = CPUPerformanceModel()
        assert model.single_core_rate(paper_work) == pytest.approx(
            PAPER_TABLE1["cpu_single_core"], rel=0.02
        )

    def test_24_core_rate(self, paper_work):
        model = CPUPerformanceModel()
        assert model.rate(paper_work, 24) == pytest.approx(
            PAPER_TABLE2["cpu_24_cores"][0], rel=0.02
        )

    def test_poor_scaling_matches_paper(self):
        """'increased the core count by 24 times but the performance only
        increases by around nine times'."""
        model = CPUPerformanceModel()
        assert model.speedup(24) == pytest.approx(8.68, rel=0.02)

    def test_parallel_efficiency_drops(self):
        model = CPUPerformanceModel()
        assert model.parallel_efficiency(1) == pytest.approx(1.0)
        assert model.parallel_efficiency(24) < 0.4


class TestWorkEstimate:
    def test_components_positive(self, paper_work):
        assert paper_work.hazard_adds > 0
        assert paper_work.interp_entries == 1024 * paper_work.time_points
        assert paper_work.exp_calls == 2 * paper_work.time_points
        assert paper_work.time_points == 20

    def test_hazard_adds_grow_with_maturity(self):
        sc = PaperScenario()
        yc, hc = sc.yield_curve(), sc.hazard_curve()
        short = CPUWorkEstimate.for_option(sc.options(1)[0].__class__(2.0, 4, 0.4), yc, hc)
        long = CPUWorkEstimate.for_option(sc.options(1)[0].__class__(8.0, 4, 0.4), yc, hc)
        assert long.hazard_adds > short.hazard_adds

    def test_mechanistic_cycles_positive(self, paper_work):
        assert paper_work.mechanistic_cycles() > 10_000


class TestModelValidation:
    def test_core_bounds(self, paper_work):
        model = CPUPerformanceModel()
        with pytest.raises(ValidationError):
            model.rate(paper_work, 0)
        with pytest.raises(ValidationError):
            model.rate(paper_work, XEON_8260M.cores + 1)

    def test_bad_factors(self):
        with pytest.raises(ValidationError):
            CPUPerformanceModel(calibration_factor=0.0)
        with pytest.raises(ValidationError):
            CPUPerformanceModel(contention=-0.1)

    def test_speedup_monotone(self):
        model = CPUPerformanceModel()
        speeds = [model.speedup(p) for p in range(1, 25)]
        assert speeds == sorted(speeds)
        assert all(s <= p for s, p in zip(speeds, range(1, 25)))
