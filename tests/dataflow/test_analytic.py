"""Unit tests for the analytic throughput models, including agreement with
the discrete-event simulator on representative networks."""

import pytest

from repro.dataflow.analytic import (
    AnalyticStage,
    dataflow_region_cycles,
    replicated_stage_cycles,
    sequential_cycles,
    streaming_cycles,
)
from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.errors import ValidationError


STAGES = [
    AnalyticStage("load", cycles_per_item=1.0, fill_latency=4.0),
    AnalyticStage("hazard", cycles_per_item=350.0, fill_latency=7.0),
    AnalyticStage("interp", cycles_per_item=1024.0, fill_latency=56.0),
    AnalyticStage("combine", cycles_per_item=2.0, fill_latency=35.0),
]


class TestClosedForms:
    def test_sequential_is_sum(self):
        per_item = sum(s.cycles_per_item + s.fill_latency for s in STAGES)
        assert sequential_cycles(STAGES, 10) == pytest.approx(10 * per_item)

    def test_dataflow_region_is_max_plus_fills(self):
        expected = 10 * (1024.0 + (4 + 7 + 56 + 35) + 32.0)
        assert dataflow_region_cycles(STAGES, 10, region_overhead=32.0) == pytest.approx(
            expected
        )

    def test_streaming_amortises_fill(self):
        expected = (4 + 7 + 56 + 35) + 10 * 1024.0 + 32.0
        assert streaming_cycles(STAGES, 10, region_overhead=32.0) == pytest.approx(
            expected
        )

    def test_ordering_sequential_worst_streaming_best(self):
        n = 50
        seq = sequential_cycles(STAGES, n)
        reg = dataflow_region_cycles(STAGES, n, region_overhead=32.0)
        stream = streaming_cycles(STAGES, n, region_overhead=32.0)
        assert seq > reg > stream

    def test_replication_divides_bottleneck(self):
        n = 100
        base = streaming_cycles(STAGES, n)
        repl = replicated_stage_cycles(STAGES, n, {"interp": 4, "hazard": 4})
        # New bottleneck: interp/4 = 256 per item.
        assert repl == pytest.approx((4 + 7 + 56 + 35) + n * 256.0)
        assert repl < base

    def test_replication_floor_is_next_stage(self):
        n = 100
        repl = replicated_stage_cycles(STAGES, n, {"interp": 1000, "hazard": 1000})
        # combine (2.0/item) is now the bottleneck... still below load? load=1.
        assert repl == pytest.approx((4 + 7 + 56 + 35) + n * 2.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            sequential_cycles([], 10)
        with pytest.raises(ValidationError):
            streaming_cycles(STAGES, -1)
        with pytest.raises(ValidationError):
            replicated_stage_cycles(STAGES, 1, {"interp": 0})
        with pytest.raises(ValidationError):
            AnalyticStage("x", cycles_per_item=-1.0)


class TestAgreementWithSimulator:
    """The DES and the closed forms must agree on simple pipelines."""

    @pytest.mark.parametrize("ii_mid", [1.0, 4.0, 11.0])
    def test_three_stage_streaming(self, ii_mid):
        n = 300
        sim = Simulator()
        a = sim.stream("a", depth=4)
        b = sim.stream("b", depth=4)
        sim.process("src", feeder(a, list(range(n)), ii=1.0))
        sim.process("mid", transformer(a, b, n, lambda v: v, ii=ii_mid, latency=20.0))
        sim.process("dst", collector(b, n, [], ii=1.0))
        measured = sim.run().makespan_cycles

        stages = [
            AnalyticStage("src", 1.0, 0.0),
            AnalyticStage("mid", ii_mid, 20.0),
            AnalyticStage("dst", 1.0, 0.0),
        ]
        predicted = streaming_cycles(stages, n)
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_two_parallel_paths_bottleneck(self):
        """With a fork/join the slower branch sets the rate."""
        n = 200
        sim = Simulator()
        a1 = sim.stream("a1", depth=4)
        a2 = sim.stream("a2", depth=4)
        b1 = sim.stream("b1", depth=4)
        b2 = sim.stream("b2", depth=4)

        def fork(n):
            for i in range(n):
                from repro.dataflow.process import Delay, Write

                yield Write(a1, i)
                yield Write(a2, i)
                yield Delay(1)

        def join(n, sink):
            from repro.dataflow.process import Delay, Read

            for _ in range(n):
                x = yield Read(b1)
                y = yield Read(b2)
                sink.append(x + y)
                yield Delay(1)

        sink = []
        sim.process("fork", fork(n))
        sim.process("slow", transformer(a1, b1, n, lambda v: v, ii=9.0))
        sim.process("fast", transformer(a2, b2, n, lambda v: v, ii=2.0))
        sim.process("join", join(n, sink))
        measured = sim.run().makespan_cycles
        assert measured == pytest.approx(9.0 * n, rel=0.05)
        assert len(sink) == n
