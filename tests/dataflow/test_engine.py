"""Unit tests for the dataflow scheduler: timing semantics, back-pressure,
stall accounting, determinism, deadlock detection."""

import pytest

from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.dataflow.process import Delay, Read, Write
from repro.errors import DeadlockError, SimulationError


def _gen(*commands):
    """A kernel that yields a fixed command sequence."""
    for c in commands:
        yield c


class TestBasicChains:
    def test_single_feeder_collector(self):
        sim = Simulator()
        s = sim.stream("s", depth=2)
        sink = []
        sim.process("src", feeder(s, [1, 2, 3]))
        sim.process("dst", collector(s, 3, sink))
        res = sim.run()
        assert sink == [1, 2, 3]
        assert res.makespan_cycles >= 3

    def test_values_transformed_in_order(self):
        sim = Simulator()
        a = sim.stream("a")
        b = sim.stream("b")
        sink = []
        sim.process("src", feeder(a, list(range(10))))
        sim.process("t", transformer(a, b, 10, lambda v: v * v))
        sim.process("dst", collector(b, 10, sink))
        sim.run()
        assert sink == [v * v for v in range(10)]

    def test_empty_feeder(self):
        sim = Simulator()
        s = sim.stream("s")
        sim.process("src", feeder(s, []))
        sim.process("dst", collector(s, 0, []))
        res = sim.run()
        assert res.makespan_cycles == 0


class TestTimingSemantics:
    def test_ii_dominates_makespan(self):
        """A chain's steady-state cost is n * max(II)."""
        n = 200
        sim = Simulator()
        a = sim.stream("a", depth=2)
        b = sim.stream("b", depth=2)
        sim.process("src", feeder(a, list(range(n))))
        sim.process("slow", transformer(a, b, n, lambda v: v, ii=5.0))
        sim.process("dst", collector(b, n, []))
        res = sim.run()
        assert res.makespan_cycles == pytest.approx(5.0 * n, rel=0.02)

    def test_latency_adds_once(self):
        """Pipeline latency shifts completion but does not multiply."""
        n = 100
        sim = Simulator()
        a = sim.stream("a", depth=2)
        b = sim.stream("b", depth=2)
        sim.process("src", feeder(a, list(range(n))))
        sim.process("t", transformer(a, b, n, lambda v: v, ii=1.0, latency=50.0))
        sim.process("dst", collector(b, n, []))
        res = sim.run()
        # ~ n * II + latency, not n * latency.
        assert res.makespan_cycles < n * 1.0 + 50.0 + 20.0

    def test_sequential_delays_accumulate(self):
        sim = Simulator()

        def only_delays():
            yield Delay(10)
            yield Delay(5.5)

        sim.process("p", only_delays())
        res = sim.run()
        assert res.makespan_cycles == pytest.approx(15.5)
        assert res.process_busy["p"] == pytest.approx(15.5)

    def test_backpressure_throttles_producer(self):
        """A fast producer into a slow consumer is limited by the consumer."""
        n = 100
        sim = Simulator()
        s = sim.stream("s", depth=2)
        sink = []
        sim.process("src", feeder(s, list(range(n)), ii=1.0))
        sim.process("dst", collector(s, n, sink, ii=10.0))
        res = sim.run()
        assert res.makespan_cycles == pytest.approx(10.0 * n, rel=0.05)
        # The producer stalled on the full FIFO.
        assert res.process_stall_write["src"] > 0

    def test_starved_consumer_records_read_stalls(self):
        n = 50
        sim = Simulator()
        s = sim.stream("s", depth=4)
        sim.process("src", feeder(s, list(range(n)), ii=20.0))
        sim.process("dst", collector(s, n, [], ii=1.0))
        res = sim.run()
        assert res.process_stall_read["dst"] > 0

    def test_deeper_fifo_absorbs_burstiness(self):
        """A bursty producer (alternating 0/20-cycle gaps) loses less time
        with a deeper FIFO."""

        def bursty(stream, n):
            for i in range(n):
                yield Write(stream, i)
                yield Delay(20.0 if i % 2 == 0 else 0.0)

        def run(depth):
            sim = Simulator()
            s = sim.stream("s", depth=depth)
            sim.process("src", bursty(s, 60))
            sim.process("dst", collector(s, 60, [], ii=10.0))
            return sim.run().makespan_cycles

        assert run(16) <= run(1)


class TestDeterminism:
    def test_repeat_runs_identical(self):
        def build():
            sim = Simulator()
            a = sim.stream("a", depth=3)
            b = sim.stream("b", depth=2)
            sim.process("src", feeder(a, list(range(37)), ii=2.0))
            sim.process("t", transformer(a, b, 37, lambda v: v + 1, ii=3.0, latency=9.0))
            sim.process("dst", collector(b, 37, [], ii=1.0))
            return sim.run()

        r1, r2 = build(), build()
        assert r1.makespan_cycles == r2.makespan_cycles
        assert r1.process_times == r2.process_times
        assert r1.process_stall_read == r2.process_stall_read


class TestErrorHandling:
    def test_deadlock_reader_no_writer(self):
        sim = Simulator()
        s = sim.stream("s")

        def reader():
            yield Read(s)

        sim.process("r", reader())
        with pytest.raises(DeadlockError, match="blocked-read"):
            sim.run()

    def test_deadlock_writer_no_reader(self):
        sim = Simulator()
        s = sim.stream("s", depth=1)

        def writer():
            yield Write(s, 1)
            yield Write(s, 2)  # blocks forever: FIFO full, no reader

        sim.process("w", writer())
        with pytest.raises(DeadlockError, match="blocked-write"):
            sim.run()

    def test_cyclic_deadlock_detected(self):
        sim = Simulator()
        a = sim.stream("a")
        b = sim.stream("b")

        def p1():
            v = yield Read(a)
            yield Write(b, v)

        def p2():
            v = yield Read(b)
            yield Write(a, v)

        sim.process("p1", p1())
        sim.process("p2", p2())
        with pytest.raises(DeadlockError, match="2 blocked"):
            sim.run()

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        sim.stream("s")
        with pytest.raises(SimulationError):
            sim.stream("s")
        sim.process("p", feeder(sim.stream("s2"), []))
        with pytest.raises(SimulationError):
            sim.process("p", feeder(sim.stream("s3"), []))

    def test_rerun_rejected(self):
        sim = Simulator()
        sim.process("p", _gen())
        sim.run()
        with pytest.raises(SimulationError, match="already run"):
            sim.run()

    def test_command_budget(self):
        sim = Simulator()

        def forever():
            while True:
                yield Delay(1)

        sim.process("p", forever())
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_commands=100)

    def test_unknown_command_rejected(self):
        sim = Simulator()

        def bad():
            yield "not-a-command"

        sim.process("p", bad())
        with pytest.raises(SimulationError, match="unknown command"):
            sim.run()

    def test_foreign_stream_read_rejected(self):
        sim = Simulator()
        s = sim.stream("s", depth=4)

        def w():
            yield Write(s, 1)
            yield Write(s, 2)

        def r1():
            yield Read(s)

        def r2():
            yield Read(s)

        sim.process("w", w())
        sim.process("r1", r1())
        sim.process("r2", r2())
        with pytest.raises(SimulationError):
            sim.run()


class TestResultAccessors:
    def test_seconds_and_throughput(self):
        sim = Simulator()
        sim.process("p", _gen(Delay(300)))
        res = sim.run()
        assert res.seconds(300e6) == pytest.approx(1e-6)
        assert res.throughput(10, 300e6) == pytest.approx(1e7)

    def test_throughput_zero_makespan_rejected(self):
        sim = Simulator()
        sim.process("p", _gen())
        res = sim.run()
        with pytest.raises(SimulationError):
            res.throughput(1, 1e6)

    def test_bottleneck(self):
        sim = Simulator()
        sim.process("fast", _gen(Delay(10)))
        sim.process("slow", _gen(Delay(100)))
        res = sim.run()
        assert res.bottleneck() == "slow"
