"""Unit tests for topology graphs."""

import pytest

from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.dataflow.graph import DataflowGraph, GraphEdge, GraphNode
from repro.errors import SimulationError


@pytest.fixture
def chain_sim():
    sim = Simulator("chain")
    a = sim.stream("a", per_option=True)
    b = sim.stream("b")
    sim.process("src", feeder(a, [1]), writes=(a,))
    sim.process("mid", transformer(a, b, 1, lambda v: v), reads=(a,), writes=(b,))
    sim.process("dst", collector(b, 1, []), reads=(b,), group="drains")
    return sim


class TestFromSimulator:
    def test_nodes_and_edges(self, chain_sim):
        g = DataflowGraph.from_simulator(chain_sim)
        assert {n.name for n in g.nodes} == {"src", "mid", "dst"}
        assert {(e.src, e.dst) for e in g.edges} == {("src", "mid"), ("mid", "dst")}

    def test_per_option_flag_preserved(self, chain_sim):
        g = DataflowGraph.from_simulator(chain_sim)
        flags = {e.stream: e.per_option for e in g.edges}
        assert flags == {"a": True, "b": False}

    def test_unbound_stream_pseudo_nodes(self):
        sim = Simulator()
        sim.stream("dangling")
        g = DataflowGraph.from_simulator(sim)
        assert g.edges[0].src == "<input>"
        assert g.edges[0].dst == "<output>"


class TestAnalysis:
    def test_acyclic_chain(self, chain_sim):
        g = DataflowGraph.from_simulator(chain_sim)
        assert g.is_acyclic()
        assert g.topological_order() == ["src", "mid", "dst"]
        assert g.stage_depth() == 3

    def test_cycle_detection(self):
        g = DataflowGraph(name="cyc")
        g.nodes = [GraphNode("a"), GraphNode("b")]
        g.edges = [
            GraphEdge("a", "b", "s1", 2),
            GraphEdge("b", "a", "s2", 2),
        ]
        assert not g.is_acyclic()
        with pytest.raises(SimulationError):
            g.topological_order()

    def test_fan_in_out(self):
        g = DataflowGraph(name="fan")
        g.nodes = [GraphNode(n) for n in "abc"]
        g.edges = [
            GraphEdge("a", "b", "s1", 2),
            GraphEdge("a", "c", "s2", 2),
        ]
        assert g.fan_out("a") == 2
        assert g.fan_in("b") == 1
        assert g.fan_in("a") == 0

    def test_groups(self, chain_sim):
        g = DataflowGraph.from_simulator(chain_sim)
        assert g.groups() == {"drains": ["dst"]}


class TestRendering:
    def test_dot_contains_edges_and_colours(self, chain_sim):
        dot = DataflowGraph.from_simulator(chain_sim).to_dot()
        assert '"src" -> "mid"' in dot
        assert "color=red" in dot  # per-option stream
        assert "color=blue" in dot  # per-time-point stream
        assert dot.startswith("digraph")

    def test_dot_renders_groups_as_clusters(self, chain_sim):
        dot = DataflowGraph.from_simulator(chain_sim).to_dot()
        assert "subgraph cluster_0" in dot
        assert 'label="drains"' in dot

    def test_ascii_render(self, chain_sim):
        text = DataflowGraph.from_simulator(chain_sim).to_ascii()
        assert "src" in text and "dst" in text
        assert "==a==>" in text  # per-option marker
        assert "--b-->" in text  # per-time-point marker
