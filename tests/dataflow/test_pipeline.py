"""Unit tests for pipelined-loop timing."""

import pytest

from repro.dataflow.pipeline import LoopTiming, nested_loop_cycles, pipelined_loop_cycles
from repro.errors import ValidationError


class TestPipelinedLoopCycles:
    def test_formula(self):
        # latency + (n-1) * II
        assert pipelined_loop_cycles(10, 2.0, 5.0) == pytest.approx(5.0 + 9 * 2.0)

    def test_single_iteration_is_latency(self):
        assert pipelined_loop_cycles(1, 7.0, 12.0) == 12.0

    def test_zero_iterations(self):
        assert pipelined_loop_cycles(0, 1.0, 10.0) == 0.0

    def test_negative_trips_rejected(self):
        with pytest.raises(ValidationError):
            pipelined_loop_cycles(-1, 1.0, 1.0)

    def test_zero_ii_rejected(self):
        with pytest.raises(ValidationError):
            pipelined_loop_cycles(5, 0.0, 1.0)

    def test_ii7_vs_ii1_ratio(self):
        """The paper's headline: II=7 is ~7x slower at scale."""
        n = 10_000
        slow = pipelined_loop_cycles(n, 7.0, 7.0)
        fast = pipelined_loop_cycles(n, 1.0, 7.0)
        assert slow / fast == pytest.approx(7.0, rel=0.01)


class TestLoopTiming:
    def test_cycles(self):
        lt = LoopTiming(ii=3.0, latency=10.0)
        assert lt.cycles(5) == pytest.approx(10.0 + 4 * 3.0)

    def test_steady_state(self):
        lt = LoopTiming(ii=3.0, latency=10.0)
        assert lt.steady_state_cycles(5) == pytest.approx(15.0)

    def test_scaled(self):
        lt = LoopTiming(ii=2.0, latency=8.0).scaled(3.0)
        assert lt.ii == 6.0
        assert lt.latency == 8.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            LoopTiming(ii=0.0)
        with pytest.raises(ValidationError):
            LoopTiming(ii=1.0, latency=-1.0)


class TestNestedLoops:
    def test_unflattened_pays_fill_per_outer(self):
        inner = LoopTiming(ii=1.0, latency=10.0)
        cost = nested_loop_cycles(5, 20, inner)
        assert cost == pytest.approx(5 * (10.0 + 19.0))

    def test_flattened_pays_fill_once(self):
        inner = LoopTiming(ii=1.0, latency=10.0)
        cost = nested_loop_cycles(5, 20, inner, flattened=True)
        assert cost == pytest.approx(10.0 + 99.0)

    def test_flattened_never_slower(self):
        inner = LoopTiming(ii=2.0, latency=30.0)
        for outer, inner_n in [(1, 1), (3, 7), (10, 100)]:
            assert nested_loop_cycles(
                outer, inner_n, inner, flattened=True
            ) <= nested_loop_cycles(outer, inner_n, inner)

    def test_zero_trips(self):
        inner = LoopTiming(ii=1.0, latency=5.0)
        assert nested_loop_cycles(0, 10, inner) == 0.0
        assert nested_loop_cycles(10, 0, inner) == 0.0
