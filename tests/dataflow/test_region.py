"""Unit tests for dataflow-region invocation semantics."""

import pytest

from repro.dataflow.engine import collector, feeder
from repro.dataflow.region import DataflowRegion
from repro.errors import ValidationError


def _chain_builder(sim, item):
    """One-stage region processing a list of values."""
    s = sim.stream("s", depth=2)
    sink = []
    sim.process("src", feeder(s, list(item), ii=2.0))
    sim.process("dst", collector(s, len(item), sink))


class TestRunPerItem:
    def test_overhead_charged_per_invocation(self):
        region = DataflowRegion("r", _chain_builder, start_overhead_cycles=100.0)
        timing = region.run_per_item([[1, 2, 3]] * 4)
        assert timing.invocations == 4
        assert timing.overhead_cycles == pytest.approx(400.0)
        assert timing.total_cycles > 400.0

    def test_mean_invocation_cycles(self):
        region = DataflowRegion("r", _chain_builder, start_overhead_cycles=50.0)
        timing = region.run_per_item([[1]] * 5)
        assert timing.mean_invocation_cycles == pytest.approx(
            timing.total_cycles / 5
        )

    def test_empty_items(self):
        region = DataflowRegion("r", _chain_builder)
        timing = region.run_per_item([])
        assert timing.total_cycles == 0.0
        assert timing.invocations == 0


class TestRunBatch:
    def test_overhead_charged_once(self):
        region = DataflowRegion("r", _chain_builder, start_overhead_cycles=100.0)
        timing = region.run_batch([1] * 20)
        assert timing.invocations == 1
        assert timing.overhead_cycles == pytest.approx(100.0)

    def test_batch_beats_per_item(self):
        """The inter-option insight: one big run beats many small ones."""
        region = DataflowRegion("r", _chain_builder, start_overhead_cycles=200.0)
        items = [[i] for i in range(10)]
        per_item = region.run_per_item(items).total_cycles

        region2 = DataflowRegion("r2", _chain_builder, start_overhead_cycles=200.0)
        batch = region2.run_batch([i for (i,) in items]).total_cycles
        assert batch < per_item

    def test_compute_cycles(self):
        region = DataflowRegion("r", _chain_builder, start_overhead_cycles=10.0)
        timing = region.run_batch([1, 2, 3])
        assert timing.compute_cycles == pytest.approx(timing.total_cycles - 10.0)


class TestValidation:
    def test_negative_overhead_rejected(self):
        with pytest.raises(ValidationError):
            DataflowRegion("r", _chain_builder, start_overhead_cycles=-1.0)
