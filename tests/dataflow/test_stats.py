"""Unit tests for simulation summaries."""

import pytest

from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.dataflow.stats import stall_fraction, summarise, utilisation_table


@pytest.fixture
def result():
    n = 100
    sim = Simulator()
    a = sim.stream("a", depth=2)
    b = sim.stream("b", depth=2)
    sim.process("src", feeder(a, list(range(n)), ii=1.0))
    sim.process("slow", transformer(a, b, n, lambda v: v, ii=8.0))
    sim.process("dst", collector(b, n, [], ii=1.0))
    return sim.run()


class TestSummarise:
    def test_sorted_by_busy(self, result):
        rows = summarise(result)
        busys = [r.busy_cycles for r in rows]
        assert busys == sorted(busys, reverse=True)
        assert rows[0].name == "slow"

    def test_utilisation_bounds(self, result):
        for row in summarise(result):
            assert 0.0 <= row.utilisation <= 1.0

    def test_bottleneck_near_full_utilisation(self, result):
        rows = {r.name: r for r in summarise(result)}
        assert rows["slow"].utilisation > 0.9

    def test_stalled_fraction(self, result):
        rows = {r.name: r for r in summarise(result)}
        # The producer is back-pressured by the slow middle stage.
        assert rows["src"].stalled_fraction > 0.5


class TestStallFraction:
    def test_congested_pipeline_has_stalls(self, result):
        assert stall_fraction(result) > 0.2

    def test_balanced_pipeline_low_stalls(self):
        n = 100
        sim = Simulator()
        a = sim.stream("a", depth=8)
        sim.process("src", feeder(a, list(range(n)), ii=5.0))
        sim.process("dst", collector(a, n, [], ii=5.0))
        res = sim.run()
        assert stall_fraction(res) < 0.2


class TestUtilisationTable:
    def test_renders_all_stages(self, result):
        text = utilisation_table(result)
        for name in ("src", "slow", "dst"):
            assert name in text
        assert "util" in text
