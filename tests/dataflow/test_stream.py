"""Unit tests for streams."""

import pytest

from repro.dataflow.process import Process
from repro.dataflow.stream import Stream, StreamStats
from repro.errors import SimulationError


def _dummy():
    yield from ()


class TestStreamBasics:
    def test_fifo_order(self):
        s = Stream("s", depth=4)
        s.push(1.0, "a")
        s.push(2.0, "b")
        assert s.pop() == (1.0, "a")
        assert s.pop() == (2.0, "b")

    def test_depth_validation(self):
        with pytest.raises(SimulationError):
            Stream("s", depth=0)

    def test_full_and_empty(self):
        s = Stream("s", depth=1)
        assert s.empty and not s.full
        s.push(0.0, 1)
        assert s.full and not s.empty

    def test_push_full_raises(self):
        s = Stream("s", depth=1)
        s.push(0.0, 1)
        with pytest.raises(SimulationError):
            s.push(0.0, 2)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            Stream("s").pop()

    def test_drain(self):
        s = Stream("s", depth=3)
        s.push(0.0, 1)
        s.push(0.0, 2)
        assert s.drain() == [1, 2]
        assert s.empty

    def test_reset_clears_stats(self):
        s = Stream("s", depth=2)
        s.push(0.0, 1)
        s.reset()
        assert s.empty
        assert s.stats.tokens == 0


class TestStreamStats:
    def test_token_count_and_occupancy(self):
        s = Stream("s", depth=4)
        s.push(0.0, 1)
        s.push(0.0, 2)
        s.pop()
        s.push(0.0, 3)
        assert s.stats.tokens == 3
        assert s.stats.max_occupancy == 2

    def test_merge(self):
        a = StreamStats(tokens=5, max_occupancy=2, reader_stall_cycles=10)
        b = StreamStats(tokens=3, max_occupancy=4, writer_stall_cycles=7)
        m = a.merge(b)
        assert m.tokens == 8
        assert m.max_occupancy == 4
        assert m.reader_stall_cycles == 10
        assert m.writer_stall_cycles == 7


class TestSPSCEnforcement:
    def test_two_readers_rejected(self):
        s = Stream("s")
        p1 = Process("p1", _dummy())
        p2 = Process("p2", _dummy())
        s.bind_reader(p1)
        with pytest.raises(SimulationError, match="SPSC"):
            s.bind_reader(p2)

    def test_two_writers_rejected(self):
        s = Stream("s")
        s.bind_writer(Process("p1", _dummy()))
        with pytest.raises(SimulationError, match="SPSC"):
            s.bind_writer(Process("p2", _dummy()))

    def test_rebind_same_process_ok(self):
        s = Stream("s")
        p = Process("p", _dummy())
        s.bind_reader(p)
        s.bind_reader(p)  # idempotent
        assert s.reader is p
