"""Unit tests for event tracing."""

import pytest

from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.dataflow.tracing import Trace


@pytest.fixture
def traced_run():
    sim = Simulator()
    a = sim.stream("a", depth=2)
    b = sim.stream("b", depth=2)
    trace = Trace()
    sim.tracer = trace
    sim.process("src", feeder(a, list(range(5))))
    sim.process("mid", transformer(a, b, 5, lambda v: v, ii=3.0, latency=10.0))
    sim.process("dst", collector(b, 5, []))
    result = sim.run()
    return trace, result


class TestTrace:
    def test_events_recorded(self, traced_run):
        trace, _ = traced_run
        assert len(trace) > 0
        kinds = {e.kind for e in trace.events}
        assert kinds == {"read", "write"}

    def test_token_conservation_per_stream(self, traced_run):
        trace, _ = traced_run
        for stream in ("a", "b"):
            evs = trace.for_stream(stream)
            writes = sum(1 for e in evs if e.kind == "write")
            reads = sum(1 for e in evs if e.kind == "read")
            assert writes == reads == 5

    def test_occupancy_profile_bounds(self, traced_run):
        trace, _ = traced_run
        profile = trace.occupancy_profile("a")
        occs = [o for _, o in profile]
        assert min(occs) >= 0
        assert max(occs) <= 2  # stream depth
        assert occs[-1] == 0  # fully drained

    def test_occupancy_at(self, traced_run):
        trace, result = traced_run
        assert trace.occupancy_at("a", -1.0) == 0
        assert trace.occupancy_at("a", result.makespan_cycles + 1) == 0

    def test_first_output_time_reflects_latency(self, traced_run):
        trace, _ = traced_run
        # The first read on b cannot precede the mid stage's 10-cycle latency.
        t = trace.first_output_time("b")
        assert t is not None and t >= 10.0

    def test_first_output_time_missing_stream(self, traced_run):
        trace, _ = traced_run
        assert trace.first_output_time("nonexistent") is None

    def test_timeline_renders(self, traced_run):
        trace, _ = traced_run
        text = trace.timeline(limit=10)
        assert "cycle" in text
        assert len(text.splitlines()) <= 11
