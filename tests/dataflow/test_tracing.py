"""Unit tests for event tracing."""

import pytest

from repro.dataflow.engine import Simulator, collector, feeder, transformer
from repro.dataflow.tracing import Trace


@pytest.fixture
def traced_run():
    sim = Simulator()
    a = sim.stream("a", depth=2)
    b = sim.stream("b", depth=2)
    trace = Trace()
    sim.tracer = trace
    sim.process("src", feeder(a, list(range(5))))
    sim.process("mid", transformer(a, b, 5, lambda v: v, ii=3.0, latency=10.0))
    sim.process("dst", collector(b, 5, []))
    result = sim.run()
    return trace, result


class TestTrace:
    def test_events_recorded(self, traced_run):
        trace, _ = traced_run
        assert len(trace) > 0
        kinds = {e.kind for e in trace.events}
        assert kinds == {"read", "write"}

    def test_token_conservation_per_stream(self, traced_run):
        trace, _ = traced_run
        for stream in ("a", "b"):
            evs = trace.for_stream(stream)
            writes = sum(1 for e in evs if e.kind == "write")
            reads = sum(1 for e in evs if e.kind == "read")
            assert writes == reads == 5

    def test_occupancy_profile_bounds(self, traced_run):
        trace, _ = traced_run
        profile = trace.occupancy_profile("a")
        occs = [o for _, o in profile]
        assert min(occs) >= 0
        assert max(occs) <= 2  # stream depth
        assert occs[-1] == 0  # fully drained

    def test_occupancy_at(self, traced_run):
        trace, result = traced_run
        assert trace.occupancy_at("a", -1.0) == 0
        assert trace.occupancy_at("a", result.makespan_cycles + 1) == 0

    def test_first_output_time_reflects_latency(self, traced_run):
        trace, _ = traced_run
        # The first read on b cannot precede the mid stage's 10-cycle latency.
        t = trace.first_output_time("b")
        assert t is not None and t >= 10.0

    def test_first_output_time_missing_stream(self, traced_run):
        trace, _ = traced_run
        assert trace.first_output_time("nonexistent") is None

    def test_timeline_renders(self, traced_run):
        trace, _ = traced_run
        text = trace.timeline(limit=10)
        assert "cycle" in text
        assert len(text.splitlines()) <= 11


class TestTelemetryAdapter:
    def test_recorder_mirrors_events_as_instant_spans(self):
        from repro.telemetry import SpanRecorder

        recorder = SpanRecorder()
        sim = Simulator()
        a = sim.stream("a", depth=2)
        sim.process("src", feeder(a, [1, 2]))
        sim.process("dst", collector(a, 2, []))
        trace = Trace(recorder=recorder)
        sim.tracer = trace
        sim.run()
        assert len(recorder) == len(trace.events)
        for event, span in zip(trace.events, recorder.spans):
            assert span.name == event.kind
            assert span.start_s == span.end_s == event.time
            assert span.track == event.stream
            assert span.category == "dataflow"
            assert span.args == {"process": event.process}

    def test_spans_property_views_legacy_events(self, traced_run):
        trace, _ = traced_run
        spans = trace.spans
        assert len(spans) == len(trace)
        assert {s.category for s in spans} == {"dataflow"}
        assert {s.name for s in spans} == {"read", "write"}

    def test_bare_record_warns_once_per_process(self):
        from repro.deprecation import reset_deprecation_registry

        reset_deprecation_registry()
        try:
            trace = Trace()
            with pytest.warns(DeprecationWarning, match="SpanRecorder"):
                trace.record("write", 0.0, "p", "s")
            # Second record: registry already holds the key, no warning.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                trace.record("read", 1.0, "p", "s")
        finally:
            reset_deprecation_registry()

    def test_recorder_attached_does_not_warn(self):
        import warnings

        from repro.deprecation import reset_deprecation_registry
        from repro.telemetry import SpanRecorder

        reset_deprecation_registry()
        try:
            trace = Trace(recorder=SpanRecorder())
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                trace.record("write", 0.0, "p", "s")
        finally:
            reset_deprecation_registry()
