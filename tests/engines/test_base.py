"""Unit tests for the shared engine machinery."""

import numpy as np
import pytest

from repro.core.types import CDSOption
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.xilinx_baseline import _sink_to_array
from repro.errors import ValidationError
from repro.hls.resources import ResourceUsage
from repro.workloads.scenarios import PaperScenario


class TestEngineWorkload:
    def test_build_precomputes_schedules(self, yield_curve, hazard_curve, mixed_options):
        wl = EngineWorkload.build(mixed_options, yield_curve, hazard_curve)
        assert wl.n_options == len(mixed_options)
        assert len(wl.schedules) == len(mixed_options)
        assert wl.total_time_points == sum(len(s) for s in wl.schedules)

    def test_empty_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            EngineWorkload.build([], yield_curve, hazard_curve)


class TestSinkToArray:
    def test_ordered_conversion(self):
        out = _sink_to_array({0: 1.0, 2: 3.0, 1: 2.0}, 3, "x")
        assert list(out) == [1.0, 2.0, 3.0]

    def test_wrong_count_rejected(self):
        with pytest.raises(ValidationError, match="produced 2"):
            _sink_to_array({0: 1.0, 1: 2.0}, 3, "x")

    def test_missing_index_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            _sink_to_array({0: 1.0, 2: 2.0, 3: 4.0}, 3, "x")


class TestBaseContract:
    def test_bad_spread_shape_caught(self):
        """An engine returning the wrong number of spreads is rejected."""

        class Broken(CDSEngineBase):
            name = "broken"

            def _execute(self, workload):
                return np.zeros(workload.n_options + 1), 1.0, 1, []

            def resources(self):
                return ResourceUsage(lut=1)

        with pytest.raises(ValidationError, match="expected"):
            Broken(PaperScenario(n_rates=64, n_options=2)).run()

    def test_default_workload_from_scenario(self):
        class Trivial(CDSEngineBase):
            name = "trivial"

            def _execute(self, workload):
                return np.ones(workload.n_options), 300.0, 1, []

            def resources(self):
                return ResourceUsage(lut=1)

        sc = PaperScenario(n_rates=64, n_options=4)
        result = Trivial(sc).run()
        assert result.engine == "trivial"
        assert len(result.spreads_bps) == 4
        assert result.seconds > sc.clock.seconds(300.0)  # PCIe added

    def test_default_scenario_constructed(self):
        class Trivial(CDSEngineBase):
            name = "trivial"

            def _execute(self, workload):
                return np.ones(workload.n_options), 1.0, 1, []

            def resources(self):
                return ResourceUsage()

        engine = Trivial()  # no scenario given
        assert engine.scenario.n_rates == 1024
