"""Unit tests for network construction and resource estimation."""

import pytest

from repro.dataflow.engine import Simulator
from repro.dataflow.graph import DataflowGraph
from repro.engines.base import EngineWorkload
from repro.engines.builder import build_dataflow_network, engine_resources
from repro.engines.stages import StageModels
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture
def sc():
    return PaperScenario(n_rates=64, n_options=3)


@pytest.fixture
def wl(sc):
    return EngineWorkload.build(sc.options(), sc.yield_curve(), sc.hazard_curve())


class TestBuildNetwork:
    def test_unreplicated_topology(self, sc, wl):
        sim = Simulator()
        models = StageModels.for_scenario(sc, interleaved=True)
        build_dataflow_network(sim, wl, [0, 1, 2], models)
        g = DataflowGraph.from_simulator(sim)
        names = {n.name for n in g.nodes}
        for expected in (
            "timegrid", "hazard_acc", "defprob", "interp", "discount",
            "tee_S", "tee_D", "payment", "payoff", "accrual",
            "accum_payment", "accum_payoff", "accum_accrual", "combine", "drain",
        ):
            assert expected in names
        assert g.is_acyclic()

    def test_replicated_topology(self, sc, wl):
        sim = Simulator()
        models = StageModels.for_scenario(sc, interleaved=True)
        build_dataflow_network(sim, wl, [0, 1, 2], models, replication=4)
        g = DataflowGraph.from_simulator(sim)
        groups = g.groups()
        assert len(groups["hazard"]) == 4
        assert len(groups["interp"]) == 4
        names = {n.name for n in g.nodes}
        assert "hazard_rr_sched" in names and "interp_rr_collect" in names

    def test_network_runs_and_drains(self, sc, wl):
        sim = Simulator()
        models = StageModels.for_scenario(sc, interleaved=True)
        handles = build_dataflow_network(sim, wl, [0, 1, 2], models)
        sim.run()
        assert set(handles.results_sink.keys()) == {0, 1, 2}
        # All per-point streams fully drained.
        for s in sim.streams.values():
            assert s.empty, f"stream {s.name} not drained"

    def test_replication_validation(self, sc, wl):
        sim = Simulator()
        models = StageModels.for_scenario(sc, interleaved=True)
        with pytest.raises(ValidationError):
            build_dataflow_network(sim, wl, [0], models, replication=0)

    def test_per_option_streams_marked(self, sc, wl):
        sim = Simulator()
        models = StageModels.for_scenario(sc, interleaved=True)
        build_dataflow_network(sim, wl, [0], models)
        per_option = {s.name for s in sim.streams.values() if s.per_option}
        assert "tg->combine.params" in per_option
        assert "combine->drain" in per_option
        assert "tg->hazard" not in per_option


class TestEngineResources:
    def test_replication_increases_resources(self, sc):
        r1 = engine_resources(sc, replication=1)
        r6 = engine_resources(sc, replication=6)
        assert r6.lut > r1.lut
        assert r6.dsp > r1.dsp

    def test_uram_copies_scale_with_replica_pairs(self, sc):
        # Dual-ported URAM: one table copy serves two replicas.
        r2 = engine_resources(sc, replication=2)
        r6 = engine_resources(sc, replication=6)
        assert r6.uram == 3 * r2.uram

    def test_naive_engine_smaller_adders(self, sc):
        naive = engine_resources(sc, replication=1, interleaved=False)
        inter = engine_resources(sc, replication=1, interleaved=True)
        assert naive.dsp < inter.dsp  # 1 adder vs 7 partial-sum adders

    def test_validation(self, sc):
        with pytest.raises(ValidationError):
            engine_resources(sc, replication=0)
