"""Integration tests: every engine variant must reproduce the reference
pricer's spreads exactly (same operations in the same order)."""

import numpy as np
import pytest

from repro.core.pricing import CDSPricer
from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.workloads.scenarios import PaperScenario

ENGINE_CLASSES = [
    XilinxBaselineEngine,
    OptimisedDataflowEngine,
    InterOptionDataflowEngine,
    VectorizedDataflowEngine,
]


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(n_rates=128, n_options=6)


@pytest.fixture(scope="module")
def reference(scenario):
    pricer = CDSPricer(scenario.yield_curve(), scenario.hazard_curve())
    return np.array([pricer.price(o).spread_bps for o in scenario.options()])


class TestHomogeneousBatch:
    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_engine_matches_reference_bitexact(self, engine_cls, scenario, reference):
        result = engine_cls(scenario).run()
        assert np.array_equal(result.spreads_bps, reference)

    @pytest.mark.parametrize("n_engines", [1, 2, 3])
    def test_multi_engine_matches_reference(self, n_engines, scenario, reference):
        result = MultiEngineSystem(scenario, n_engines=n_engines).run()
        assert np.array_equal(result.spreads_bps, reference)


class TestHeterogeneousBatch:
    """Mixed maturities/frequencies: different schedule lengths per option."""

    @pytest.fixture(scope="class")
    def mixed(self, scenario):
        from repro.core.types import CDSOption

        options = [
            CDSOption(1.0, 4, 0.4),
            CDSOption(2.5, 2, 0.25),
            CDSOption(5.0, 4, 0.4),
            CDSOption(3.7, 12, 0.1),
            CDSOption(7.0, 1, 0.55),
            CDSOption(0.4, 4, 0.0),
        ]
        pricer = CDSPricer(scenario.yield_curve(), scenario.hazard_curve())
        ref = np.array([pricer.price(o).spread_bps for o in options])
        return options, ref

    @pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
    def test_engine_handles_ragged_schedules(self, engine_cls, scenario, mixed):
        options, ref = mixed
        result = engine_cls(scenario).run(options=options)
        assert result.spreads_bps == pytest.approx(ref, rel=1e-14)

    def test_multi_engine_ragged(self, scenario, mixed):
        options, ref = mixed
        result = MultiEngineSystem(scenario, n_engines=3).run(options=options)
        assert result.spreads_bps == pytest.approx(ref, rel=1e-14)


class TestCrossEngineAgreement:
    def test_all_variants_agree_with_each_other(self, scenario):
        results = [cls(scenario).run().spreads_bps for cls in ENGINE_CLASSES]
        for other in results[1:]:
            assert np.array_equal(results[0], other)
