"""Integration tests: the performance *shape* of the paper must hold.

These tests run the simulated engines on a reduced (but structurally
faithful) workload and assert the orderings and approximate factors the
paper reports: each optimisation step helps, the total single-engine gain
is large, replication saturates at the URAM port count, and multi-engine
scaling is sub-linear but strong.
"""

import pytest

from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def rates():
    """Throughputs of the four single-engine variants (paper scenario,
    small batch)."""
    sc = PaperScenario(n_options=24)
    return {
        cls.name: cls(sc).run().options_per_second
        for cls in (
            XilinxBaselineEngine,
            OptimisedDataflowEngine,
            InterOptionDataflowEngine,
            VectorizedDataflowEngine,
        )
    }


class TestTable1Ordering:
    def test_each_optimisation_helps(self, rates):
        assert (
            rates["xilinx_baseline"]
            < rates["optimised_dataflow"]
            < rates["dataflow_interoption"]
            < rates["vectorised_dataflow"]
        )

    def test_dataflow_vs_baseline_factor(self, rates):
        """Paper: optimised engine ~2.1x the Xilinx library version."""
        ratio = rates["optimised_dataflow"] / rates["xilinx_baseline"]
        assert ratio == pytest.approx(2.13, rel=0.25)

    def test_interoption_vs_dataflow_factor(self, rates):
        """Paper: running continually between options ~1.8x."""
        ratio = rates["dataflow_interoption"] / rates["optimised_dataflow"]
        assert ratio == pytest.approx(1.80, rel=0.25)

    def test_vectorisation_factor(self, rates):
        """Paper: six-fold replication doubled performance."""
        ratio = rates["vectorised_dataflow"] / rates["dataflow_interoption"]
        assert ratio == pytest.approx(2.08, rel=0.25)

    def test_total_single_engine_gain(self, rates):
        """Paper: 'around eight times faster ... than the original'."""
        ratio = rates["vectorised_dataflow"] / rates["xilinx_baseline"]
        assert ratio == pytest.approx(7.99, rel=0.25)


class TestAgainstCPU:
    def test_single_engine_beats_cpu_core(self, rates):
        """Paper: the vectorised engine ~3.2x a single Xeon core."""
        sc = PaperScenario()
        from repro.cpu.scaling import CPUWorkEstimate

        work = CPUWorkEstimate.for_option(
            sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
        )
        cpu = sc.cpu_perf.single_core_rate(work)
        assert rates["vectorised_dataflow"] / cpu == pytest.approx(3.17, rel=0.25)

    def test_baseline_slower_than_cpu_core(self, rates):
        """Table I: the original Xilinx engine loses to one CPU core."""
        sc = PaperScenario()
        from repro.cpu.scaling import CPUWorkEstimate

        work = CPUWorkEstimate.for_option(
            sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
        )
        cpu = sc.cpu_perf.single_core_rate(work)
        assert rates["xilinx_baseline"] < cpu


class TestMultiEngineScaling:
    @pytest.fixture(scope="class")
    def scaling(self):
        sc = PaperScenario(n_options=60)
        return {
            n: MultiEngineSystem(sc, n_engines=n).run().options_per_second
            for n in (1, 2, 5)
        }

    def test_monotone(self, scaling):
        assert scaling[1] < scaling[2] < scaling[5]

    def test_two_engines_near_linear(self, scaling):
        """Paper: 2 engines = 1.94x one engine."""
        assert scaling[2] / scaling[1] == pytest.approx(1.94, rel=0.15)

    def test_five_engines_sublinear(self, scaling):
        """Paper: 5 engines = 4.12x one engine (sub-linear)."""
        ratio = scaling[5] / scaling[1]
        assert 3.3 < ratio < 5.0

    def test_five_engines_beat_24core_cpu(self, scaling):
        """Paper's headline: FPGA ~1.55x the 24-core Xeon."""
        sc = PaperScenario()
        from repro.cpu.scaling import CPUWorkEstimate

        work = CPUWorkEstimate.for_option(
            sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
        )
        cpu24 = sc.cpu_perf.rate(work, 24)
        assert scaling[5] > cpu24
        assert scaling[5] / cpu24 == pytest.approx(1.5, rel=0.3)


class TestPowerEfficiencyShape:
    def test_fpga_efficiency_beats_cpu(self):
        """Paper: ~7x the CPU's options/Watt at five engines."""
        sc = PaperScenario(n_options=60)
        from repro.cpu.scaling import CPUWorkEstimate

        work = CPUWorkEstimate.for_option(
            sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
        )
        cpu_eff = sc.cpu_perf.rate(work, 24) / sc.cpu_power.watts(24)
        fpga_rate = MultiEngineSystem(sc, n_engines=5).run().options_per_second
        fpga_eff = fpga_rate / sc.fpga_power.watts(5)
        assert fpga_eff / cpu_eff == pytest.approx(7.0, rel=0.3)
