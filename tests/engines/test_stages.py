"""Unit tests for the dataflow stage kernels."""

import numpy as np
import pytest

from repro.dataflow.engine import Simulator
from repro.dataflow.process import Read, Write, Delay
from repro.engines.base import EngineWorkload
from repro.engines.stages import StageModels, port_contention_factor
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture
def small_wl(yield_curve, hazard_curve, mixed_options):
    return EngineWorkload.build(mixed_options, yield_curve, hazard_curve)


@pytest.fixture
def models():
    return StageModels.for_scenario(PaperScenario(n_rates=64), interleaved=True)


class TestPortContentionFactor:
    def test_below_port_count_no_penalty(self):
        assert port_contention_factor(1, 2) == 1.0
        assert port_contention_factor(2, 2) == 1.0

    def test_above_port_count_scales(self):
        assert port_contention_factor(6, 2) == pytest.approx(3.0)
        assert port_contention_factor(4, 2) == pytest.approx(2.0)

    def test_more_ports_help(self):
        assert port_contention_factor(6, 4) < port_contention_factor(6, 2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            port_contention_factor(0, 2)
        with pytest.raises(ValidationError):
            port_contention_factor(2, 0)


class TestTimegrid:
    def test_emits_points_and_params(self, small_wl, models):
        sim = Simulator()
        out_h = sim.stream("h", depth=1000)
        out_i = sim.stream("i", depth=1000)
        out_p = sim.stream("p", depth=100)
        sim.process("tg", models.timegrid(small_wl, [0, 2], out_h, out_i, out_p))
        sim.run()
        n_expected = len(small_wl.schedules[0]) + len(small_wl.schedules[2])
        assert out_h.stats.tokens == n_expected
        assert out_i.stats.tokens == n_expected
        assert out_p.stats.tokens == 2

    def test_point_values_match_schedule(self, small_wl, models):
        sim = Simulator()
        out_h = sim.stream("h", depth=1000)
        out_i = sim.stream("i", depth=1000)
        out_p = sim.stream("p", depth=10)
        sim.process("tg", models.timegrid(small_wl, [1], out_h, out_i, out_p))
        sim.run()
        sched = small_wl.schedules[1]
        got = out_h.drain()
        assert [t for t, _ in got] == pytest.approx(list(sched.times))
        assert [d for _, d in got] == pytest.approx(list(sched.accruals))


class TestHazardStage:
    def test_lambda_values(self, small_wl, models):
        sim = Simulator()
        inp = sim.stream("in", depth=1000)
        out = sim.stream("out", depth=1000)
        sched = small_wl.schedules[0]
        for t, dt in zip(sched.times, sched.accruals):
            inp.push(0.0, (float(t), float(dt)))
        sim.process(
            "hz", models.hazard_accumulate(small_wl, [0], inp, out)
        )
        sim.run()
        got = out.drain()
        for (lam, _), t in zip(got, sched.times):
            assert lam == pytest.approx(small_wl.hazard_curve.integrated(float(t)))

    def test_port_factor_slows_stage(self, small_wl, models):
        def run(factor):
            sim = Simulator()
            inp = sim.stream("in", depth=1000)
            out = sim.stream("out", depth=1000)
            sched = small_wl.schedules[0]
            for t, dt in zip(sched.times, sched.accruals):
                inp.push(0.0, (float(t), float(dt)))
            sim.process(
                "hz",
                models.hazard_accumulate(
                    small_wl, [0], inp, out, port_factor=factor
                ),
            )
            return sim.run().makespan_cycles

        assert run(3.0) > 2.0 * run(1.0)


class TestDefProb:
    def test_survival_chain(self, small_wl, models):
        sim = Simulator()
        inp = sim.stream("in", depth=1000)
        out = sim.stream("out", depth=1000)
        sched = small_wl.schedules[0]
        lams = [small_wl.hazard_curve.integrated(float(t)) for t in sched.times]
        for lam, dt in zip(lams, sched.accruals):
            inp.push(0.0, (lam, float(dt)))
        sim.process("dp", models.default_probability(small_wl, [0], inp, out))
        sim.run()
        got = out.drain()
        s_prev = 1.0
        for (s, ds, _), lam in zip(got, lams):
            assert s == pytest.approx(np.exp(-lam))
            assert ds == pytest.approx(s_prev - s)
            s_prev = s

    def test_ds_sums_to_default_prob(self, small_wl, models):
        """Telescoping: sum of dS equals 1 - S(maturity)."""
        sim = Simulator()
        inp = sim.stream("in", depth=1000)
        out = sim.stream("out", depth=1000)
        sched = small_wl.schedules[0]
        lams = [small_wl.hazard_curve.integrated(float(t)) for t in sched.times]
        for lam, dt in zip(lams, sched.accruals):
            inp.push(0.0, (lam, float(dt)))
        sim.process("dp", models.default_probability(small_wl, [0], inp, out))
        sim.run()
        got = out.drain()
        total_ds = sum(ds for _, ds, _ in got)
        assert total_ds == pytest.approx(1.0 - np.exp(-lams[-1]))


class TestInterpDiscount:
    def test_values(self, small_wl, models):
        sim = Simulator()
        a = sim.stream("a", depth=1000)
        b = sim.stream("b", depth=1000)
        c = sim.stream("c", depth=1000)
        sched = small_wl.schedules[0]
        for t in sched.times:
            a.push(0.0, float(t))
        sim.process("ip", models.interpolate(small_wl, [0], a, b))
        sim.process("dc", models.discount(small_wl, [0], b, c))
        sim.run()
        got = c.drain()
        for d, t in zip(got, sched.times):
            assert d == pytest.approx(small_wl.yield_curve.discount(float(t)))


class TestRoundRobin:
    def test_distribution_balanced_across_options(self, small_wl, models):
        """The cyclic counter runs across options, so replica loads differ
        by at most one token over the whole batch."""
        indices = [0, 1, 2, 3, 4]
        total = sum(len(small_wl.schedules[i]) for i in indices)
        k = 3
        sim = Simulator()
        inp = sim.stream("in", depth=total + 1)
        outs = tuple(sim.stream(f"o{j}", depth=total + 1) for j in range(k))
        for i in range(total):
            inp.push(0.0, i)
        sim.process("rr", models.rr_distribute(small_wl, indices, inp, outs))
        sim.run()
        loads = [o.stats.tokens for o in outs]
        assert sum(loads) == total
        assert max(loads) - min(loads) <= 1

    def test_collect_preserves_order(self, small_wl, models):
        indices = [0, 1]
        total = sum(len(small_wl.schedules[i]) for i in indices)
        k = 3
        sim = Simulator()
        ins = tuple(sim.stream(f"i{j}", depth=total + 1) for j in range(k))
        out = sim.stream("out", depth=total + 1)
        for i in range(total):
            ins[i % k].push(0.0, i)
        sim.process("rc", models.rr_collect(small_wl, indices, ins, out))
        sim.run()
        assert out.drain() == list(range(total))
