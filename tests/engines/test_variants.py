"""Unit tests for individual engine variants (beyond shared equivalence)."""

import numpy as np
import pytest

from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.engines.xilinx_baseline import baseline_flowchart
from repro.errors import ResourceError, ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario(n_rates=128, n_options=5)


class TestBaseline:
    def test_invocations_equal_options(self, sc):
        result = XilinxBaselineEngine(sc).run()
        assert result.invocations == sc.n_options

    def test_flowchart_is_sequential_chain(self):
        g = baseline_flowchart()
        assert g.is_acyclic()
        assert g.stage_depth() == len(g.nodes)
        assert all(e.per_option for e in g.edges)

    def test_invocation_overhead_charged_per_option(self, sc):
        with_oh = XilinxBaselineEngine(sc).run().kernel_cycles
        no_oh = XilinxBaselineEngine(
            sc.with_overrides(invocation_overhead_cycles=0.0)
        ).run().kernel_cycles
        assert with_oh - no_oh == pytest.approx(
            sc.invocation_overhead_cycles * sc.n_options
        )


class TestOptimisedDataflow:
    def test_one_simulation_per_option(self, sc):
        result = OptimisedDataflowEngine(sc).run()
        assert result.invocations == sc.n_options
        assert len(result.sim_results) == sc.n_options

    def test_faster_than_baseline_without_overhead(self, sc):
        """Even at zero invocation overhead the concurrent stages win."""
        free = sc.with_overrides(invocation_overhead_cycles=0.0)
        base = XilinxBaselineEngine(free).run().kernel_cycles
        opt = OptimisedDataflowEngine(free).run().kernel_cycles
        assert opt < base


class TestInterOption:
    def test_single_invocation(self, sc):
        result = InterOptionDataflowEngine(sc).run()
        assert result.invocations == 1
        assert len(result.sim_results) == 1

    def test_overhead_amortised(self, sc):
        """Inter-option pays the invocation overhead once, not per option."""
        per_opt = OptimisedDataflowEngine(sc).run().kernel_cycles
        batch = InterOptionDataflowEngine(sc).run().kernel_cycles
        saved = per_opt - batch
        assert saved > (sc.n_options - 1) * sc.invocation_overhead_cycles * 0.9

    def test_throughput_stable_in_batch_size(self):
        """Steady-state throughput should be nearly batch-size independent
        once overheads amortise."""
        r16 = InterOptionDataflowEngine(PaperScenario(n_options=16)).run()
        r48 = InterOptionDataflowEngine(PaperScenario(n_options=48)).run()
        assert r48.options_per_second == pytest.approx(
            r16.options_per_second, rel=0.15
        )


class TestVectorised:
    def test_replica_processes_exist(self, sc):
        result = VectorizedDataflowEngine(sc).run()
        names = result.sim_results[0].process_times.keys()
        replicas = [n for n in names if n.startswith("hazard_acc[")]
        assert len(replicas) == sc.replication_factor

    def test_more_ports_more_speed(self):
        """Quad-port table memory should beat dual-port at replication 6."""
        dual = VectorizedDataflowEngine(
            PaperScenario(n_options=12, uram_read_ports=2)
        ).run()
        quad = VectorizedDataflowEngine(
            PaperScenario(n_options=12, uram_read_ports=4)
        ).run()
        assert quad.options_per_second > dual.options_per_second * 1.3

    def test_replication_one_equals_interoption(self):
        sc1 = PaperScenario(n_options=8, replication_factor=1)
        vec = VectorizedDataflowEngine(sc1).run()
        inter = InterOptionDataflowEngine(sc1).run()
        assert vec.kernel_cycles == pytest.approx(inter.kernel_cycles, rel=0.02)
        assert np.array_equal(vec.spreads_bps, inter.spreads_bps)


class TestMultiEngine:
    def test_six_engines_rejected(self, sc):
        with pytest.raises(ResourceError):
            MultiEngineSystem(sc, n_engines=6)

    def test_bad_engine_count(self, sc):
        with pytest.raises(ValidationError):
            MultiEngineSystem(sc, n_engines=0)

    def test_engines_reported(self, sc):
        result = MultiEngineSystem(sc, n_engines=2).run()
        assert result.n_engines == 2
        assert result.invocations == 2  # one free-running invocation each

    def test_more_engines_than_options_degrades_gracefully(self):
        small = PaperScenario(n_rates=128, n_options=3)
        result = MultiEngineSystem(small, n_engines=5).run()
        assert result.invocations == 3  # only 3 non-empty chunks
        assert len(result.spreads_bps) == 3

    def test_power_helper(self, sc):
        m = MultiEngineSystem(sc, n_engines=5)
        assert m.power_watts() == pytest.approx(sc.fpga_power.watts(5))

    def test_resources_scale_with_engines(self, sc):
        r1 = MultiEngineSystem(sc, n_engines=1).run().resources
        r3 = MultiEngineSystem(sc, n_engines=3).run().resources
        assert r3.lut == 3 * r1.lut


class TestEngineResultShape:
    def test_summary_renders(self, sc):
        result = InterOptionDataflowEngine(sc).run()
        text = result.summary()
        assert "options/s" in text

    def test_pcie_included_in_seconds(self, sc):
        result = InterOptionDataflowEngine(sc).run()
        assert result.seconds > sc.clock.seconds(result.kernel_cycles)
        assert result.pcie_seconds > 0

    def test_custom_workload_accepted(self, sc, yield_curve, hazard_curve, mixed_options):
        result = InterOptionDataflowEngine(sc).run(
            options=mixed_options,
            yield_curve=yield_curve,
            hazard_curve=hazard_curve,
        )
        assert len(result.spreads_bps) == len(mixed_options)
