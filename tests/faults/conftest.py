"""Shared fixtures for the fault-injection tests: a small 2-card server."""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.risk.engine import make_book
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 12
N_STATES = 48


@pytest.fixture(scope="module")
def fault_scenario() -> PaperScenario:
    """Short rate tables so calibration and numerics stay fast."""
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def tape(fault_scenario):
    return make_market_tape(
        fault_scenario.yield_curve(),
        fault_scenario.hazard_curve(),
        N_STATES,
        seed=3,
    )


@pytest.fixture
def server(fault_scenario, tape) -> QuoteServer:
    """Function-scoped: faulted serves mutate per-run server state."""
    return QuoteServer(
        make_book("heterogeneous", N_POSITIONS, seed=5),
        tape,
        scenario=fault_scenario,
        n_cards=2,
        n_engines=2,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=256,
    )


@pytest.fixture(scope="module")
def stream():
    return make_request_stream(
        600,
        rate_hz=2000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        var_rows=6,
        seed=11,
    )
