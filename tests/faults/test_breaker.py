"""Circuit-breaker state machine: closed → open → half-open → closed."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults import BreakerBank, CircuitBreaker
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        br = CircuitBreaker()
        assert br.state == CLOSED
        assert br.allow(0.0)

    def test_trips_at_threshold(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        br.record_failure(0.0)
        br.record_failure(0.0)
        assert br.state == CLOSED
        br.record_failure(0.0)
        assert br.state == OPEN
        assert br.n_trips == 1
        assert not br.allow(0.5)

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
        br.record_failure(0.0)
        br.record_success(0.1)
        br.record_failure(0.2)
        assert br.state == CLOSED  # streak broken by the success

    def test_half_open_probe_after_timeout(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure(0.0)
        assert not br.allow(0.5)
        assert br.allow(1.1)  # the probe
        assert br.state == HALF_OPEN
        assert br.n_probes == 1

    def test_probe_success_closes(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.1)
        br.record_success(1.2)
        assert br.state == CLOSED
        assert br.allow(1.3)

    def test_probe_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.1)
        br.record_failure(1.2)
        assert br.state == OPEN
        assert br.n_trips == 2
        assert not br.allow(1.5)
        assert br.allow(2.3)  # next probe after another timeout

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout_s=0.0)


class TestBreakerBank:
    def test_per_card_isolation(self):
        bank = BreakerBank(3, failure_threshold=1, reset_timeout_s=1.0)
        bank[1].record_failure(0.0)
        assert bank.allowed_cards((0, 1, 2), 0.5) == (0, 2)
        assert bank.allow(0, 0.5)
        assert not bank.allow(1, 0.5)

    def test_aggregate_counters(self):
        bank = BreakerBank(2, failure_threshold=1, reset_timeout_s=1.0)
        bank[0].record_failure(0.0)
        bank[1].record_failure(0.0)
        assert bank.n_trips == 2
        assert bank.allowed_cards((0, 1), 1.5) == (0, 1)  # both probe
        assert bank.n_probes == 2
