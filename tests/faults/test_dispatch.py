"""Failure-aware serving: conservation, determinism, retries, hedging.

The stream spans roughly 0.3 s at 2000 req/s; fault instants below sit
inside that envelope.  Bare crashes on microsecond micro-batches mostly
steer dispatch away from the dead card, so the tests that need actual
mid-flight failures overlap a heavy slowdown with the crash on the same
card — the stretched busy windows then straddle the crash instant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, HedgePolicy, RetryPolicy
from repro.serving.request import ShedReason

#: Crash under a straggler: service windows on card 1 stretch 80x from
#: 5 ms so the crash at 30 ms lands mid-window — retries guaranteed.
OVERLAP = "slow:card=1,at=0.005,for=0.06,factor=80;crash:card=1,at=0.03,repair=0.03"


def conserve(result) -> bool:
    return result.n_offered == result.n_completed + result.n_shed + result.n_failed


class TestZeroFaultIdentity:
    def test_none_and_empty_plan_identical_to_legacy(self, server, stream):
        legacy = server.serve(stream)
        assert server.last_fault_report is None
        empty = server.serve(stream, faults=FaultPlan())
        assert server.last_fault_report is None
        assert empty == legacy
        assert empty.n_failed == 0 and empty.fails == ()


class TestConservation:
    @pytest.mark.parametrize(
        "spec",
        [
            "crash:card=1,at=0.05,repair=0.05",
            "crash:card=1,at=0.05",  # permanent
            OVERLAP,
            "slow:card=0,at=0.02,for=0.1,factor=6",
            "linkout:at=0.05,for=0.02",
            "correlated:cards=0+1,at=0.1,repair=0.05",
        ],
    )
    def test_every_request_accounted(self, server, stream, spec):
        res = server.serve(stream, faults=FaultPlan.from_spec(spec, seed=7))
        assert conserve(res)
        assert res.n_completed > 0

    def test_all_cards_permanently_dead_fails_tail(self, server, stream):
        res = server.serve(
            stream, faults=FaultPlan.from_spec("correlated:cards=0+1,at=0.05")
        )
        assert conserve(res)
        assert res.n_failed > 0
        kinds = {f.reason for f in res.fails}
        assert kinds <= {ShedReason.CARD_FAILURE, ShedReason.BREAKER_OPEN}


class TestDeterminism:
    def test_same_seed_same_report(self, server, stream):
        plan = FaultPlan.from_spec(OVERLAP, seed=13)
        first = server.serve(stream, faults=plan)
        fr1 = server.last_fault_report
        second = server.serve(stream, faults=plan)
        fr2 = server.last_fault_report
        assert first == second
        assert fr1.to_dict() == fr2.to_dict()

    def test_values_bit_identical_to_fault_free(self, server, stream):
        """Retries re-dispatch *timing*, never the numerics: every
        completed response carries exactly the fault-free value."""
        clean = server.serve(stream)
        by_id = {r.request_id: r.value for r in clean.responses}
        faulted = server.serve(
            stream, faults=FaultPlan.from_spec(OVERLAP, seed=7)
        )
        for resp in faulted.responses:
            np.testing.assert_array_equal(resp.value, by_id[resp.request_id])


class TestRetryAndBreaker:
    def test_overlap_forces_retries_and_trips(self, server, stream):
        server.serve(stream, faults=FaultPlan.from_spec(OVERLAP, seed=7))
        fr = server.last_fault_report
        assert fr.counters.n_failed_dispatches > 0
        assert fr.counters.n_retries > 0
        assert fr.counters.n_breaker_trips >= 1
        assert fr.counters.wasted_work_s > 0

    def test_retry_budget_bounds_attempts(self, server, stream):
        """With zero retries allowed, every failed dispatch fails its
        requests outright instead of re-dispatching."""
        retry = RetryPolicy(max_attempts=1, seed=7)
        res = server.serve(
            stream,
            faults=FaultPlan.from_spec(OVERLAP, seed=7),
            retry=retry,
        )
        fr = server.last_fault_report
        assert fr.counters.n_retries == 0
        assert conserve(res)


class TestHedging:
    def test_straggler_hedge_wins(self, server, stream):
        plan = FaultPlan.from_spec(
            "slow:card=1,at=0.01,for=0.25,factor=6", seed=7
        )
        hedged = server.serve(
            stream, faults=plan, hedge=HedgePolicy(enabled=True)
        )
        fr = server.last_fault_report
        assert fr.counters.n_hedges > 0
        assert fr.counters.n_hedge_wins > 0
        plain = server.serve(stream, faults=plan)
        fr_plain = server.last_fault_report
        assert fr_plain.counters.n_hedges == 0
        assert conserve(hedged)
        # Hedging pays duplicate work to cut the straggler tail.
        assert fr.counters.duplicate_work_ratio > 0
        assert hedged.latency.p99_s <= plain.latency.p99_s

    def test_hedge_disabled_by_default(self, server, stream):
        server.serve(
            stream, faults=FaultPlan.from_spec("slow:card=1,at=0.01,for=0.25,factor=6")
        )
        assert server.last_fault_report.counters.n_hedges == 0


class TestDegradationLadder:
    def test_var_shed_before_quotes_under_capacity_loss(
        self, fault_scenario, tape
    ):
        """With a card down and the queue backing up, the ladder sheds
        low-tier work (var, then reval) while quotes keep flowing."""
        from repro.cluster.batching import BatchQueue
        from repro.risk.engine import make_book
        from repro.serving import QuoteServer, make_request_stream

        srv = QuoteServer(
            make_book("heterogeneous", 12, seed=5),
            tape,
            scenario=fault_scenario,
            n_cards=2,
            n_engines=2,
            queue=BatchQueue(max_batch=8, linger_s=5e-4),
            queue_depth=24,
        )
        reqs = make_request_stream(
            600,
            rate_hz=12_000.0,
            n_states=48,
            n_positions=12,
            var_rows=6,
            seed=11,
        )
        res = srv.serve(
            reqs,
            faults=FaultPlan.from_spec(
                "slow:card=0,at=0.0,for=0.2,factor=10;crash:card=1,at=0.001,repair=0.2",
                seed=7,
            ),
        )
        degraded = [
            s for s in res.sheds if s.reason is ShedReason.DEGRADED
        ]
        assert degraded, "expected the degradation ladder to shed"
        assert all(s.request.kind in ("var", "reval") for s in degraded)
        assert conserve(res)


class TestReportPlumbing:
    def test_fault_report_attached_and_rendered(self, server, stream):
        res = server.serve(stream, faults=FaultPlan.from_spec(OVERLAP, seed=7))
        fr = server.last_fault_report
        assert fr is not None
        assert fr.spec == FaultPlan.from_spec(OVERLAP).spec()
        assert [p.name for p in fr.phases] == ["before", "during", "after"]
        assert sum(p.n_completed for p in fr.phases) == res.n_completed
        text = res.render()
        assert "failed" in text or res.n_failed == 0

    def test_shed_reason_counts_typed(self, server, stream):
        res = server.serve(
            stream,
            faults=FaultPlan.from_spec("correlated:cards=0+1,at=0.05"),
        )
        counts = res.shed_reason_counts()
        assert sum(counts.values()) == res.n_shed + res.n_failed
        assert set(counts) <= {r.value for r in ShedReason}
