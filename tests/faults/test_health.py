"""ClusterHealth: the pure availability oracle over a fault plan."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.faults import ClusterHealth, FaultPlan
from repro.sim import Resource, Simulation


def health(spec: str, n_cards: int = 4) -> ClusterHealth:
    return ClusterHealth(FaultPlan.from_spec(spec), n_cards)


class TestAvailability:
    def test_down_window_half_open(self):
        h = health("crash:card=1,at=0.1,repair=0.1")
        assert not h.card_down(1, 0.099)
        assert h.card_down(1, 0.1)
        assert h.card_down(1, 0.19)
        assert not h.card_down(1, 0.2)

    def test_permanent_crash_never_recovers(self):
        h = health("crash:card=0,at=0.5")
        assert h.card_down(0, 1e9)
        assert math.isinf(h.card_up_at(0, 0.5))

    def test_healthy_cards(self):
        h = health("crash:card=1,at=0.1,repair=0.1;crash:card=3,at=0.1,repair=0.1")
        assert h.healthy_cards(0.05) == (0, 1, 2, 3)
        assert h.healthy_cards(0.15) == (0, 2)
        assert h.capacity_reduced(0.15)
        assert not h.capacity_reduced(0.25)

    def test_plan_validated_against_cluster(self):
        with pytest.raises(ValidationError):
            health("crash:card=5,at=0.1", n_cards=4)


class TestCrashDuring:
    def test_mid_window_crash_detected(self):
        h = health("crash:card=2,at=0.5,repair=0.1")
        assert h.crash_during(2, 0.4, 0.6) == 0.5
        assert h.crash_during(2, 0.6, 0.7) is None  # window after crash
        assert h.crash_during(2, 0.2, 0.3) is None  # window before crash
        # Crash exactly at the window start is the reservation layer's
        # concern (start pushed past downtime), not a mid-flight death.
        assert h.crash_during(2, 0.5, 0.6) is None


class TestServiceFactor:
    def test_no_slowdown_is_unity(self):
        h = health("crash:card=0,at=1.0")
        assert h.service_factor(1, 0.0, 1.0) == 1.0

    def test_fully_inside_window(self):
        h = health("slow:card=1,at=0.0,for=10.0,factor=3")
        assert h.service_factor(1, 1.0, 2.0) == pytest.approx(3.0)

    def test_fully_outside_window(self):
        h = health("slow:card=1,at=5.0,for=1.0,factor=3")
        assert h.service_factor(1, 0.0, 1.0) == 1.0

    def test_partial_overlap_blends(self):
        # 1s nominal starting 0.5 before a factor-3 window that absorbs
        # the rest: 0.5 nominal + 0.5 * 3 stretched = 2.0 elapsed.
        h = health("slow:card=0,at=0.5,for=10.0,factor=3")
        assert h.service_factor(0, 0.0, 1.0) == pytest.approx(2.0)

    def test_window_exhausted_mid_service(self):
        # Factor-2 window [0, 1) absorbs 0.5 nominal in 1.0 elapsed;
        # remaining 0.5 nominal runs at speed → elapsed 1.5, factor 1.5.
        h = health("slow:card=0,at=0.0,for=1.0,factor=2")
        assert h.service_factor(0, 0.0, 1.0) == pytest.approx(1.5)

    def test_zero_service_is_unity(self):
        h = health("slow:card=0,at=0.0,for=1.0,factor=2")
        assert h.service_factor(0, 0.0, 0.0) == 1.0


class TestLink:
    def test_link_factor_window(self):
        h = health("link:at=0.1,for=0.1,factor=2.5")
        assert h.link_factor(0.05) == 1.0
        assert h.link_factor(0.15) == 2.5
        assert h.link_factor(0.25) == 1.0

    def test_link_outage_blocks(self):
        h = health("linkout:at=0.1,for=0.05")
        assert h.link_blocked_until(0.12) == pytest.approx(0.15)
        assert h.link_blocked_until(0.2) == 0.2


class TestEnvelope:
    def test_fault_envelope(self):
        h = health("crash:card=0,at=0.3,repair=0.1;slow:card=1,at=0.1,for=0.05,factor=2")
        assert h.first_fault_s() == 0.1
        assert h.last_fault_end_s() == pytest.approx(0.4)

    def test_empty_plan_envelope(self):
        h = ClusterHealth(FaultPlan(), 2)
        assert math.isinf(h.first_fault_s())
        assert h.last_fault_end_s() == 0.0


class TestApplyDowntime:
    def test_reservations_pushed_past_outage(self):
        h = health("crash:card=0,at=1.0,repair=1.0", n_cards=1)
        sim = Simulation()
        card = Resource("card0", sim=sim)
        h.apply_downtime([card])
        # A start landing inside the outage is pushed to the repair
        # instant; windows *straddling* the crash are the dispatcher's
        # concern (crash_during), not the reservation layer's.
        assert card.peek_start(1.2) == pytest.approx(2.0)
        window = card.reserve(1.5, 0.5)
        assert window.start_s == pytest.approx(2.0)
        assert card.peek_start(2.2) == pytest.approx(2.5)  # busy_until wins
