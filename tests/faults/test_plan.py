"""FaultPlan construction, validation and spec-grammar round-trips."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.faults import (
    CardCrash,
    CardSlowdown,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    correlated_crash,
)


class TestEvents:
    def test_permanent_crash_down_forever(self):
        crash = CardCrash(card=1, at_s=0.5)
        assert math.isinf(crash.down_until_s)

    def test_repaired_crash_window(self):
        crash = CardCrash(card=0, at_s=0.5, repair_s=0.25)
        assert crash.down_until_s == 0.75

    def test_crash_validation(self):
        with pytest.raises(ValidationError):
            CardCrash(card=-1, at_s=0.0)
        with pytest.raises(ValidationError):
            CardCrash(card=0, at_s=-1.0)
        with pytest.raises(ValidationError):
            CardCrash(card=0, at_s=0.0, repair_s=0.0)

    def test_slowdown_validation(self):
        with pytest.raises(ValidationError):
            CardSlowdown(card=0, at_s=0.0, duration_s=0.0, factor=2.0)
        with pytest.raises(ValidationError):
            CardSlowdown(card=0, at_s=0.0, duration_s=1.0, factor=1.0)
        with pytest.raises(ValidationError):
            CardSlowdown(card=0, at_s=0.0, duration_s=1.0, factor=math.inf)

    def test_link_validation(self):
        with pytest.raises(ValidationError):
            LinkDegradation(at_s=0.0, duration_s=1.0, factor=0.5)
        with pytest.raises(ValidationError):
            LinkOutage(at_s=0.0, duration_s=-1.0)

    def test_correlated_crash_builds_per_card_events(self):
        events = correlated_crash((0, 2), 0.1, 0.05)
        assert [e.card for e in events] == [0, 2]
        assert all(e.at_s == 0.1 and e.repair_s == 0.05 for e in events)
        with pytest.raises(ValidationError):
            correlated_crash((), 0.1)


class TestPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(
                CardCrash(card=0, at_s=0.5),
                CardSlowdown(card=1, at_s=0.1, duration_s=0.2, factor=3.0),
            )
        )
        assert [e.at_s for e in plan.events] == [0.1, 0.5]

    def test_input_order_irrelevant_for_equality(self):
        a = CardCrash(card=0, at_s=0.5)
        b = LinkOutage(at_s=0.1, duration_s=0.2)
        assert FaultPlan(events=(a, b)) == FaultPlan(events=(b, a))

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert FaultPlan.from_spec("").is_empty
        assert FaultPlan.from_spec("  ;  ").is_empty

    def test_typed_views(self):
        plan = FaultPlan.from_spec(
            "crash:card=0,at=0.1;slow:card=1,at=0.2,for=0.1,factor=2;"
            "link:at=0.3,for=0.1,factor=3;linkout:at=0.4,for=0.05"
        )
        assert len(plan.crashes) == 1
        assert len(plan.slowdowns) == 1
        assert len(plan.link_degradations) == 1
        assert len(plan.link_outages) == 1

    def test_validate_cards(self):
        plan = FaultPlan.from_spec("crash:card=3,at=0.1")
        assert plan.max_card() == 3
        plan.validate_cards(4)
        with pytest.raises(ValidationError):
            plan.validate_cards(3)

    def test_rejects_foreign_event_type(self):
        with pytest.raises(ValidationError):
            FaultPlan(events=("not-an-event",))


class TestSpecGrammar:
    @pytest.mark.parametrize(
        "spec",
        [
            "crash:card=1,at=0.15",
            "crash:card=1,at=0.15,repair=0.1",
            "slow:card=2,at=0.1,for=0.2,factor=4",
            "link:at=0.1,for=0.05,factor=2.5",
            "linkout:at=0.1,for=0.02",
            "crash:card=0,at=0.1;slow:card=1,at=0.2,for=0.1,factor=2",
        ],
    )
    def test_round_trip(self, spec):
        plan = FaultPlan.from_spec(spec)
        assert FaultPlan.from_spec(plan.spec()) == plan

    def test_correlated_expands_to_crashes(self):
        plan = FaultPlan.from_spec("correlated:cards=0+1+3,at=0.2,repair=0.1")
        assert [c.card for c in plan.crashes] == [0, 1, 3]
        assert all(c.at_s == 0.2 for c in plan.crashes)
        # The rendered spec is per-card crash events; still parses back.
        assert FaultPlan.from_spec(plan.spec()) == plan

    def test_seed_carried(self):
        assert FaultPlan.from_spec("crash:card=0,at=0.1", seed=9).seed == 9

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",
            "explode:card=1,at=0",
            "crash:card=1",  # missing at
            "crash:at=0.1",  # missing card
            "slow:card=1,at=0.1,for=0.2",  # missing factor
            "crash:card=x,at=0.1",
            "crash:card=1,at=0.1,bogus=3",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            FaultPlan.from_spec(bad)
