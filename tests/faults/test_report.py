"""FaultReport assembly: phases, recovery time, counter roll-up."""

from __future__ import annotations

import pytest

from repro.faults import (
    ClusterHealth,
    FaultCounters,
    FaultPlan,
    FaultReport,
    build_fault_report,
)


def report(
    spec: str,
    completions,
    *,
    span_s: float = 1.0,
    n_cards: int = 2,
    window_s: float | None = None,
) -> FaultReport:
    plan = FaultPlan.from_spec(spec, seed=5)
    health = ClusterHealth(plan, n_cards)
    return build_fault_report(
        plan,
        health,
        completions,
        FaultCounters(),
        span_s=span_s,
        recovery_window_s=window_s,
    )


def steady(rate_hz: float, span_s: float, latency_s: float = 1e-3):
    n = int(rate_hz * span_s)
    return [(k / rate_hz, latency_s) for k in range(1, n + 1)]


class TestPhases:
    def test_three_phases_cover_run(self):
        fr = report(
            "crash:card=0,at=0.4,repair=0.2", steady(100.0, 1.0), span_s=1.0
        )
        names = [p.name for p in fr.phases]
        assert names == ["before", "during", "after"]
        before, during, after = fr.phases
        assert before.start_s == 0.0 and before.end_s == pytest.approx(0.4)
        assert during.end_s == pytest.approx(0.6)
        assert after.end_s == pytest.approx(1.0)
        assert sum(p.n_completed for p in fr.phases) == 100

    def test_permanent_fault_envelope_clamped_to_span(self):
        fr = report("crash:card=0,at=0.4", steady(100.0, 1.0), span_s=1.0)
        during = fr.phases[1]
        assert during.end_s == pytest.approx(1.0)
        assert fr.phases[2].n_completed == 0

    def test_steady_goodput_recovers_immediately(self):
        fr = report(
            "crash:card=0,at=0.4,repair=0.2",
            steady(100.0, 1.0),
            span_s=1.0,
            window_s=0.1,
        )
        assert fr.recovery_time_s == pytest.approx(0.0)

    def test_dip_then_recovery(self):
        # Completions stop during the outage and resume 0.2s after the
        # repair: recovery is the gap from repair to the sustained rate.
        comps = [(t, 1e-3) for t, _ in steady(100.0, 0.4)]
        comps += [(0.8 + k / 100.0, 1e-3) for k in range(1, 21)]
        fr = report(
            "crash:card=0,at=0.4,repair=0.2", comps, span_s=1.0, window_s=0.1
        )
        assert fr.recovery_time_s is not None
        assert fr.recovery_time_s > 0.0
        assert fr.recovery_time_s == pytest.approx(0.21, abs=0.02)

    def test_never_recovers(self):
        comps = [(t, 1e-3) for t, _ in steady(100.0, 0.4)]
        fr = report(
            "crash:card=0,at=0.4,repair=0.2", comps, span_s=1.0, window_s=0.1
        )
        assert fr.recovery_time_s is None


class TestSerialisation:
    def test_to_dict_shape(self):
        fr = report(
            "crash:card=0,at=0.4,repair=0.2", steady(50.0, 1.0), span_s=1.0
        )
        d = fr.to_dict()
        assert d["spec"] == "crash:card=0,at=0.4,repair=0.2"
        assert d["seed"] == 5
        assert [p["name"] for p in d["phases"]] == ["before", "during", "after"]
        assert "duplicate_work_ratio" in d

    def test_infinite_phase_end_serialises_as_none(self):
        fr = report("crash:card=0,at=0.4", steady(50.0, 1.0), span_s=1.0)
        ends = [p["end_s"] for p in fr.to_dict()["phases"]]
        assert all(e is None or e <= 1.0 for e in ends)

    def test_counters_excluded_from_equality(self):
        a = report("crash:card=0,at=0.4,repair=0.2", steady(50.0, 1.0))
        b = report("crash:card=0,at=0.4,repair=0.2", steady(50.0, 1.0))
        b.counters.n_retries = 99
        assert a == b


class TestCounters:
    def test_duplicate_work_ratio(self):
        c = FaultCounters()
        assert c.duplicate_work_ratio == 0.0
        c.useful_work_s = 3.0
        c.wasted_work_s = 1.0
        assert c.duplicate_work_ratio == pytest.approx(0.25)
