"""Retry backoff determinism and hedging policy arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults import HedgePolicy, RetryPolicy


class TestRetryPolicy:
    def test_backoff_bound_grows_and_caps(self):
        p = RetryPolicy(base_s=0.002, multiplier=2.0, cap_s=0.005)
        assert p.backoff_bound_s(1) == pytest.approx(0.002)
        assert p.backoff_bound_s(2) == pytest.approx(0.004)
        assert p.backoff_bound_s(3) == pytest.approx(0.005)  # capped
        assert p.backoff_bound_s(10) == pytest.approx(0.005)

    def test_backoff_draw_within_bound(self):
        p = RetryPolicy(seed=3)
        for attempt in (1, 2, 3):
            delay = p.backoff_s(attempt)
            assert 0.0 <= delay <= p.backoff_bound_s(attempt)
        assert p.n_draws == 3

    def test_same_seed_same_stream(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=11)
        assert [a.backoff_s(k) for k in (1, 2, 3)] == [
            b.backoff_s(k) for k in (1, 2, 3)
        ]

    def test_different_seed_different_stream(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=12)
        assert [a.backoff_s(1), a.backoff_s(2)] != [
            b.backoff_s(1), b.backoff_s(2)
        ]

    def test_exhaustion(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(2)
        assert p.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(base_s=0.01, cap_s=0.005)
        with pytest.raises(ValidationError):
            RetryPolicy().backoff_bound_s(0)


class TestHedgePolicy:
    def test_disabled_never_hedges(self):
        p = HedgePolicy(enabled=False)
        assert not p.should_hedge(100.0, 1.0, 0.0)

    def test_threshold_on_spans_from_formation(self):
        p = HedgePolicy(enabled=True, threshold=2.0)
        # Spans from formation at t=10: shard 3.0, median 1.0 → ratio 3.
        assert p.should_hedge(13.0, 11.0, 10.0)
        # Ratio exactly at the threshold does not hedge.
        assert not p.should_hedge(12.0, 11.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            HedgePolicy(threshold=1.0)
        with pytest.raises(ValidationError):
            HedgePolicy(max_hedges_per_batch=-1)
