"""Test subpackage (unique import names for duplicate basenames)."""
