"""Unit tests for clock domains."""

import pytest

from repro.fpga.clock import ClockDomain
from repro.errors import ValidationError


class TestClockDomain:
    def test_seconds(self):
        clk = ClockDomain(300e6)
        assert clk.seconds(300e6) == pytest.approx(1.0)
        assert clk.seconds(3e6) == pytest.approx(0.01)

    def test_cycles(self):
        clk = ClockDomain(100e6)
        assert clk.cycles(1.0) == pytest.approx(1e8)

    def test_roundtrip(self):
        clk = ClockDomain(123.4e6)
        assert clk.seconds(clk.cycles(0.37)) == pytest.approx(0.37)

    def test_period(self):
        assert ClockDomain(300e6).period_ns == pytest.approx(10.0 / 3.0)

    def test_rate(self):
        clk = ClockDomain(300e6)
        # 1024 options in 11.1M cycles ~ 27.7k options/s.
        assert clk.rate_per_second(1024, 11.1e6) == pytest.approx(27_675, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ClockDomain(0.0)
        clk = ClockDomain(1e6)
        with pytest.raises(ValidationError):
            clk.seconds(-1.0)
        with pytest.raises(ValidationError):
            clk.cycles(-1.0)
        with pytest.raises(ValidationError):
            clk.rate_per_second(1, 0.0)
