"""Unit tests for device descriptors."""

import pytest

from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.hls.resources import ResourceUsage
from repro.errors import ValidationError


class TestAlveoU280:
    def test_paper_quoted_resources(self):
        """Section II.B: 1.3M LUTs, 4.5MB BRAM, 30MB URAM, 9024 DSP."""
        r = ALVEO_U280.resources
        assert r.lut == pytest.approx(1.3e6, rel=0.01)
        assert r.dsp == 9024
        assert ALVEO_U280.bram_bytes == pytest.approx(4.5 * 2**20, rel=0.05)
        assert ALVEO_U280.uram_bytes >= 30 * 2**20

    def test_memory_sizes(self):
        assert ALVEO_U280.hbm_bytes == 8 * 2**30
        assert ALVEO_U280.dram_bytes == 32 * 2**30

    def test_three_slrs(self):
        assert ALVEO_U280.slr_count == 3

    def test_describe(self):
        text = ALVEO_U280.describe()
        assert "U280" in text
        assert "HBM 8 GiB" in text


class TestValidation:
    def _make(self, **kw):
        base = dict(
            name="x",
            resources=ResourceUsage(lut=100),
            slr_count=1,
            hbm_bytes=0,
            dram_bytes=0,
            default_clock_hz=1e8,
        )
        base.update(kw)
        return FPGADevice(**base)

    def test_bad_slr(self):
        with pytest.raises(ValidationError):
            self._make(slr_count=0)

    def test_bad_clock(self):
        with pytest.raises(ValidationError):
            self._make(default_clock_hz=0.0)

    def test_bad_ceiling(self):
        with pytest.raises(ValidationError):
            self._make(routable_ceiling=1.5)
