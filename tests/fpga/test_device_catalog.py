"""Unit tests for the device catalog and cross-card portability."""

import pytest

from repro.engines.builder import engine_resources
from repro.fpga.device import ALVEO_U50, ALVEO_U250, ALVEO_U280, DEVICE_CATALOG
from repro.fpga.floorplan import max_engines
from repro.workloads.scenarios import PaperScenario


class TestCatalog:
    def test_three_cards(self):
        assert len(DEVICE_CATALOG) == 3
        names = {d.name for d in DEVICE_CATALOG}
        assert names == {
            "Xilinx Alveo U50",
            "Xilinx Alveo U250",
            "Xilinx Alveo U280",
        }

    def test_u50_is_smallest(self):
        assert ALVEO_U50.resources.lut < ALVEO_U280.resources.lut
        assert ALVEO_U50.resources.dsp < ALVEO_U280.resources.dsp

    def test_u250_is_largest_fabric(self):
        assert ALVEO_U250.resources.lut > ALVEO_U280.resources.lut

    def test_memory_configurations(self):
        assert ALVEO_U50.hbm_bytes > 0 and ALVEO_U50.dram_bytes == 0
        assert ALVEO_U250.hbm_bytes == 0 and ALVEO_U250.dram_bytes > 0
        assert ALVEO_U280.hbm_bytes > 0 and ALVEO_U280.dram_bytes > 0

    def test_rate_tables_fit_uram_everywhere(self):
        sc = PaperScenario()
        table_bytes = sc.n_rates * 16 * 2  # two tables
        for device in DEVICE_CATALOG:
            assert device.uram_bytes > 10 * table_bytes


class TestPortability:
    @pytest.fixture(scope="class")
    def engine(self):
        return engine_resources(PaperScenario(), replication=6)

    def test_engines_per_card(self, engine):
        fits = {d.name: max_engines(d, engine) for d in DEVICE_CATALOG}
        assert fits["Xilinx Alveo U280"] == 5  # the paper's figure
        assert fits["Xilinx Alveo U50"] < 5  # smaller card, fewer engines
        assert fits["Xilinx Alveo U250"] > 5  # bigger fabric, more engines

    def test_capacity_ordering_follows_fabric(self, engine):
        fits = [max_engines(d, engine) for d in (ALVEO_U50, ALVEO_U280, ALVEO_U250)]
        assert fits == sorted(fits)
