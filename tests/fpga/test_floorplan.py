"""Unit tests for floorplanning / engine-count fitting."""

import pytest

from repro.engines.builder import engine_resources
from repro.fpga.device import ALVEO_U280
from repro.fpga.floorplan import Floorplan, max_engines, require_fit_or_explain
from repro.hls.resources import ResourceUsage
from repro.workloads.scenarios import PaperScenario
from repro.errors import ResourceError, ValidationError


class TestPaperFit:
    def test_five_vectorised_engines_fit(self):
        """Section IV: 'being able to fit five onto the Alveo U280'."""
        res = engine_resources(PaperScenario(), replication=6)
        assert max_engines(ALVEO_U280, res) == 5

    def test_sixth_engine_rejected_with_explanation(self):
        res = engine_resources(PaperScenario(), replication=6)
        with pytest.raises(ResourceError, match="at most 5"):
            require_fit_or_explain(ALVEO_U280, res, 6)

    def test_five_engine_floorplan_valid(self):
        res = engine_resources(PaperScenario(), replication=6)
        fp = Floorplan(device=ALVEO_U280, engine_resources=res, n_engines=5)
        assert fp.headroom_engines() == 0
        assert max(fp.utilisation().values()) <= ALVEO_U280.routable_ceiling

    def test_slr_round_robin(self):
        res = engine_resources(PaperScenario(), replication=6)
        fp = Floorplan(device=ALVEO_U280, engine_resources=res, n_engines=5)
        assert fp.slr_assignment == [0, 1, 2, 0, 1]


class TestGenericFitting:
    def test_max_engines_simple(self):
        device = ALVEO_U280
        tiny = ResourceUsage(lut=1_000)
        # (0.9 * 1.304M - shell 120k) / 1k engines.
        assert max_engines(device, tiny) > 500

    def test_shell_reserved(self):
        res = ResourceUsage(lut=500_000)
        with_shell = max_engines(ALVEO_U280, res)
        without_shell = max_engines(ALVEO_U280, res, shell_resources=ResourceUsage())
        assert without_shell >= with_shell

    def test_oversized_engine_fits_zero(self):
        huge = ResourceUsage(lut=2_000_000)
        assert max_engines(ALVEO_U280, huge) == 0

    def test_describe(self):
        res = engine_resources(PaperScenario(), replication=6)
        text = Floorplan(
            device=ALVEO_U280, engine_resources=res, n_engines=2
        ).describe()
        assert "2 engine(s)" in text
        assert "headroom" in text

    def test_bad_engine_count(self):
        res = ResourceUsage(lut=1)
        with pytest.raises(ValidationError):
            Floorplan(device=ALVEO_U280, engine_resources=res, n_engines=0)
