"""Unit tests for the HBM access model."""

import pytest

from repro.fpga.hbm import HBMModel
from repro.errors import ValidationError


class TestBursts:
    def test_512bit_packing_eight_doubles_per_beat(self):
        m = HBMModel(access_latency_cycles=0.0, bus_efficiency=1.0)
        assert m.bytes_per_beat == 64
        assert m.doubles_burst_cycles(8) == pytest.approx(1.0)
        assert m.doubles_burst_cycles(1024) == pytest.approx(128.0)

    def test_latency_added_once(self):
        m = HBMModel(access_latency_cycles=100.0, bus_efficiency=1.0)
        assert m.burst_cycles(64) == pytest.approx(101.0)

    def test_zero_bytes_free(self):
        assert HBMModel().burst_cycles(0) == 0.0

    def test_partial_beat_rounds_up(self):
        m = HBMModel(access_latency_cycles=0.0, bus_efficiency=1.0)
        assert m.burst_cycles(65) == pytest.approx(2.0)

    def test_efficiency_derates(self):
        eff = HBMModel(access_latency_cycles=0.0, bus_efficiency=0.5)
        ideal = HBMModel(access_latency_cycles=0.0, bus_efficiency=1.0)
        assert eff.burst_cycles(640) == pytest.approx(2 * ideal.burst_cycles(640))

    def test_packed_vs_unpacked_is_8x(self):
        """The best-practice the paper applies: 512-bit packing moves 8
        doubles per beat instead of 1."""
        m = HBMModel(access_latency_cycles=0.0, bus_efficiency=1.0)
        n = 4096
        assert m.unpacked_burst_cycles(n) / m.doubles_burst_cycles(n) == pytest.approx(
            8.0
        )

    def test_aggregate_bandwidth(self):
        m = HBMModel(channels=32, peak_bytes_per_sec_per_channel=14.4e9,
                     bus_efficiency=0.85)
        # ~460 GB/s peak derated by efficiency.
        assert m.aggregate_bandwidth_bytes_per_sec() == pytest.approx(
            32 * 14.4e9 * 0.85
        )


class TestValidation:
    def test_bad_efficiency(self):
        with pytest.raises(ValidationError):
            HBMModel(bus_efficiency=0.0)
        with pytest.raises(ValidationError):
            HBMModel(bus_efficiency=1.5)

    def test_bad_width(self):
        with pytest.raises(ValidationError):
            HBMModel(width_bits=100)

    def test_negative_bytes(self):
        with pytest.raises(ValidationError):
            HBMModel().burst_cycles(-1)
