"""Unit tests for the DMA co-simulation."""

import pytest

from repro.fpga.interconnect import DMATrafficModel, cosim_dma_traffic
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="module")
def sc():
    return PaperScenario(n_rates=64, n_options=8)


class TestCosim:
    def test_single_engine_no_contention(self, sc):
        report = cosim_dma_traffic(
            sc, 1, compute_cycles_per_option=10_000.0, options_per_engine=20
        )
        assert report.slowdown == pytest.approx(1.0, abs=0.01)

    def test_light_load_five_engines(self, sc):
        """At the paper's operating point (one descriptor per ~20k cycles)
        the shared arbiter adds only a small stretch."""
        report = cosim_dma_traffic(
            sc, 5, compute_cycles_per_option=20_480.0, options_per_engine=20
        )
        assert report.slowdown < 1.05
        assert report.arbiter_utilisation < 0.2

    def test_saturation_when_cadence_below_service(self, sc):
        """If engines issued descriptors faster than the arbiter can serve
        n of them, traffic becomes the bottleneck."""
        report = cosim_dma_traffic(
            sc,
            4,
            compute_cycles_per_option=100.0,  # cadence << 4 x 140 service
            options_per_engine=50,
            model=DMATrafficModel(service_cycles=140.0),
        )
        assert report.slowdown > 2.0
        assert report.arbiter_utilisation > 0.9

    def test_slowdown_monotone_in_engines(self, sc):
        reports = [
            cosim_dma_traffic(
                sc, n, compute_cycles_per_option=1_000.0, options_per_engine=30
            )
            for n in (1, 2, 5)
        ]
        slowdowns = [r.slowdown for r in reports]
        assert slowdowns == sorted(slowdowns)

    def test_busy_cycles_match_descriptor_count(self, sc):
        model = DMATrafficModel(service_cycles=100.0)
        report = cosim_dma_traffic(
            sc,
            3,
            compute_cycles_per_option=5_000.0,
            options_per_engine=10,
            model=model,
        )
        assert report.arbiter_busy_cycles == pytest.approx(3 * 10 * 100.0)

    def test_validation(self, sc):
        with pytest.raises(ValidationError):
            cosim_dma_traffic(sc, 0, compute_cycles_per_option=1.0, options_per_engine=1)
        with pytest.raises(ValidationError):
            cosim_dma_traffic(sc, 1, compute_cycles_per_option=0.0, options_per_engine=1)
        with pytest.raises(ValidationError):
            cosim_dma_traffic(sc, 1, compute_cycles_per_option=1.0, options_per_engine=0)
        with pytest.raises(ValidationError):
            DMATrafficModel(service_cycles=0.0)
