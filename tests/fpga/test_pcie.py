"""Unit tests for the PCIe transfer model."""

import pytest

from repro.fpga.pcie import PCIeModel
from repro.errors import ValidationError


class TestTransfers:
    def test_affine_model(self):
        m = PCIeModel(latency_s=10e-6, bandwidth_bytes_per_sec=12e9)
        assert m.transfer_seconds(12_000_000) == pytest.approx(10e-6 + 1e-3)

    def test_zero_bytes_free(self):
        assert PCIeModel().transfer_seconds(0) == 0.0

    def test_latency_dominates_small_transfers(self):
        m = PCIeModel(latency_s=10e-6, bandwidth_bytes_per_sec=12e9)
        assert m.transfer_seconds(64) == pytest.approx(10e-6, rel=0.01)

    def test_batch_is_three_transfers(self):
        m = PCIeModel(latency_s=10e-6, bandwidth_bytes_per_sec=12e9)
        total = m.batch_seconds(1024, 1024)
        parts = (
            m.transfer_seconds(2 * 1024 * 16)
            + m.transfer_seconds(1024 * 24)
            + m.transfer_seconds(1024 * 8)
        )
        assert total == pytest.approx(parts)

    def test_batch_small_part_of_execution(self):
        """Paper: PCIe is 'a small part of the overall execution time'.
        At 27k options/s, 1024 options take ~37ms; PCIe must be well under
        1% of that."""
        secs = PCIeModel().batch_seconds(1024, 1024)
        assert secs < 0.37e-3

    def test_monotone_in_options(self):
        m = PCIeModel()
        assert m.batch_seconds(2048, 1024) > m.batch_seconds(64, 1024)


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValidationError):
            PCIeModel(bandwidth_bytes_per_sec=0.0)

    def test_bad_latency(self):
        with pytest.raises(ValidationError):
            PCIeModel(latency_s=-1.0)

    def test_negative_bytes(self):
        with pytest.raises(ValidationError):
            PCIeModel().transfer_seconds(-1)

    def test_negative_counts(self):
        with pytest.raises(ValidationError):
            PCIeModel().batch_seconds(-1, 10)
