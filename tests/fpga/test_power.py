"""Unit tests for the FPGA power model against Table II."""

import pytest

from repro.fpga.power import FPGAPowerModel
from repro.workloads.scenarios import PAPER_TABLE2
from repro.errors import ValidationError


class TestAgainstPaper:
    @pytest.mark.parametrize(
        "n,key",
        [(1, "fpga_1_engine"), (2, "fpga_2_engines"), (5, "fpga_5_engines")],
    )
    def test_within_noise_of_table2(self, n, key):
        """Paper power at 2 engines is *below* 1 engine — run-to-run noise
        of ~0.5W; the fitted model must land within 1W of every row."""
        model = FPGAPowerModel()
        paper_watts = PAPER_TABLE2[key][1]
        assert model.watts(n) == pytest.approx(paper_watts, abs=1.0)

    def test_near_flat_scaling(self):
        """'The additional power overhead of adding extra FPGA engines is
        fairly minimal': 1 -> 5 engines adds under 2 W."""
        model = FPGAPowerModel()
        assert model.watts(5) - model.watts(1) < 2.0


class TestModel:
    def test_monotone(self):
        m = FPGAPowerModel()
        assert m.watts(5) > m.watts(1) > m.watts(0)

    def test_energy(self):
        m = FPGAPowerModel(static_watts=30.0, per_engine_watts=1.0)
        assert m.energy_joules(2, 10.0) == pytest.approx(320.0)

    def test_efficiency(self):
        m = FPGAPowerModel(static_watts=35.0, per_engine_watts=0.0)
        assert m.efficiency(35_000.0, 1) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            FPGAPowerModel(static_watts=-1.0)
        with pytest.raises(ValidationError):
            FPGAPowerModel().watts(-1)
        with pytest.raises(ValidationError):
            FPGAPowerModel().energy_joules(1, -1.0)
