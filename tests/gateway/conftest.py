"""Shared fixtures for the gateway tests: a small, fast gateway."""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.gateway import Gateway, make_tenant_stream, make_tick_stream
from repro.risk.engine import make_book
from repro.serving import make_market_tape
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 12
N_STATES = 48


@pytest.fixture(scope="module")
def gateway_scenario() -> PaperScenario:
    """Short rate tables so calibration and numerics stay fast."""
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def tape(gateway_scenario):
    return make_market_tape(
        gateway_scenario.yield_curve(),
        gateway_scenario.hazard_curve(),
        N_STATES,
        seed=3,
    )


@pytest.fixture(scope="module")
def book():
    return make_book("heterogeneous", N_POSITIONS, seed=5)


def small_gateway(book, tape, scenario, **kwargs) -> Gateway:
    kwargs.setdefault("n_servers", 2)
    kwargs.setdefault("n_cards", 2)
    kwargs.setdefault("n_engines", 2)
    kwargs.setdefault("queue", BatchQueue(max_batch=16, linger_s=1e-3))
    kwargs.setdefault("queue_depth", 256)
    return Gateway(book, tape, scenario=scenario, **kwargs)


@pytest.fixture(scope="module")
def gateway(book, tape, gateway_scenario) -> Gateway:
    return small_gateway(book, tape, gateway_scenario)


@pytest.fixture(scope="module")
def stream():
    return make_tenant_stream(
        800,
        rate_hz=40_000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        var_rows=6,
        seed=11,
    )


@pytest.fixture(scope="module")
def ticks():
    return make_tick_stream(30, rate_hz=2_000.0, n_states=N_STATES, seed=11)
