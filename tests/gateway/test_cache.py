"""Unit tests for the single-flight quote cache."""

import pytest

from repro.errors import ValidationError
from repro.gateway.cache import QuoteCache, cache_key
from repro.serving.request import PricingRequest


def _quote(rid, row=3, option=7, t=0.0):
    return PricingRequest(
        request_id=rid, kind="quote", arrival_s=t, deadline_s=t + 1.0,
        rows=(row,), option_index=option,
    )


class TestCacheKey:
    def test_quote_keys_on_row_and_contract(self):
        assert cache_key(_quote(0, row=3, option=7)) == (3, 7)

    def test_risk_requests_uncacheable(self):
        req = PricingRequest(
            request_id=0, kind="var", arrival_s=0.0, deadline_s=1.0,
            rows=(1, 2, 3),
        )
        assert cache_key(req) is None


class TestSingleFlight:
    def test_leader_fulfil_resolves_waiters(self):
        cache = QuoteCache()
        leader = _quote(0)
        entry = cache.begin((3, 7), leader)
        joiner = _quote(1, t=0.001)
        entry.waiters.append(joiner)
        out = cache.fulfil(
            0, value=1.25, ready_s=0.01, formed_s=0.002, batch_id=4,
            cards=(1,),
        )
        assert out is entry and out.ready
        assert out.waiters == [joiner]
        assert out.value == 1.25
        # now a ready entry under the key
        assert cache.get((3, 7)) is entry
        assert cache.fulfil(0, value=0.0, ready_s=0.0, formed_s=0.0,
                            batch_id=0, cards=()) is None

    def test_double_begin_rejected(self):
        cache = QuoteCache()
        cache.begin((3, 7), _quote(0))
        with pytest.raises(ValidationError):
            cache.begin((3, 7), _quote(1))

    def test_abandon_frees_key_for_fresh_leader(self):
        cache = QuoteCache()
        entry = cache.begin((3, 7), _quote(0))
        entry.waiters.append(_quote(1))
        out = cache.abandon(0)
        assert out is entry and not out.live
        assert cache.get((3, 7)) is None
        cache.begin((3, 7), _quote(2))  # fresh leader allowed

    def test_stats_rates(self):
        cache = QuoteCache()
        cache.stats.lookups = 10
        cache.stats.hits = 4
        cache.stats.joins = 2
        assert cache.stats.hit_rate == pytest.approx(0.4)
        assert cache.stats.dedup_rate == pytest.approx(0.6)
        assert QuoteCache().stats.hit_rate == 0.0


class TestInvalidation:
    def test_tick_drops_all_keys_on_row(self):
        cache = QuoteCache()
        for rid, option in enumerate((1, 2, 3)):
            e = cache.begin((5, option), _quote(rid, row=5, option=option))
            cache.fulfil(rid, value=1.0, ready_s=0.0, formed_s=0.0,
                         batch_id=0, cards=())
        cache.begin((6, 1), _quote(9, row=6, option=1))
        assert cache.invalidate_row(5) == 3
        assert len(cache) == 1
        assert cache.get((6, 1)) is not None
        assert cache.stats.invalidations == 3
        assert cache.invalidate_row(5) == 0

    def test_pending_entry_invalidated_still_resolves_leader(self):
        """A tick mid-flight unlinks the key but the leader's joiners
        still get their value — single-flight survives invalidation."""
        cache = QuoteCache()
        entry = cache.begin((5, 1), _quote(0, row=5, option=1))
        entry.waiters.append(_quote(1, row=5, option=1))
        assert cache.invalidate_row(5) == 1
        assert cache.get((5, 1)) is None  # fresh leaders allowed
        out = cache.fulfil(0, value=2.0, ready_s=0.0, formed_s=0.0,
                           batch_id=0, cards=())
        assert out is entry and len(out.waiters) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            QuoteCache(hit_latency_s=-1.0)
