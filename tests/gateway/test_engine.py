"""Unit tests for the gateway engine: route → admit → cache → dispatch."""

from dataclasses import replace

import pytest

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.gateway import (
    DEFAULT_TENANTS,
    Gateway,
    PASSTHROUGH_TENANT,
    TenantProfile,
    make_tenant_stream,
)
from repro.serving import QuoteServer, make_request_stream
from repro.serving.request import ShedReason
from repro.telemetry import Telemetry

from .conftest import N_POSITIONS, N_STATES, small_gateway


class TestServe:
    def test_every_request_accounted_for(self, gateway, stream, ticks):
        res = gateway.serve(stream, ticks=ticks)
        assert res.n_offered == len(stream)
        assert res.n_completed + res.n_shed + res.n_failed == res.n_offered
        answered = {r.request_id for r in res.responses}
        shed = {s.request.request_id for s in res.sheds}
        assert answered | shed == {r.request_id for r in stream}
        assert not (answered & shed)

    def test_deterministic(self, gateway, stream, ticks):
        assert gateway.serve(stream, ticks=ticks) == gateway.serve(
            stream, ticks=ticks
        )

    def test_tenant_stats_sum_to_aggregate(self, gateway, stream):
        res = gateway.serve(stream)
        assert sum(t.n_offered for t in res.tenants) == res.n_offered
        assert sum(t.n_completed for t in res.tenants) == res.n_completed
        assert sum(t.n_shed for t in res.tenants) == res.n_shed
        assert sum(t.goodput_rps for t in res.tenants) == pytest.approx(
            res.goodput_rps
        )

    def test_server_results_cover_routed_traffic(self, gateway, stream):
        res = gateway.serve(stream)
        assert len(res.servers) == gateway.n_servers
        # Routed (non-quota, non-cache-path) traffic lands on the lanes.
        routed = sum(s.n_offered for s in res.servers)
        cache_served = res.n_cache_hits + res.n_cache_joins
        assert routed == res.n_offered - res.n_shed_quota - cache_served

    def test_responses_carry_tenants(self, gateway, stream):
        res = gateway.serve(stream)
        names = {p.name for p in DEFAULT_TENANTS}
        assert {r.tenant for r in res.responses} <= names
        assert res.summary()

    def test_validation(self, gateway, book, tape, gateway_scenario):
        with pytest.raises(ValidationError):
            gateway.serve([])
        with pytest.raises(ValidationError):
            small_gateway(book, tape, gateway_scenario, n_servers=0)
        bad = make_request_stream(
            5, rate_hz=1000.0, n_states=N_STATES, n_positions=N_POSITIONS
        )
        bad[0] = replace(bad[0], tenant="nobody")
        with pytest.raises(ValidationError):
            gateway.serve(bad)


class TestQuota:
    def test_quota_sheds_are_typed(self, book, tape, gateway_scenario):
        tenants = (
            TenantProfile(name="tiny", quota_rps=200.0, burst=2.0),
        )
        gw = small_gateway(book, tape, gateway_scenario, tenants=tenants)
        stream = make_tenant_stream(
            300, rate_hz=30_000.0, n_states=N_STATES,
            n_positions=N_POSITIONS, tenants=tenants, seed=11,
        )
        res = gw.serve(stream)
        assert res.n_shed_quota > 0
        quota = [s for s in res.sheds if s.reason is ShedReason.QUOTA]
        assert len(quota) == res.n_shed_quota
        assert res.tenants[0].n_shed_quota == res.n_shed_quota
        # quota sheds never reached a server queue
        assert all(s.n_offered <= 300 - res.n_shed_quota for s in res.servers)

    def test_unlimited_tenant_never_quota_shed(self, gateway, stream):
        res = gateway.serve(stream)
        gold = next(t for t in res.tenants if t.tenant == "gold")
        assert gold.n_shed_quota == 0


class TestCache:
    def test_cache_dedups_and_speeds_up(self, gateway, book, tape,
                                        gateway_scenario, stream):
        on = gateway.serve(stream)
        off = small_gateway(
            book, tape, gateway_scenario, cache=False
        ).serve(stream)
        assert on.n_cache_hits + on.n_cache_joins > 0
        assert on.cache_hit_rate > 0.0
        assert off.cache_hit_rate == 0.0
        # the cache strictly reduces kernel work
        on_rows = sum(
            c.n_rows for s in on.servers for c in s.cards
        )
        off_rows = sum(
            c.n_rows for s in off.servers for c in s.cards
        )
        assert on_rows < off_rows

    def test_cached_values_bit_identical(self, gateway, book, tape,
                                         gateway_scenario, stream, ticks):
        on = gateway.serve(stream, ticks=ticks)
        off = small_gateway(
            book, tape, gateway_scenario, cache=False
        ).serve(stream)
        v_on = {r.request_id: r.value for r in on.responses}
        v_off = {r.request_id: r.value for r in off.responses}
        common = set(v_on) & set(v_off)
        assert common
        assert all(v_on[i] == v_off[i] for i in common)

    def test_ticks_invalidate(self, gateway, stream, ticks):
        res = gateway.serve(stream, ticks=ticks)
        assert res.n_cache_invalidations > 0
        # invalidation can only cost hits
        quiet = gateway.serve(stream)
        assert quiet.n_cache_hits >= res.n_cache_hits

    def test_tick_row_validated(self, gateway, stream):
        with pytest.raises(ValidationError):
            gateway.serve(stream, ticks=[(0.0, N_STATES)])


class TestIdentityPin:
    """1 server + passthrough tenant + cache off == plain QuoteServer."""

    def test_lane_equals_server(self, book, tape, gateway_scenario):
        stream = make_request_stream(
            300, rate_hz=10_000.0, n_states=N_STATES,
            n_positions=N_POSITIONS, var_rows=6, seed=11,
        )
        queue = BatchQueue(max_batch=16, linger_s=1e-3)
        server = QuoteServer(
            book, tape, scenario=gateway_scenario, n_cards=2, n_engines=2,
            queue=queue, queue_depth=256,
        )
        base = server.serve(stream)
        gw = small_gateway(
            book, tape, gateway_scenario, n_servers=1,
            tenants=(PASSTHROUGH_TENANT,), cache=False,
        )
        res = gw.serve(stream)
        assert res.servers[0] == base
        assert res.n_completed == base.n_completed
        assert res.goodput_rps == base.goodput_rps
        assert {r.request_id: r.value for r in res.responses} == {
            r.request_id: r.value for r in base.responses
        }


class TestDrain:
    def test_drained_server_gets_nothing(self, book, tape, gateway_scenario,
                                         stream):
        gw = small_gateway(book, tape, gateway_scenario, n_servers=3)
        gw.drain(1)
        res = gw.serve(stream)
        assert res.servers[1].n_offered == 0
        assert res.servers[1].n_completed == 0
        assert res.n_completed + res.n_shed == res.n_offered


class TestTelemetry:
    def test_gateway_metrics_published(self, book, tape, gateway_scenario,
                                       stream, ticks):
        tel = Telemetry.recording()
        gw = small_gateway(book, tape, gateway_scenario, telemetry=tel)
        res = gw.serve(stream, ticks=ticks)
        keys = tel.metrics.names()
        for name in (
            "gateway_requests_total",
            "gateway_routed_total",
            "gateway_cache_hits_total",
            "gateway_cache_misses_total",
            "gateway_cache_hit_rate",
            "gateway_goodput_rps",
            "gateway_requests_completed_total",
        ):
            assert any(k.startswith(name) for k in keys), name
        spans = tel.recorder.for_track("gateway")
        assert any(s.name == "cache_hit" for s in spans)
        assert res.n_cache_hits > 0


class TestFaults:
    def test_fault_plan_hits_one_lane(self, book, tape, gateway_scenario,
                                      stream):
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec("crash:card=0,at=0.002,repair=0.01")
        gw = small_gateway(book, tape, gateway_scenario)
        res = gw.serve(stream, faults=plan, fault_server=1)
        assert res.n_completed + res.n_shed + res.n_failed == res.n_offered
        # clean lane is untouched by the plan
        clean = gw.serve(stream)
        assert res.servers[0].n_offered == clean.servers[0].n_offered
