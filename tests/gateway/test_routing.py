"""Unit tests for the consistent-hash ring."""

import pytest

from repro.errors import ValidationError
from repro.gateway.routing import DEFAULT_REPLICAS, HashRing, route_key
from repro.serving.request import PricingRequest


def _req(kind="quote", rows=(3,), option_index=7, rid=0):
    return PricingRequest(
        request_id=rid, kind=kind, arrival_s=0.0, deadline_s=1.0,
        rows=rows, option_index=option_index if kind == "quote" else None,
    )


class TestRouteKey:
    def test_quote_keys_on_contract(self):
        assert route_key(_req("quote", rows=(3,), option_index=7)) == "opt:7"

    def test_risk_keys_on_leading_row(self):
        assert route_key(_req("reval", rows=(5,))) == "row:5"
        assert route_key(_req("var", rows=(2, 9, 11))) == "row:2"


class TestHashRing:
    def test_deterministic(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        keys = [f"opt:{i}" for i in range(200)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_same_key_same_node(self):
        ring = HashRing(range(4))
        assert ring.route("opt:42") == ring.route("opt:42")

    def test_spread_roughly_even(self):
        """With enough virtual points every node owns a fair share."""
        ring = HashRing(range(4), replicas=DEFAULT_REPLICAS)
        counts = {n: 0 for n in range(4)}
        for i in range(4000):
            counts[ring.route(f"opt:{i}")] += 1
        for n, c in counts.items():
            assert 0.1 < c / 4000 < 0.5, (n, c)

    def test_drain_moves_only_drained_keys(self):
        """Consistent hashing's point: removal only remaps the removed
        node's keys."""
        ring = HashRing(range(4))
        keys = [f"opt:{i}" for i in range(1000)]
        before = {k: ring.route(k) for k in keys}
        ring.drain(2)
        after = {k: ring.route(k) for k in keys}
        assert 2 not in set(after.values())
        moved = [k for k in keys if before[k] != after[k]]
        assert moved and all(before[k] == 2 for k in moved)

    def test_add_restores_routing(self):
        ring = HashRing(range(4))
        keys = [f"row:{i}" for i in range(500)]
        before = {k: ring.route(k) for k in keys}
        ring.drain(1)
        ring.add(1)
        assert {k: ring.route(k) for k in keys} == before

    def test_route_request(self):
        ring = HashRing(range(3))
        req = _req("quote", option_index=9)
        assert ring.route_request(req) == ring.route("opt:9")

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing([])
        with pytest.raises(ValidationError):
            HashRing([0, 0])
        ring = HashRing([0])
        with pytest.raises(ValidationError):
            ring.drain(0)  # last node
        with pytest.raises(ValidationError):
            ring.drain(5)
        with pytest.raises(ValidationError):
            HashRing([0, 1]).add(1)
