"""Unit tests for tenant profiles, token buckets and the tenant book."""

import pytest

from repro.errors import ValidationError
from repro.gateway.tenancy import (
    DEFAULT_TENANTS,
    PASSTHROUGH_TENANT,
    TenantBook,
    TenantProfile,
    TokenBucket,
)


class TestTenantProfile:
    def test_defaults_are_unlimited(self):
        p = TenantProfile(name="t")
        assert p.quota_rps is None
        assert p.bucket_capacity is None
        assert p.priority_boost == 0
        assert p.deadline_scale == 1.0

    def test_derived_burst(self):
        p = TenantProfile(name="t", quota_rps=10_000.0)
        assert p.bucket_capacity == 50.0  # 5 ms of sustained rate
        assert TenantProfile(name="t", quota_rps=10.0).bucket_capacity == 1.0
        assert (
            TenantProfile(name="t", quota_rps=100.0, burst=7.0).bucket_capacity
            == 7.0
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            TenantProfile(name="")
        with pytest.raises(ValidationError):
            TenantProfile(name="t", quota_rps=0.0)
        with pytest.raises(ValidationError):
            TenantProfile(name="t", burst=-1.0)
        with pytest.raises(ValidationError):
            TenantProfile(name="t", priority_boost=-1)
        with pytest.raises(ValidationError):
            TenantProfile(name="t", deadline_scale=0.0)
        with pytest.raises(ValidationError):
            TenantProfile(name="t", share=0.0)


class TestTokenBucket:
    def test_starts_full_then_enforces_rate(self):
        b = TokenBucket(rate=10.0, capacity=2.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)  # burst spent
        assert b.try_take(0.1)  # one token refilled
        assert not b.try_take(0.1)

    def test_refill_caps_at_capacity(self):
        b = TokenBucket(rate=10.0, capacity=3.0)
        for _ in range(3):
            assert b.try_take(0.0)
        admitted = sum(b.try_take(100.0) for _ in range(10))
        assert admitted == 3  # a long quiet spell refills to burst, no more

    def test_sustained_rate(self):
        """Over a long window admissions track rate * time + burst."""
        b = TokenBucket(rate=100.0, capacity=5.0)
        admitted = sum(b.try_take(i * 1e-3) for i in range(1000))
        assert admitted == pytest.approx(100.0 * 1.0 + 5.0, abs=2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValidationError):
            TokenBucket(1.0, 0.0)


class TestTenantBook:
    def test_unknown_tenant_rejected(self):
        book = TenantBook(DEFAULT_TENANTS)
        with pytest.raises(ValidationError):
            book.profile("nobody")

    def test_none_maps_to_first_profile(self):
        book = TenantBook(DEFAULT_TENANTS)
        assert book.profile(None) is DEFAULT_TENANTS[0]

    def test_admit_charges_only_quota_tenants(self):
        book = TenantBook(DEFAULT_TENANTS)
        for _ in range(1000):
            assert book.admit("gold", 0.0)  # unlimited
        bronze = next(p for p in DEFAULT_TENANTS if p.name == "bronze")
        cap = bronze.bucket_capacity
        admitted = sum(book.admit("bronze", 0.0) for _ in range(int(cap) + 10))
        assert admitted == int(cap)

    def test_passthrough_never_sheds(self):
        book = TenantBook((PASSTHROUGH_TENANT,))
        assert all(book.admit(None, 0.0) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValidationError):
            TenantBook(())
        with pytest.raises(ValidationError):
            TenantBook((PASSTHROUGH_TENANT, PASSTHROUGH_TENANT))
