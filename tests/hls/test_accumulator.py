"""Unit tests for the Listing-1 accumulator models."""

import math

import numpy as np
import pytest

from repro.hls.accumulator import (
    AccumulatorModel,
    interleaved_accumulate,
    naive_accumulate,
)
from repro.hls.ops import DADD_LATENCY
from repro.errors import ValidationError


class TestFunctionalEquivalence:
    def test_naive_matches_fsum(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        total, _ = naive_accumulate(values)
        assert total == pytest.approx(math.fsum(values), rel=1e-12)

    def test_interleaved_matches_fsum(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=1000)
        total, _ = interleaved_accumulate(values)
        assert total == pytest.approx(math.fsum(values), rel=1e-12)

    @pytest.mark.parametrize("n", [0, 1, 6, 7, 8, 13, 14, 100, 1023])
    def test_uneven_lengths_handled(self, n):
        """The paper omits the non-multiple-of-7 tail 'for brevity'; we must
        handle it (as their engine code does)."""
        values = np.arange(1, n + 1, dtype=np.float64)
        exact = n * (n + 1) / 2
        assert naive_accumulate(values)[0] == pytest.approx(exact)
        assert interleaved_accumulate(values)[0] == pytest.approx(exact)

    def test_interleaved_lane_association(self):
        # With lanes=2 and values [a,b,c]: (a+c) + b.
        total, _ = interleaved_accumulate([1e16, 1.0, -1e16], lanes=2)
        assert total == ((1e16 + -1e16) + 1.0)


class TestTiming:
    def test_naive_ii7(self):
        _, cycles = naive_accumulate(np.ones(100))
        assert cycles == pytest.approx(DADD_LATENCY * 100)

    def test_interleaved_ii1_at_scale(self):
        n = 10_000
        _, cycles = interleaved_accumulate(np.ones(n))
        # ~1 cycle per element plus constant tail.
        assert cycles < n * 1.2

    def test_speedup_approaches_seven(self):
        n = 100_000
        _, slow = naive_accumulate(np.ones(n))
        _, fast = interleaved_accumulate(np.ones(n))
        assert slow / fast == pytest.approx(7.0, rel=0.05)

    def test_empty_is_free(self):
        assert naive_accumulate([])[1] == 0.0
        assert interleaved_accumulate([])[1] == 0.0

    def test_small_inputs_interleaved_not_faster(self):
        """For tiny n the tail reduction dominates: Listing 1 only pays off
        at scale (why the paper's final 7-element loop is said to have
        minimal impact)."""
        _, slow = naive_accumulate(np.ones(3))
        _, fast = interleaved_accumulate(np.ones(3))
        assert fast >= slow


class TestAccumulatorModel:
    def test_ii_property(self):
        assert AccumulatorModel(interleaved=False).ii == 7.0
        assert AccumulatorModel(interleaved=True).ii == 1.0

    def test_cycles_match_functions(self):
        values = np.ones(137)
        naive = AccumulatorModel(interleaved=False)
        inter = AccumulatorModel(interleaved=True)
        assert naive.cycles(137) == naive_accumulate(values)[1]
        assert inter.cycles(137) == interleaved_accumulate(values)[1]

    def test_compute_dispatch(self):
        values = [1.0, 2.0, 3.0]
        total_n, cyc_n = AccumulatorModel(interleaved=False).compute(values)
        total_i, cyc_i = AccumulatorModel(interleaved=True).compute(values)
        assert total_n == pytest.approx(6.0)
        assert total_i == pytest.approx(6.0)
        assert cyc_n != cyc_i

    def test_pragmas(self):
        naive = AccumulatorModel(interleaved=False).pragmas()
        assert any("II=7" in p.render() for p in naive)
        inter = AccumulatorModel(interleaved=True).pragmas()
        rendered = " ".join(p.render() for p in inter)
        assert "UNROLL" in rendered and "ARRAY_PARTITION" in rendered

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            AccumulatorModel(interleaved=True).cycles(-1)

    def test_bad_lanes_rejected(self):
        with pytest.raises(ValidationError):
            AccumulatorModel(interleaved=True, lanes=0)

    def test_describe(self):
        assert "II=7" in AccumulatorModel(interleaved=False).describe()
        assert "Listing-1" in AccumulatorModel(interleaved=True).describe()
