"""Unit tests for the interpolation unit model."""

import pytest

from repro.core.curves import Curve
from repro.hls.interpolation import InterpolatorModel
from repro.errors import ValidationError


class TestTiming:
    def test_fixed_bound_cost_independent_of_index(self):
        m = InterpolatorModel(table_length=1024)
        assert m.evaluation_cycles(0) == m.evaluation_cycles(1000)

    def test_fixed_bound_scan_dominates(self):
        m = InterpolatorModel(table_length=1024)
        assert m.evaluation_cycles(0) > 1024

    def test_early_exit_scales_with_index(self):
        m = InterpolatorModel(table_length=1024, fixed_bound=False)
        assert m.evaluation_cycles(10) < m.evaluation_cycles(900)

    def test_early_exit_clamped_to_table(self):
        m = InterpolatorModel(table_length=100, fixed_bound=False)
        assert m.evaluation_cycles(10_000) == m.evaluation_cycles(100)

    def test_scan_ii_scales(self):
        fast = InterpolatorModel(table_length=100, scan_ii=1.0)
        slow = InterpolatorModel(table_length=100, scan_ii=2.0)
        assert slow.evaluation_cycles(0) > fast.evaluation_cycles(0)

    def test_arithmetic_latency_positive(self):
        assert InterpolatorModel(table_length=8).arithmetic_latency > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            InterpolatorModel(table_length=0)
        with pytest.raises(ValidationError):
            InterpolatorModel(table_length=8, scan_ii=0.0)
        with pytest.raises(ValidationError):
            InterpolatorModel(table_length=8).evaluation_cycles(-1)


class TestFunctional:
    def test_evaluate_matches_curve(self):
        curve = Curve([1.0, 2.0, 3.0], [0.1, 0.3, 0.2])
        m = InterpolatorModel(table_length=len(curve))
        value, cycles = m.evaluate(curve, 1.5)
        assert value == pytest.approx(curve.interpolate(1.5))
        assert cycles > 0
