"""Unit tests for the operator table."""

import pytest

from repro.hls.ops import DADD_LATENCY, OP_TABLE, op
from repro.errors import ValidationError


class TestOpTable:
    def test_dadd_latency_is_seven(self):
        """The paper's central constant: the DP add takes 7 cycles."""
        assert DADD_LATENCY == 7
        assert op("dadd").latency == 7

    def test_lookup(self):
        assert op("dmul").name == "dmul"

    def test_unknown_op_listed(self):
        with pytest.raises(ValidationError, match="dadd"):
            op("dfma")

    def test_all_ops_fully_pipelined(self):
        for spec in OP_TABLE.values():
            assert spec.ii == 1

    def test_relative_latencies(self):
        # Divide and exp are long-latency; compare is short.
        assert op("ddiv").latency > op("dmul").latency
        assert op("dexp").latency > op("dadd").latency
        assert op("dcmp").latency < op("dadd").latency

    def test_resources_non_negative(self):
        for spec in OP_TABLE.values():
            assert spec.dsp >= 0 and spec.lut >= 0 and spec.ff >= 0

    def test_mul_uses_dsp(self):
        assert op("dmul").dsp > 0

    def test_div_is_logic_heavy(self):
        assert op("ddiv").dsp == 0
        assert op("ddiv").lut > op("dmul").lut
