"""Unit tests for pragma descriptors."""

import pytest

from repro.hls.pragmas import (
    ArrayPartition,
    DataflowPragma,
    Pipeline,
    StreamPragma,
    Unroll,
)
from repro.errors import ValidationError


class TestPipeline:
    def test_render(self):
        assert Pipeline(ii=7).render() == "#pragma HLS PIPELINE II=7"

    def test_default_ii(self):
        assert Pipeline().ii == 1

    def test_bad_ii(self):
        with pytest.raises(ValidationError):
            Pipeline(ii=0)


class TestUnroll:
    def test_full_unroll(self):
        assert Unroll().render() == "#pragma HLS UNROLL"

    def test_factored(self):
        assert Unroll(factor=4).render() == "#pragma HLS UNROLL factor=4"

    def test_bad_factor(self):
        with pytest.raises(ValidationError):
            Unroll(factor=1)


class TestDataflow:
    def test_render(self):
        assert DataflowPragma().render() == "#pragma HLS DATAFLOW"

    def test_start_propagation(self):
        assert "disable_start_propagation" in DataflowPragma(
            disable_start_propagation=True
        ).render()


class TestArrayPartition:
    def test_complete(self):
        p = ArrayPartition(variable="values")
        assert p.render() == "#pragma HLS ARRAY_PARTITION variable=values complete"

    def test_cyclic_with_factor(self):
        p = ArrayPartition(variable="v", kind="cyclic", factor=7)
        assert "cyclic" in p.render() and "factor=7" in p.render()

    def test_complete_with_factor_rejected(self):
        with pytest.raises(ValidationError):
            ArrayPartition(variable="v", kind="complete", factor=2)

    def test_cyclic_needs_factor(self):
        with pytest.raises(ValidationError):
            ArrayPartition(variable="v", kind="cyclic")

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            ArrayPartition(variable="v", kind="diagonal")


class TestStreamPragma:
    def test_render(self):
        assert StreamPragma(variable="s", depth=8).render() == (
            "#pragma HLS STREAM variable=s depth=8"
        )

    def test_bad_depth(self):
        with pytest.raises(ValidationError):
            StreamPragma(variable="s", depth=0)
