"""Unit tests for synthesis-style reports."""

from repro.hls.report import StageReport, synthesis_report
from repro.hls.resources import ResourceUsage


def _stages():
    return [
        StageReport(
            name="hazard_acc",
            ii=7.0,
            latency=7168.0,
            trip_count=1024,
            resources=ResourceUsage(lut=700, ff=1100, dsp=3),
            pragmas=("#pragma HLS PIPELINE II=7",),
        ),
        StageReport(
            name="interp",
            ii=1.0,
            latency=1080.0,
            trip_count=1024,
            resources=ResourceUsage(lut=5900, ff=9000, dsp=17),
        ),
    ]


class TestSynthesisReport:
    def test_contains_stages_and_total(self):
        text = synthesis_report("engine", _stages())
        assert "hazard_acc" in text and "interp" in text
        assert "TOTAL" in text
        assert "LUT=6600" in text  # summed

    def test_pragmas_rendered(self):
        text = synthesis_report("engine", _stages())
        assert "#pragma HLS PIPELINE II=7" in text

    def test_utilisation_section_with_budget(self):
        budget = ResourceUsage(lut=100_000, ff=200_000, bram36=100, uram=10, dsp=100)
        text = synthesis_report("engine", _stages(), budget)
        assert "Utilisation" in text
        assert "%" in text

    def test_clock_header(self):
        text = synthesis_report("engine", _stages(), clock_mhz=300.0)
        assert "300 MHz" in text
        assert "3.33 ns" in text
