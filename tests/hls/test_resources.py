"""Unit tests for resource vectors."""

import pytest

from repro.hls.resources import BRAM36_BYTES, URAM_BYTES, ResourceUsage
from repro.errors import ResourceError, ValidationError


class TestArithmetic:
    def test_add(self):
        a = ResourceUsage(lut=10, dsp=2)
        b = ResourceUsage(lut=5, bram36=1)
        c = a + b
        assert (c.lut, c.dsp, c.bram36) == (15, 2, 1)

    def test_scale(self):
        r = ResourceUsage(lut=10, uram=2).scale(3)
        assert (r.lut, r.uram) == (30, 6)

    def test_scale_zero(self):
        assert ResourceUsage(lut=10).scale(0) == ResourceUsage()

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ResourceUsage(lut=-1)
        with pytest.raises(ValidationError):
            ResourceUsage(lut=1).scale(-1)


class TestFit:
    BUDGET = ResourceUsage(lut=100, ff=200, bram36=10, uram=10, dsp=50)

    def test_fits(self):
        assert ResourceUsage(lut=80, dsp=40).fits_within(self.BUDGET)

    def test_ceiling(self):
        r = ResourceUsage(lut=85)
        assert r.fits_within(self.BUDGET, ceiling=0.9)
        assert not r.fits_within(self.BUDGET, ceiling=0.8)

    def test_any_component_can_bind(self):
        assert not ResourceUsage(dsp=51).fits_within(self.BUDGET)
        assert not ResourceUsage(uram=11).fits_within(self.BUDGET)

    def test_require_fit_raises_with_breakdown(self):
        with pytest.raises(ResourceError, match="dsp"):
            ResourceUsage(dsp=60).require_fit(self.BUDGET, what="test design")

    def test_zero_budget_component(self):
        budget = ResourceUsage(lut=100)  # no DSP at all
        assert not ResourceUsage(dsp=1).fits_within(budget)
        assert ResourceUsage(lut=50).fits_within(budget)

    def test_utilisation_fractions(self):
        util = ResourceUsage(lut=50, dsp=25).utilisation(self.BUDGET)
        assert util["lut"] == pytest.approx(0.5)
        assert util["dsp"] == pytest.approx(0.5)
        assert util["uram"] == 0.0

    def test_bad_ceiling(self):
        with pytest.raises(ValidationError):
            ResourceUsage().fits_within(self.BUDGET, ceiling=0.0)


class TestTableSizing:
    def test_uram_block_granularity(self):
        assert ResourceUsage.for_table_bytes(1).uram == 1
        assert ResourceUsage.for_table_bytes(URAM_BYTES).uram == 1
        assert ResourceUsage.for_table_bytes(URAM_BYTES + 1).uram == 2

    def test_bram_variant(self):
        r = ResourceUsage.for_table_bytes(BRAM36_BYTES * 3, in_uram=False)
        assert r.bram36 == 3
        assert r.uram == 0

    def test_zero_bytes(self):
        assert ResourceUsage.for_table_bytes(0) == ResourceUsage()

    def test_paper_table_fits_one_block(self):
        # 1024 entries x 16 bytes = 16 KiB < one 36 KiB URAM block.
        assert ResourceUsage.for_table_bytes(1024 * 16).uram == 1

    def test_describe(self):
        text = ResourceUsage(lut=1, ff=2, bram36=3, uram=4, dsp=5).describe()
        assert "LUT=1" in text and "DSP=5" in text
