"""Unit tests for the modulo-scheduling II analysis."""

import pytest

from repro.hls.ops import DADD_LATENCY
from repro.hls.schedule import (
    LoopDependenceGraph,
    analyse_loop,
    listing1_accumulation_loop,
    naive_accumulation_loop,
)
from repro.errors import ValidationError


class TestPaperLoops:
    def test_naive_accumulation_derives_ii7(self):
        """The paper's central fact — 'the pipelined loop had an Initiation
        Interval of seven' — derived from the dependence cycle."""
        analysis = analyse_loop(naive_accumulation_loop())
        assert analysis.achieved_ii == DADD_LATENCY == 7
        assert analysis.rec_mii == 7
        assert analysis.critical_cycle == ("acc",)

    def test_listing1_derives_ii1(self):
        """Seven interleaved partial sums stretch the dependence distance
        to 7, restoring II=1."""
        analysis = analyse_loop(listing1_accumulation_loop(lanes=7))
        assert analysis.achieved_ii == 1

    def test_insufficient_lanes_leave_residual_ii(self):
        """Fewer lanes than the adder latency only partially break the
        dependency: ceil(7 / lanes)."""
        import math

        for lanes in (1, 2, 3, 4, 6, 7, 8):
            analysis = analyse_loop(listing1_accumulation_loop(lanes=lanes))
            assert analysis.achieved_ii == math.ceil(DADD_LATENCY / lanes)

    def test_seven_lanes_is_minimal(self):
        """The paper's choice of exactly 7 partial sums is the minimum that
        reaches II=1."""
        assert analyse_loop(listing1_accumulation_loop(6)).achieved_ii == 2
        assert analyse_loop(listing1_accumulation_loop(7)).achieved_ii == 1

    def test_single_precision_adder_needs_fewer_lanes(self):
        """With a 4-cycle single-precision adder, 4 lanes reach II=1 — the
        reduced-precision study's scheduling side."""
        g = LoopDependenceGraph()
        g.operation("acc", "sadd")
        g.depends("acc", "acc", distance=4)
        assert analyse_loop(g).achieved_ii == 1

    def test_describe(self):
        text = analyse_loop(naive_accumulation_loop()).describe()
        assert "II=7" in text and "acc" in text


class TestRecMII:
    def test_acyclic_body_is_ii1(self):
        g = LoopDependenceGraph()
        g.operation("a", "dmul")
        g.operation("b", "dadd")
        g.depends("a", "b")
        analysis = analyse_loop(g)
        assert analysis.achieved_ii == 1
        assert analysis.critical_cycle == ()

    def test_two_node_cycle(self):
        # dmul(6) -> dadd(7) -> dmul carried by 1: ceil(13/1) = 13.
        g = LoopDependenceGraph()
        g.operation("m", "dmul")
        g.operation("a", "dadd")
        g.depends("m", "a")
        g.depends("a", "m", distance=1)
        assert analyse_loop(g).rec_mii == 13

    def test_distance_spread_over_cycle(self):
        # Same cycle, distance 2 on one edge: ceil(13/2) = 7.
        g = LoopDependenceGraph()
        g.operation("m", "dmul")
        g.operation("a", "dadd")
        g.depends("m", "a", distance=1)
        g.depends("a", "m", distance=1)
        assert analyse_loop(g).rec_mii == 7

    def test_body_latency_is_longest_path(self):
        g = LoopDependenceGraph()
        g.operation("m", "dmul")  # 6
        g.operation("a", "dadd")  # 7
        g.operation("e", "dexp")  # 30
        g.depends("m", "a")
        g.depends("a", "e")
        analysis = analyse_loop(g)
        assert analysis.body_latency == 6 + 7 + 30


class TestResMII:
    def test_shared_units_raise_ii(self):
        g = LoopDependenceGraph()
        for i in range(4):
            g.operation(f"a{i}", "dadd")
        # Four adds sharing two adder cores: ResMII = 2.
        analysis = analyse_loop(g, unit_budget={"dadd": 2})
        assert analysis.res_mii == 2
        assert analysis.achieved_ii == 2

    def test_unbudgeted_classes_fully_parallel(self):
        g = LoopDependenceGraph()
        for i in range(4):
            g.operation(f"a{i}", "dadd")
        assert analyse_loop(g).achieved_ii == 1

    def test_rec_and_res_combine_as_max(self):
        g = naive_accumulation_loop()
        analysis = analyse_loop(g, unit_budget={"dmul": 1})
        assert analysis.achieved_ii == 7  # RecMII dominates

    def test_bad_budget(self):
        g = naive_accumulation_loop()
        with pytest.raises(ValidationError):
            analyse_loop(g, unit_budget={"dadd": 0})


class TestValidation:
    def test_duplicate_operation(self):
        g = LoopDependenceGraph()
        g.operation("a", "dadd")
        with pytest.raises(ValidationError):
            g.operation("a", "dmul")

    def test_unknown_dependence_endpoint(self):
        g = LoopDependenceGraph()
        g.operation("a", "dadd")
        with pytest.raises(ValidationError):
            g.depends("a", "missing")

    def test_zero_distance_self_loop(self):
        g = LoopDependenceGraph()
        g.operation("a", "dadd")
        with pytest.raises(ValidationError):
            g.depends("a", "a", distance=0)

    def test_zero_distance_cycle_rejected(self):
        g = LoopDependenceGraph()
        g.operation("a", "dadd")
        g.operation("b", "dmul")
        g.depends("a", "b")
        g.depends("b", "a")
        with pytest.raises(ValidationError, match="zero-distance"):
            analyse_loop(g)

    def test_empty_body(self):
        with pytest.raises(ValidationError):
            analyse_loop(LoopDependenceGraph())

    def test_unknown_operator(self):
        g = LoopDependenceGraph()
        with pytest.raises(ValidationError):
            g.operation("x", "qadd")
