"""Tests for repro.monitor: series, sampler, SLOs, detection, watchdog."""
