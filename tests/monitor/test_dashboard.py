"""The HTML dashboard: self-contained, deterministic, complete."""

from __future__ import annotations

import pytest

from repro.analysis.serving import generate_serving_report
from repro.faults import FaultPlan
from repro.monitor import Monitor, render_dashboard, write_dashboard
from repro.workloads.scenarios import PaperScenario

KW = dict(
    n_requests=400,
    rate_hz=4000.0,
    n_cards=4,
    max_batch=64,
    queue_depth=512,
    n_states=64,
    seed=7,
)


@pytest.fixture(scope="module")
def faulted_result():
    monitor = Monitor()
    generate_serving_report(
        PaperScenario(n_rates=64, n_options=10),
        faults=FaultPlan.from_spec(
            "slow:card=1,at=0.05,for=0.1,factor=60;"
            "crash:card=1,at=0.1,repair=0.1",
            seed=7,
        ),
        monitor=monitor,
        **KW,
    )
    return monitor.result


@pytest.fixture(scope="module")
def html(faulted_result):
    return render_dashboard(faulted_result, title="chaos cell")


class TestSelfContained:
    def test_no_external_assets(self, html):
        for needle in ("<script", "http://", "https://", "@import",
                       "<link", "url("):
            assert needle not in html, needle

    def test_is_a_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert '<meta charset="utf-8">' in html


class TestContent:
    def test_every_objective_has_a_budget_bar(self, html, faulted_result):
        for status in faulted_result.statuses:
            assert status.objective.name in html

    def test_alert_table_present(self, html, faulted_result):
        assert faulted_result.n_alerts >= 1
        assert "Alerts and fault windows" in html
        assert "peak burn" in html

    def test_fault_overlay_rendered(self, html):
        assert "injected faults" in html

    def test_detection_scorecard(self, html):
        assert "Detection" in html
        assert "time to detect" in html

    def test_sparklines_rendered(self, html):
        assert "polyline" in html
        assert "cards_up" in html

    def test_title_is_escaped(self, faulted_result):
        page = render_dashboard(faulted_result, title="<svg onload=x>")
        assert "<svg onload=x>" not in page
        assert "&lt;svg onload=x&gt;" in page


class TestDeterminism:
    def test_same_result_same_bytes(self, faulted_result):
        a = render_dashboard(faulted_result, title="t")
        b = render_dashboard(faulted_result, title="t")
        assert a == b


class TestWrite:
    def test_write_dashboard_round_trip(self, tmp_path, faulted_result):
        path = write_dashboard(tmp_path / "dash.html", faulted_result)
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestUnfaulted:
    def test_clean_run_renders_without_alert_sections(self):
        monitor = Monitor()
        generate_serving_report(
            PaperScenario(n_rates=64, n_options=10), monitor=monitor, **KW
        )
        page = render_dashboard(monitor.result)
        assert "no alerts fired" in page
        assert "injected faults" not in page
