"""Detection scoring: TTD/TTC, false positives/negatives, grace."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.monitor.detect import (
    FaultInterval,
    fault_intervals,
    score_detection,
)
from repro.monitor.slo import Alert


def _alert(fired, cleared=None, objective="avail"):
    return Alert(
        objective=objective, rule=0, fired_s=fired, cleared_s=cleared,
        peak_burn=5.0,
    )


class TestFaultIntervals:
    def test_empty_plan(self):
        assert fault_intervals(None, 1.0) == ()
        assert fault_intervals(FaultPlan.from_spec("", seed=7), 1.0) == ()

    def test_crash_with_repair(self):
        plan = FaultPlan.from_spec("crash:card=1,at=0.1,repair=0.1", seed=7)
        assert fault_intervals(plan, 1.0) == (FaultInterval(0.1, 0.2),)

    def test_permanent_crash_clamps_to_span(self):
        plan = FaultPlan.from_spec("crash:card=1,at=0.1", seed=7)
        assert fault_intervals(plan, 0.5) == (FaultInterval(0.1, 0.5),)

    def test_overlapping_events_merge(self):
        plan = FaultPlan.from_spec(
            "slow:card=1,at=0.05,for=0.1,factor=10;"
            "crash:card=1,at=0.1,repair=0.1",
            seed=7,
        )
        assert fault_intervals(plan, 1.0) == (FaultInterval(0.05, 0.2),)

    def test_disjoint_events_stay_separate(self):
        plan = FaultPlan.from_spec(
            "crash:card=1,at=0.1,repair=0.05;"
            "crash:card=2,at=0.3,repair=0.05",
            seed=7,
        )
        ivs = fault_intervals(plan, 1.0)
        assert len(ivs) == 2
        assert ivs[0].start_s == pytest.approx(0.1)
        assert ivs[0].end_s == pytest.approx(0.15)
        assert ivs[1].start_s == pytest.approx(0.3)
        assert ivs[1].end_s == pytest.approx(0.35)


class TestScoring:
    IV = (FaultInterval(0.1, 0.2),)

    def test_detection_with_ttd_and_ttc(self):
        report = score_detection(
            (_alert(0.14, cleared=0.225),), self.IV, span_s=0.5
        )
        assert report.detected
        assert report.time_to_detect_s == pytest.approx(0.04)
        assert report.time_to_clear_s == pytest.approx(0.025)
        assert report.false_positives == 0
        assert report.false_negatives == 0

    def test_no_alerts_is_a_false_negative(self):
        report = score_detection((), self.IV, span_s=0.5)
        assert not report.detected
        assert report.false_negatives == 1
        assert report.time_to_detect_s is None
        assert report.time_to_clear_s is None

    def test_alert_outside_every_interval_is_false_positive(self):
        report = score_detection((_alert(0.4, cleared=0.45),), self.IV,
                                 span_s=0.5)
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert not report.detected

    def test_grace_attributes_late_fires(self):
        late = _alert(0.24, cleared=0.3)
        no_grace = score_detection((late,), self.IV, span_s=0.5)
        assert no_grace.false_positives == 1
        with_grace = score_detection((late,), self.IV, span_s=0.5,
                                     grace_s=0.06)
        assert with_grace.false_positives == 0
        assert with_grace.detected
        assert with_grace.time_to_detect_s == pytest.approx(0.14)

    def test_still_firing_alert_gives_no_clear_time(self):
        report = score_detection((_alert(0.15, cleared=None),), self.IV,
                                 span_s=0.5)
        assert report.detected
        assert report.time_to_clear_s is None

    def test_clear_before_repair_is_zero_lag(self):
        report = score_detection((_alert(0.12, cleared=0.15),), self.IV,
                                 span_s=0.5)
        assert report.time_to_clear_s == 0.0

    def test_empty_plan_makes_every_alert_a_false_positive(self):
        report = score_detection(
            (_alert(0.1, cleared=0.2), _alert(0.3, cleared=0.4)), (),
            span_s=0.5,
        )
        assert report.false_positives == 2
        assert report.false_negatives == 0
        assert not report.detected  # nothing to detect

    def test_first_match_attribution_across_intervals(self):
        ivs = (FaultInterval(0.1, 0.2), FaultInterval(0.4, 0.5))
        report = score_detection(
            (_alert(0.15, cleared=0.25), _alert(0.45, cleared=0.55)), ivs,
            span_s=1.0,
        )
        assert report.detected
        # TTD from the earliest interval, clear lag from the last.
        assert report.time_to_detect_s == pytest.approx(0.05)
        assert report.time_to_clear_s == pytest.approx(0.05)

    def test_to_dict_shape(self):
        report = score_detection((_alert(0.14, cleared=0.22),), self.IV,
                                 span_s=0.5)
        d = report.to_dict()
        assert d["intervals"] == [{"start_s": 0.1, "end_s": 0.2}]
        assert d["detected"] is True
