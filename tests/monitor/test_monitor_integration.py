"""Monitor on a live serving replay: attach/finalize, byte-identity,
alert publication into telemetry."""

from __future__ import annotations

import pytest

from repro.analysis.serving import generate_serving_report, serving_report_dict
from repro.errors import ValidationError
from repro.faults import FaultPlan
from repro.monitor import Monitor, MonitorConfig, monitor_result_dict
from repro.monitor.core import CARDS_UP_SERIES
from repro.telemetry import Telemetry
from repro.workloads.scenarios import PaperScenario

#: Small but non-trivial replay: ~100 ms of traffic on 4 cards.
KW = dict(
    n_requests=400,
    rate_hz=4000.0,
    n_cards=4,
    max_batch=64,
    queue_depth=512,
    n_states=64,
    seed=7,
)

#: A straggler-then-crash plan that breaches the latency SLO (the bare
#: crash is latency-invisible — dispatch steers around the dead card).
LOUD_FAULTS = (
    "slow:card=1,at=0.05,for=0.1,factor=60;crash:card=1,at=0.1,repair=0.1"
)


@pytest.fixture(scope="module")
def small_scenario():
    return PaperScenario(n_rates=64, n_options=10)


@pytest.fixture(scope="module")
def monitored_faulted(small_scenario):
    monitor = Monitor()
    report = generate_serving_report(
        small_scenario,
        faults=FaultPlan.from_spec(LOUD_FAULTS, seed=7),
        monitor=monitor,
        **KW,
    )
    return report, monitor


class TestLifecycle:
    def test_result_populated_after_serve(self, monitored_faulted):
        _, monitor = monitored_faulted
        result = monitor.result
        assert result is not None
        assert result.span_s > 0.1
        assert len(result.statuses) == len(result.config.objectives)

    def test_series_bank_contents(self, monitored_faulted):
        _, monitor = monitored_faulted
        series = monitor.result.series
        assert CARDS_UP_SERIES in series
        assert "serving_batches_total" in series
        assert "latency:quote" in series
        assert "deadline_miss" in series
        assert "shed" in series

    def test_cards_up_probe_sees_the_crash(self, monitored_faulted):
        _, monitor = monitored_faulted
        cards_up = monitor.result.series[CARDS_UP_SERIES]
        assert min(cards_up.values) == 3.0  # one card down
        assert max(cards_up.values) == 4.0

    def test_faulted_run_fires_and_scores(self, monitored_faulted):
        _, monitor = monitored_faulted
        result = monitor.result
        assert result.n_alerts >= 1
        det = result.detection
        assert det is not None
        assert det.detected
        assert det.false_positives == 0

    def test_monitor_cannot_attach_twice(self, small_scenario,
                                         monitored_faulted):
        _, monitor = monitored_faulted
        with pytest.raises(ValidationError):
            generate_serving_report(small_scenario, monitor=monitor, **KW)

    def test_finalize_requires_attach(self):
        with pytest.raises(ValidationError):
            Monitor().finalize(None)


class TestByteIdentity:
    def test_monitored_report_identical_to_unmonitored(self, small_scenario):
        volatile = {"host_seconds", "requests_per_sec_host"}

        def strip(d):
            return {k: v for k, v in d.items() if k not in volatile}

        plain = generate_serving_report(small_scenario, **KW)
        monitored = generate_serving_report(
            small_scenario, monitor=Monitor(), **KW
        )
        assert strip(serving_report_dict(plain)) == strip(
            serving_report_dict(monitored)
        )

    def test_unfaulted_monitor_has_no_detection(self, small_scenario):
        monitor = Monitor()
        generate_serving_report(small_scenario, monitor=monitor, **KW)
        assert monitor.result.detection is None
        assert monitor.result.series[CARDS_UP_SERIES].values[0] == 4.0


class TestPublication:
    def test_alerts_become_spans_and_counters(self, small_scenario):
        telemetry = Telemetry.recording()
        monitor = Monitor()
        generate_serving_report(
            small_scenario,
            faults=FaultPlan.from_spec(LOUD_FAULTS, seed=7),
            monitor=monitor,
            telemetry=telemetry,
            **KW,
        )
        assert monitor.result.n_alerts >= 1
        alert_spans = [
            s for s in telemetry.recorder.spans if s.track == "alerts"
        ]
        assert len(alert_spans) == monitor.result.n_alerts
        assert all(s.category == "alert" for s in alert_spans)
        keys = [
            k for k in telemetry.metrics.names()
            if k.startswith("monitor_alerts_total")
        ]
        assert keys  # one labelled counter per breached objective


class TestResultDict:
    def test_series_excluded_by_default(self, monitored_faulted):
        _, monitor = monitored_faulted
        d = monitor_result_dict(monitor.result)
        assert "series" not in d
        full = monitor_result_dict(monitor.result, series=True)
        assert CARDS_UP_SERIES in full["series"]

    def test_custom_config_flows_through(self, small_scenario):
        config = MonitorConfig(sample_period_s=1e-2, tick_s=1e-2)
        monitor = Monitor(config)
        generate_serving_report(small_scenario, monitor=monitor, **KW)
        d = monitor_result_dict(monitor.result)
        assert d["sample_period_s"] == 1e-2
        assert d["tick_s"] == 1e-2
