"""The perf watchdog: tolerance policies and the bench-check gate.

Measurement is decoupled from judgment: every test here feeds
pre-measured "fresh" snapshots through :func:`bench_check`, so the
watchdog's verdict logic is exercised without re-running benchmarks.
The CI tier-2 job runs the real measurement path.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.monitor.regress import (
    GATEWAY_CHECKS,
    RISK_CHECKS,
    SERVING_CHECKS,
    CheckResult,
    Tolerance,
    bench_check,
    compare_snapshots,
    render_check_results,
)


class TestTolerance:
    def test_higher_is_better(self):
        tol = Tolerance(rel=0.1, direction="higher-is-better")
        assert tol.ok(100.0, 95.0)  # within 10% below
        assert tol.ok(100.0, 150.0)  # improvement never fails
        assert not tol.ok(100.0, 85.0)

    def test_lower_is_better(self):
        tol = Tolerance(rel=0.1, direction="lower-is-better")
        assert tol.ok(10.0, 10.5)
        assert tol.ok(10.0, 1.0)
        assert not tol.ok(10.0, 12.0)

    def test_two_sided(self):
        tol = Tolerance(rel=0.1, direction="two-sided")
        assert tol.ok(100.0, 105.0)
        assert not tol.ok(100.0, 120.0)
        assert not tol.ok(100.0, 80.0)

    def test_abs_and_rel_combine(self):
        tol = Tolerance(rel=0.0, abs=0.5, direction="lower-is-better")
        assert tol.ok(0.0, 0.4)
        assert not tol.ok(0.0, 0.6)

    def test_bad_direction_raises(self):
        with pytest.raises(ValidationError):
            Tolerance(direction="sideways")

    def test_negative_slack_raises(self):
        with pytest.raises(ValidationError):
            Tolerance(rel=-0.1)


class TestCompare:
    def test_missing_metric_fails_the_check(self):
        results = compare_snapshots(
            "b", {"x": 1.0}, {},
            {"x": Tolerance(direction="two-sided")},
        )
        assert len(results) == 1
        assert not results[0].ok
        assert "fresh" in results[0].detail

    def test_dotted_paths(self):
        committed = {"coalesced": {"goodput_rps": 100.0}}
        fresh = {"coalesced": {"goodput_rps": 99.5}}
        results = compare_snapshots(
            "b", committed, fresh,
            {"coalesced.goodput_rps": Tolerance(rel=0.01)},
        )
        assert results[0].ok

    def test_check_result_to_dict(self):
        r = CheckResult("b", "m", 1.0, 2.0, False, "d")
        assert r.to_dict()["metric"] == "m"


@pytest.fixture()
def bench_files(tmp_path):
    serving = {
        "coalesced": {
            "goodput_rps": 59684.5,
            "p99_ms": 1.743,
            "shed_rate": 0.0,
            "deadline_hit_rate": 1.0,
            "n_dispatches": 389,
            "mean_batch_requests": 30.85,
        },
        "batch1": {"goodput_rps": 6342.6},
        "goodput_ratio": 9.41,
    }
    risk = {"speedup": 4.99}
    gateway = {
        "cached": {
            "goodput_rps": 108173.9,
            "cache_hit_rate": 0.585,
            "p99_ms": 71.364,
            "shed_rate": 0.1823,
        },
        "uncached": {"goodput_rps": 19434.8},
        "goodput_ratio": 5.57,
    }
    serving_path = tmp_path / "BENCH_serving.json"
    risk_path = tmp_path / "BENCH_risk.json"
    gateway_path = tmp_path / "BENCH_gateway.json"
    serving_path.write_text(json.dumps(serving))
    risk_path.write_text(json.dumps(risk))
    gateway_path.write_text(json.dumps(gateway))
    return {
        "paths": (serving_path, risk_path, gateway_path),
        "fresh": {"serving": serving, "risk": risk, "gateway": gateway},
    }


def _check(bench_files, *, fresh=None, only=None):
    serving_path, risk_path, gateway_path = bench_files["paths"]
    return bench_check(
        serving_path=serving_path,
        risk_path=risk_path,
        gateway_path=gateway_path,
        only=only,
        fresh=fresh if fresh is not None else bench_files["fresh"],
    )


class TestBenchCheck:
    def test_identical_snapshots_pass(self, bench_files):
        code, results = _check(bench_files)
        assert code == 0
        assert all(r.ok for r in results)
        assert len(results) == (
            len(SERVING_CHECKS) + len(RISK_CHECKS) + len(GATEWAY_CHECKS)
        )

    def test_goodput_regression_fails(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["serving"]["coalesced"]["goodput_rps"] *= 0.8
        code, results = _check(bench_files, fresh=fresh)
        assert code == 1
        failing = [r for r in results if not r.ok]
        assert [r.metric for r in failing] == ["coalesced.goodput_rps"]

    def test_goodput_improvement_passes(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["serving"]["coalesced"]["goodput_rps"] *= 1.5
        fresh["serving"]["goodput_ratio"] *= 1.5
        code, _ = _check(bench_files, fresh=fresh)
        assert code == 0

    def test_latency_regression_fails(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["serving"]["coalesced"]["p99_ms"] *= 2.0
        code, _ = _check(bench_files, fresh=fresh)
        assert code == 1

    def test_risk_speedup_collapse_fails(self, bench_files):
        code, results = _check(
            bench_files, only="risk", fresh={"risk": {"speedup": 2.0}}
        )
        assert code == 1
        # Wall-clock wobble inside the generous floor still passes.
        code, _ = _check(
            bench_files, only="risk", fresh={"risk": {"speedup": 3.5}}
        )
        assert code == 0

    def test_cache_hit_rate_collapse_fails(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["gateway"]["cached"]["cache_hit_rate"] = 0.3
        code, results = _check(bench_files, fresh=fresh, only="gateway")
        assert code == 1
        failing = [r for r in results if not r.ok]
        assert [r.metric for r in failing] == ["cached.cache_hit_rate"]

    def test_gateway_ratio_regression_fails(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["gateway"]["goodput_ratio"] = 3.0
        code, _ = _check(bench_files, fresh=fresh, only="gateway")
        assert code == 1

    def test_uncached_improvement_passes(self, bench_files):
        # A faster raw path shrinks the ratio but is not a regression as
        # long as the cached side holds its own floor.
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["gateway"]["uncached"]["goodput_rps"] *= 1.3
        fresh["gateway"]["goodput_ratio"] = round(
            fresh["gateway"]["cached"]["goodput_rps"]
            / fresh["gateway"]["uncached"]["goodput_rps"],
            2,
        )
        code, _ = _check(bench_files, fresh=fresh, only="gateway")
        assert code == 1  # ratio floor is 5% — a 30% drop fails
        fresh["gateway"]["goodput_ratio"] = bench_files["fresh"]["gateway"][
            "goodput_ratio"
        ] * 0.97
        code, _ = _check(bench_files, fresh=fresh, only="gateway")
        assert code == 0

    def test_only_restricts_the_run(self, bench_files):
        code, results = _check(
            bench_files, only="serving",
            fresh={"serving": bench_files["fresh"]["serving"]},
        )
        assert code == 0
        assert {r.benchmark for r in results} == {"serving"}
        code, results = _check(
            bench_files, only="gateway",
            fresh={"gateway": bench_files["fresh"]["gateway"]},
        )
        assert code == 0
        assert {r.benchmark for r in results} == {"gateway"}

    def test_bad_only_raises(self):
        with pytest.raises(ValidationError):
            bench_check(only="gpu")

    def test_missing_bench_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            bench_check(
                serving_path=tmp_path / "nope.json", only="serving",
                fresh={"serving": {}},
            )

    def test_render_marks_failures(self, bench_files):
        fresh = json.loads(json.dumps(bench_files["fresh"]))
        fresh["serving"]["coalesced"]["goodput_rps"] *= 0.5
        _, results = _check(bench_files, fresh=fresh, only="serving")
        text = render_check_results(results)
        assert "FAIL" in text
        assert "1 failing" in text


class TestCommittedBenchFiles:
    """The repo's own BENCH files must satisfy the watchdog's schema."""

    def test_committed_files_carry_every_checked_metric(self):
        from pathlib import Path

        from repro.monitor.regress import _lookup

        root = Path(__file__).resolve().parents[2]
        serving = json.loads((root / "BENCH_serving.json").read_text())
        risk = json.loads((root / "BENCH_risk.json").read_text())
        gateway = json.loads((root / "BENCH_gateway.json").read_text())
        for metric in SERVING_CHECKS:
            assert _lookup(serving, metric) is not None, metric
        for metric in RISK_CHECKS:
            assert _lookup(risk, metric) is not None, metric
        for metric in GATEWAY_CHECKS:
            assert _lookup(gateway, metric) is not None, metric
