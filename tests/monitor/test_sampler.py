"""The sampler: grid alignment, as-of semantics, probes, flushing."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.monitor.sampler import MetricsSampler
from repro.sim import Simulation
from repro.telemetry import MetricsRegistry


def _run(events, *, period_s=1.0, names=None, finish_at=None, probes=()):
    """Drive a tiny simulation: ``events`` is [(t, fn(registry))]."""
    registry = MetricsRegistry()
    sampler = MetricsSampler(registry, period_s=period_s, names=names)
    for name, fn in probes:
        sampler.add_probe(name, fn)
    sim = Simulation()
    sampler.attach(sim)
    for t, fn in events:
        sim.schedule_at(t, lambda _p, fn=fn: fn(registry))
    sim.run()
    if finish_at is not None:
        sampler.finish(finish_at)
    return sampler


class TestSampling:
    def test_samples_land_on_grid(self):
        inc = lambda reg: reg.counter("hits_total", "h").inc()  # noqa: E731
        sampler = _run(
            [(0.4, inc), (1.2, inc), (2.7, inc), (3.1, inc)],
            finish_at=4.0,
        )
        series = sampler.series["hits_total"]
        assert series.times == (1.0, 2.0, 3.0, 4.0)

    def test_sample_is_as_of_the_boundary(self):
        # The event AT t=1.0 must not be included in the t=1.0 sample:
        # the hook fires before the callback runs.
        inc = lambda reg: reg.counter("hits_total", "h").inc()  # noqa: E731
        sampler = _run([(0.5, inc), (1.0, inc)], finish_at=2.0)
        series = sampler.series["hits_total"]
        assert series.times == (1.0, 2.0)
        assert series.values == (1.0, 2.0)

    def test_counter_series_kind(self):
        inc = lambda reg: reg.counter("hits_total", "h").inc()  # noqa: E731
        gset = lambda reg: reg.gauge("depth", "d").set(7.0)  # noqa: E731
        sampler = _run([(0.1, inc), (0.2, gset)], finish_at=1.0)
        assert sampler.series["hits_total"].kind == "counter"
        assert sampler.series["depth"].kind == "gauge"

    def test_name_filter_matches_bare_name_of_labelled_metrics(self):
        def fn(reg):
            reg.counter("rows_total", "r", labels={"card": "0"}).inc(5)
            reg.counter("rows_total", "r", labels={"card": "1"}).inc(7)
            reg.counter("other_total", "o").inc()

        sampler = _run([(0.1, fn)], names=("rows_total",), finish_at=1.0)
        keys = set(sampler.series)
        assert keys == {'rows_total{card="0"}', 'rows_total{card="1"}'}

    def test_histograms_are_not_sampled(self):
        def fn(reg):
            reg.histogram("lat_seconds", "l").observe(0.1)
            reg.counter("hits_total", "h").inc()

        sampler = _run([(0.1, fn)], finish_at=1.0)
        assert set(sampler.series) == {"hits_total"}


class TestProbes:
    def test_probe_sampled_at_each_boundary(self):
        sampler = _run(
            [(0.5, lambda reg: None), (2.5, lambda reg: None)],
            probes=[("cards_up", lambda t: 4.0 if t < 2.0 else 3.0)],
            finish_at=3.0,
        )
        series = sampler.series["cards_up"]
        assert series.times == (1.0, 2.0, 3.0)
        assert series.values == (4.0, 3.0, 3.0)

    def test_duplicate_probe_raises(self):
        sampler = MetricsSampler(MetricsRegistry(), period_s=1.0)
        sampler.add_probe("p", lambda t: 0.0)
        with pytest.raises(ValidationError):
            sampler.add_probe("p", lambda t: 0.0)


class TestFinish:
    def test_finish_flushes_remaining_boundaries(self):
        inc = lambda reg: reg.counter("hits_total", "h").inc()  # noqa: E731
        sampler = _run([(0.5, inc)], finish_at=3.0)
        series = sampler.series["hits_total"]
        assert series.times == (1.0, 2.0, 3.0)
        # Post-run boundaries carry the final state.
        assert series.values == (1.0, 1.0, 1.0)

    def test_finish_is_idempotent(self):
        inc = lambda reg: reg.counter("hits_total", "h").inc()  # noqa: E731
        sampler = _run([(0.5, inc)], finish_at=2.0)
        before = sampler.series["hits_total"].times
        sampler.finish(5.0)
        assert sampler.series["hits_total"].times == before

    def test_get_returns_none_for_unknown(self):
        sampler = MetricsSampler(MetricsRegistry(), period_s=1.0)
        assert sampler.get("missing") is None

    def test_bad_period_raises(self):
        with pytest.raises(ValidationError):
            MetricsSampler(MetricsRegistry(), period_s=0.0)
