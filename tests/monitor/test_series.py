"""The time-series layer: windows, aggregates, rates, invariants."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.monitor.series import Point, TimeSeries, quantile


class TestQuantile:
    def test_single_value(self):
        assert quantile([3.0], 0.5) == 3.0
        assert quantile([3.0], 0.0) == 3.0
        assert quantile([3.0], 1.0) == 3.0

    def test_interpolates(self):
        assert quantile([0.0, 10.0], 0.5) == 5.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 9.0

    def test_unsorted_input_is_sorted(self):
        assert quantile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValidationError):
            quantile([1.0], 1.5)


class TestTimeSeries:
    def test_append_and_props(self):
        s = TimeSeries("x")
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert len(s) == 2
        assert s.times == (1.0, 2.0)
        assert s.values == (10.0, 20.0)
        assert s.start_s == 1.0 and s.end_s == 2.0
        assert s.points[0] == Point(1.0, 10.0)

    def test_time_must_not_decrease(self):
        s = TimeSeries("x")
        s.append(2.0, 1.0)
        with pytest.raises(ValidationError):
            s.append(1.0, 1.0)

    def test_equal_times_allowed(self):
        s = TimeSeries("x")
        s.append(1.0, 1.0)
        s.append(1.0, 2.0)
        assert len(s) == 2

    def test_bad_kind_raises(self):
        with pytest.raises(ValidationError):
            TimeSeries("x", kind="delta")

    def test_value_at_is_step_function(self):
        s = TimeSeries("x")
        s.extend([(1.0, 10.0), (3.0, 30.0)])
        assert math.isnan(s.value_at(0.5))
        assert s.value_at(1.0) == 10.0
        assert s.value_at(2.9) == 10.0
        assert s.value_at(3.0) == 30.0
        assert s.value_at(99.0) == 30.0

    def test_between_half_open_left(self):
        s = TimeSeries("x")
        s.extend([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        # (1, 3] excludes the point at the left edge, includes the right.
        assert s.between(1.0, 3.0) == [2.0, 3.0]
        assert s.between(0.0, 1.0) == [1.0]
        assert s.between(3.0, 9.0) == []

    def test_empty_series_is_falsy(self):
        s = TimeSeries("x")
        assert not s
        assert math.isnan(s.start_s)


class TestTumbling:
    def test_buckets_tile_without_double_counting(self):
        s = TimeSeries("x", kind="event")
        s.extend([(0.5, 1.0), (1.0, 2.0), (1.5, 3.0), (2.0, 4.0)])
        out = s.tumbling(1.0, "sum")
        # Bucket (0,1] holds 0.5 and 1.0; (1,2] holds 1.5 and 2.0.
        assert out.times == (1.0, 2.0)
        assert out.values == (3.0, 7.0)

    def test_empty_bucket_is_nan_except_count(self):
        s = TimeSeries("x", kind="event")
        s.extend([(0.5, 1.0), (2.5, 1.0)])
        means = s.tumbling(1.0, "mean")
        assert math.isnan(means.values[1])
        counts = s.tumbling(1.0, "count")
        assert counts.values == (1.0, 0.0, 1.0)

    def test_quantile_aggregator(self):
        s = TimeSeries("x", kind="event")
        s.extend([(0.1 * i, float(i)) for i in range(1, 10)])
        out = s.tumbling(1.0, "p50")
        assert out.values == (5.0,)

    def test_explicit_end_extends_grid(self):
        s = TimeSeries("x", kind="event")
        s.append(0.5, 1.0)
        out = s.tumbling(1.0, "count", end_s=3.0)
        assert out.times == (1.0, 2.0, 3.0)

    def test_bad_width_raises(self):
        with pytest.raises(ValidationError):
            TimeSeries("x").tumbling(0.0)


class TestSliding:
    def test_overlapping_windows(self):
        s = TimeSeries("x", kind="event")
        s.extend([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        out = s.sliding(2.0, 1.0, "sum")
        assert out.times == (1.0, 2.0, 3.0)
        # Trailing (t-2, t]: at t=2 holds both 1.0 and 2.0.
        assert out.values == (1.0, 3.0, 5.0)

    def test_unknown_aggregator_raises(self):
        s = TimeSeries("x")
        s.append(1.0, 1.0)
        with pytest.raises(ValidationError):
            s.sliding(1.0, 1.0, "median")
        with pytest.raises(ValidationError):
            s.sliding(1.0, 1.0, "pxx")


class TestRate:
    def test_counter_rate(self):
        s = TimeSeries("c", kind="counter")
        s.extend([(1.0, 0.0), (2.0, 10.0), (4.0, 10.0), (5.0, 13.0)])
        out = s.rate()
        assert out.times == (2.0, 4.0, 5.0)
        assert out.values == (10.0, 0.0, 3.0)

    def test_rate_requires_counter(self):
        s = TimeSeries("g", kind="gauge")
        s.extend([(1.0, 1.0), (2.0, 2.0)])
        with pytest.raises(ValidationError):
            s.rate()

    def test_rate_rejects_decrease(self):
        s = TimeSeries("c", kind="counter")
        s.extend([(1.0, 5.0), (2.0, 3.0)])
        with pytest.raises(ValidationError):
            s.rate()


class TestSerialisation:
    def test_to_dict_round_trip_shape(self):
        s = TimeSeries("x", kind="counter")
        s.extend([(1.0, 2.0), (3.0, 4.0)])
        d = s.to_dict()
        assert d == {"name": "x", "kind": "counter", "t": [1.0, 3.0],
                     "v": [2.0, 4.0]}

    def test_from_events_sorts(self):
        s = TimeSeries.from_events("e", [(3.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        assert s.kind == "event"
        assert s.times == (1.0, 2.0, 3.0)
        assert s.values == (2.0, 3.0, 1.0)
