"""The SLO engine: objectives, burn rates, multi-window alert rules.

Unit tests drive :func:`evaluate_objective` with hand-built event
streams (a stand-in result object carrying ``responses``/``sheds``/
``fails``), so every burn-rate number here is checkable by hand.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import ValidationError
from repro.monitor.series import TimeSeries
from repro.monitor.slo import (
    DEFAULT_RULES,
    BurnRateRule,
    Objective,
    evaluate_objective,
)


def _resp(t, latency=1e-3, kind="quote", met=True):
    return SimpleNamespace(
        completion_s=t, latency_s=latency, kind=kind, met_deadline=met
    )


def _result(responses=(), sheds=(), fails=()):
    return SimpleNamespace(
        responses=list(responses), sheds=list(sheds), fails=list(fails)
    )


class TestObjective:
    def test_budget_is_complement_of_target(self):
        obj = Objective(name="o", sli="deadline", target=0.9)
        assert obj.budget == pytest.approx(0.1)

    def test_unknown_sli_raises(self):
        with pytest.raises(ValidationError):
            Objective(name="o", sli="uptime", target=0.9)

    def test_target_bounds(self):
        with pytest.raises(ValidationError):
            Objective(name="o", sli="shed", target=1.0)
        with pytest.raises(ValidationError):
            Objective(name="o", sli="shed", target=0.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValidationError):
            Objective(name="o", sli="latency", target=0.99)

    def test_describe_mentions_threshold_and_kind(self):
        obj = Objective(
            name="o", sli="latency", target=0.99, kind="quote",
            threshold_s=15e-3,
        )
        assert "quote" in obj.describe()
        assert "15 ms" in obj.describe()


class TestBurnRateRule:
    def test_short_must_not_exceed_long(self):
        with pytest.raises(ValidationError):
            BurnRateRule(long_s=0.01, short_s=0.05, burn=2.0)

    def test_positive_windows_and_burn(self):
        with pytest.raises(ValidationError):
            BurnRateRule(long_s=0.0, short_s=0.0, burn=2.0)
        with pytest.raises(ValidationError):
            BurnRateRule(long_s=1.0, short_s=0.5, burn=0.0)

    def test_defaults_are_two_tier(self):
        assert len(DEFAULT_RULES) == 2
        fast, slow = DEFAULT_RULES
        assert fast.burn > slow.burn
        assert fast.long_s < slow.long_s


class TestEvaluate:
    RULES = (BurnRateRule(long_s=1.0, short_s=0.5, burn=2.0),)

    def test_clean_stream_fires_nothing(self):
        result = _result(responses=[_resp(0.1 * i) for i in range(1, 50)])
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.9,
                      threshold_s=1.0),
            result,
            rules=self.RULES,
            tick_s=0.5,
            span_s=5.0,
        )
        assert status.alerts == ()
        assert status.met
        assert status.good_fraction == 1.0
        assert status.budget_spent == 0.0

    def test_sustained_badness_fires_and_clears(self):
        # 10 good events per second everywhere; all events in (2, 4)
        # are slow → windowed bad fraction 1.0, burn 10x budget.
        responses = []
        for i in range(80):
            t = 0.1 + i * 0.1
            responses.append(_resp(t, latency=2.0 if 2.0 < t < 4.0 else 0.1))
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.9,
                      threshold_s=1.0),
            _result(responses=responses),
            rules=self.RULES,
            tick_s=0.5,
            span_s=8.0,
        )
        assert len(status.alerts) == 1
        alert = status.alerts[0]
        # At tick 2.5 the long window (1.5, 2.5] already holds 5 bad of
        # 10 events (burn 5x) and the short window is entirely bad.
        assert alert.fired_s == pytest.approx(2.5)
        assert alert.cleared_s is not None and alert.cleared_s > 4.0
        assert alert.peak_burn >= 2.0
        assert not status.met  # 19/79 bad blows a 10% budget

    def test_short_window_gates_the_long(self):
        # Badness confined to (0, 1): by t=2 the long window still sees
        # it but the short window is clean, so nothing may fire at 2.
        responses = [
            _resp(0.1 + i * 0.1, latency=2.0 if i < 10 else 0.1)
            for i in range(40)
        ]
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.5,
                      threshold_s=1.0),
            _result(responses=responses),
            rules=(BurnRateRule(long_s=2.0, short_s=0.5, burn=1.5),),
            tick_s=2.0,
            span_s=4.0,
        )
        assert status.alerts == ()

    def test_still_firing_alert_has_no_clear(self):
        responses = [_resp(0.1 + i * 0.1, latency=2.0) for i in range(20)]
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.9,
                      threshold_s=1.0),
            _result(responses=responses),
            rules=self.RULES,
            tick_s=0.5,
            span_s=2.0,
        )
        assert len(status.alerts) == 1
        assert status.alerts[0].cleared_s is None

    def test_kind_filter(self):
        responses = [
            _resp(0.5, latency=2.0, kind="var"),
            _resp(1.0, latency=0.1, kind="quote"),
        ]
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.9, kind="quote",
                      threshold_s=1.0),
            _result(responses=responses),
            rules=self.RULES,
            tick_s=1.0,
            span_s=2.0,
        )
        assert status.n_events == 1
        assert status.bad_mass == 0.0

    def test_deadline_sli(self):
        responses = [_resp(0.5, met=False), _resp(1.0), _resp(1.5)]
        status = evaluate_objective(
            Objective(name="dl", sli="deadline", target=0.5),
            _result(responses=responses),
            rules=self.RULES,
            tick_s=1.0,
            span_s=2.0,
        )
        assert status.n_events == 3
        assert status.bad_mass == 1.0
        assert status.met  # 2/3 good >= 0.5

    def test_shed_sli_counts_arrivals(self):
        sheds = [SimpleNamespace(time_s=0.5)]
        fails = [SimpleNamespace(time_s=0.7)]
        status = evaluate_objective(
            Objective(name="shed", sli="shed", target=0.6),
            _result(responses=[_resp(1.0), _resp(1.5)], sheds=sheds,
                    fails=fails),
            rules=self.RULES,
            tick_s=1.0,
            span_s=2.0,
        )
        assert status.n_events == 4
        assert status.bad_mass == 2.0
        assert not status.met  # 50% good < 60% target

    def test_availability_uses_fractional_bad_mass(self):
        avail = TimeSeries("cards_up")
        avail.extend([(1.0, 4.0), (2.0, 3.0), (3.0, 4.0)])
        status = evaluate_objective(
            Objective(name="avail", sli="availability", target=0.9),
            _result(),
            rules=self.RULES,
            tick_s=1.0,
            span_s=3.0,
            availability=avail,
            n_cards=4,
        )
        assert status.n_events == 3
        assert status.bad_mass == pytest.approx(0.25)
        assert status.good_fraction == pytest.approx(1.0 - 0.25 / 3)

    def test_availability_without_series_is_empty(self):
        status = evaluate_objective(
            Objective(name="avail", sli="availability", target=0.9),
            _result(),
            rules=self.RULES,
            tick_s=1.0,
            span_s=2.0,
        )
        assert status.n_events == 0
        assert status.good_fraction == 1.0
        assert status.met

    def test_requires_rules_and_positive_tick(self):
        obj = Objective(name="dl", sli="deadline", target=0.5)
        with pytest.raises(ValidationError):
            evaluate_objective(obj, _result(), rules=(), tick_s=1.0,
                               span_s=1.0)
        with pytest.raises(ValidationError):
            evaluate_objective(obj, _result(), rules=self.RULES, tick_s=0.0,
                               span_s=1.0)

    def test_failed_requests_count_as_bad_latency_events(self):
        fails = [
            SimpleNamespace(time_s=0.5, request=SimpleNamespace(kind="quote"))
        ]
        status = evaluate_objective(
            Objective(name="lat", sli="latency", target=0.9, kind="quote",
                      threshold_s=1.0),
            _result(responses=[_resp(1.0)], fails=fails),
            rules=self.RULES,
            tick_s=1.0,
            span_s=2.0,
        )
        assert status.n_events == 2
        assert status.bad_mass == 1.0


class TestTenantScope:
    RULES = (BurnRateRule(long_s=1.0, short_s=0.5, burn=2.0),)

    def _obj(self, tenant):
        return Objective(name="dl", sli="deadline", target=0.5,
                         tenant=tenant)

    def test_tenant_objective_filters_events(self):
        responses = [
            SimpleNamespace(completion_s=0.5, latency_s=1e-3, kind="quote",
                            met_deadline=False, tenant="gold"),
            SimpleNamespace(completion_s=1.0, latency_s=1e-3, kind="quote",
                            met_deadline=True, tenant="bronze"),
        ]
        status = evaluate_objective(
            self._obj("gold"), _result(responses=responses),
            rules=self.RULES, tick_s=1.0, span_s=2.0,
        )
        assert status.n_events == 1
        assert status.bad_mass == 1.0

    def test_unscoped_objective_sees_every_tenant(self):
        responses = [
            SimpleNamespace(completion_s=0.5, latency_s=1e-3, kind="quote",
                            met_deadline=True, tenant="gold"),
            _resp(1.0),  # no tenant attribute at all
        ]
        status = evaluate_objective(
            self._obj(None), _result(responses=responses),
            rules=self.RULES, tick_s=1.0, span_s=2.0,
        )
        assert status.n_events == 2

    def test_tenant_filter_reads_shed_and_fail_requests(self):
        sheds = [SimpleNamespace(
            time_s=0.5, request=SimpleNamespace(tenant="gold"))]
        fails = [SimpleNamespace(
            time_s=0.7, request=SimpleNamespace(tenant="bronze"))]
        status = evaluate_objective(
            Objective(name="shed", sli="shed", target=0.6, tenant="gold"),
            _result(sheds=sheds, fails=fails),
            rules=self.RULES, tick_s=1.0, span_s=2.0,
        )
        assert status.n_events == 1
        assert status.bad_mass == 1.0

    def test_describe_mentions_tenant(self):
        assert "gold" in self._obj("gold").describe()

    def test_to_dict_carries_tenant_only_when_scoped(self):
        scoped = evaluate_objective(
            self._obj("gold"), _result(), rules=self.RULES,
            tick_s=1.0, span_s=1.0,
        )
        unscoped = evaluate_objective(
            self._obj(None), _result(), rules=self.RULES,
            tick_s=1.0, span_s=1.0,
        )
        assert scoped.to_dict()["tenant"] == "gold"
        assert "tenant" not in unscoped.to_dict()


class TestTenantObjectives:
    def test_shape_and_names(self):
        from repro.monitor import tenant_objectives

        objs = tenant_objectives(("gold", "bronze"))
        assert len(objs) == 1 + 2 * 2
        assert objs[0].name == "card-availability"
        assert objs[0].tenant is None
        names = [o.name for o in objs[1:]]
        assert names == [
            "gold-quote-latency", "gold-deadline-hit",
            "bronze-quote-latency", "bronze-deadline-hit",
        ]
        assert all(o.tenant in ("gold", "bronze") for o in objs[1:])

    def test_latency_objectives_are_quote_scoped(self):
        from repro.monitor import tenant_objectives

        objs = tenant_objectives(("gold",))
        lat = [o for o in objs if o.sli == "latency"]
        assert len(lat) == 1
        assert lat[0].kind == "quote"
        assert lat[0].threshold_s == pytest.approx(15e-3)

    def test_empty_tenants_raises(self):
        from repro.monitor import tenant_objectives

        with pytest.raises(ValidationError):
            tenant_objectives(())
