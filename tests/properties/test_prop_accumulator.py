"""Property-based tests for the Listing-1 accumulator (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls.accumulator import interleaved_accumulate, naive_accumulate

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=300,
)


class TestFunctionalProperties:
    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_both_variants_near_fsum(self, values):
        exact = math.fsum(values)
        naive, _ = naive_accumulate(values)
        inter, _ = interleaved_accumulate(values)
        scale = max(1.0, math.fsum(abs(v) for v in values))
        assert abs(naive - exact) <= 1e-9 * scale
        assert abs(inter - exact) <= 1e-9 * scale

    @given(values=values_strategy, lanes=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_any_lane_count_correct(self, values, lanes):
        exact = math.fsum(values)
        total, _ = interleaved_accumulate(values, lanes=lanes)
        scale = max(1.0, math.fsum(abs(v) for v in values))
        assert abs(total - exact) <= 1e-9 * scale

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_permutation_of_magnitudes_bounded(self, values):
        """Reassociation error stays within a crude forward-error bound."""
        inter, _ = interleaved_accumulate(values)
        naive, _ = naive_accumulate(values)
        scale = math.fsum(abs(v) for v in values)
        assert abs(inter - naive) <= 1e-10 * max(1.0, scale)


class TestTimingProperties:
    @given(n=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=100, deadline=None)
    def test_interleaved_never_slower_at_scale(self, n):
        ones = np.ones(n)
        _, slow = naive_accumulate(ones)
        _, fast = interleaved_accumulate(ones)
        if n >= 20:
            assert fast < slow

    @given(n=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=100, deadline=None)
    def test_cycles_nonnegative_and_monotone(self, n):
        ones_n = np.ones(n)
        ones_n1 = np.ones(n + 1)
        for fn in (naive_accumulate, interleaved_accumulate):
            _, c_n = fn(ones_n)
            _, c_n1 = fn(ones_n1)
            assert 0.0 <= c_n <= c_n1

    @given(n=st.integers(min_value=1000, max_value=20000))
    @settings(max_examples=30, deadline=None)
    def test_asymptotic_speedup_is_adder_latency(self, n):
        _, slow = naive_accumulate(np.ones(n))
        _, fast = interleaved_accumulate(np.ones(n))
        assert 5.5 <= slow / fast <= 7.5
