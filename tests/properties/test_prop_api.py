"""Property tests pinning the unified API bit-identical to the old paths.

The PR-5 redesign routed every pricing flow through
:class:`repro.api.PricingSession`; these properties guarantee the
rewiring is *invisible to the floats*.  For each of the four registered
backends, session-mediated results are pinned **bit-identical**
(``assert_array_equal``, no tolerance) to the pre-redesign entry point
the backend wraps:

* ``vectorized``  — direct ``price_packed_book`` / ``price_packed_many``;
* ``cpu``         — the scalar ``CDSPricer`` loop;
* ``dataflow``    — the engine's direct ``run()``;
* ``cluster``     — the pre-redesign risk-engine shape: one
  ``price_packed_many`` call per ``shard_scenarios`` card chunk.

A final property pins the full risk pipeline: ``ScenarioRiskEngine``
revaluation through the session reproduces a hand-rolled pre-redesign
revaluation (pack, shard, kernel call per shard, PVs from legs) exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_session
from repro.core.pricing import BASIS_POINTS, CDSPricer
from repro.core.vector_pricing import (
    PackedPortfolio,
    price_packed_book,
    price_packed_many,
)
from repro.engines import VectorizedDataflowEngine
from repro.risk.engine import ScenarioRiskEngine, make_book
from repro.risk.scenarios import monte_carlo
from repro.risk.sharding import shard_scenarios
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()

book_strategy = st.tuples(
    st.sampled_from(["uniform", "skewed", "heterogeneous"]),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=1000),
)


class TestVectorizedSessionBitIdentity:
    @given(
        book=book_strategy,
        n_scenarios=st.integers(min_value=1, max_value=12),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        mc_seed=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=25, deadline=None)
    def test_tensor_matches_direct_kernel(
        self, book, n_scenarios, chunk_size, mc_seed
    ):
        workload, n, seed = book
        options = make_book(workload, n, seed=seed).options
        tensor = monte_carlo(
            YC, HC, n_scenarios, seed=mc_seed, recovery_vol=0.05
        ).tensor
        direct_spreads, direct_legs = price_packed_many(
            PackedPortfolio.pack(options),
            tensor.yield_times,
            tensor.yield_values,
            tensor.hazard_times,
            tensor.hazard_values,
            recovery_shifts=tensor.recovery_shifts,
            want_legs=True,
            chunk_size=chunk_size,
        )
        with open_session("vectorized", options) as session:
            result = session.price_tensor(
                tensor, want_legs=True, chunk_size=chunk_size
            )
        np.testing.assert_array_equal(result.spreads_bps, direct_spreads)
        for mediated, direct in zip(
            (
                result.legs.premium,
                result.legs.protection,
                result.legs.accrual,
                result.legs.survival_at_maturity,
            ),
            direct_legs,
        ):
            np.testing.assert_array_equal(mediated, direct)

    @given(book=book_strategy)
    @settings(max_examples=20, deadline=None)
    def test_state_matches_price_packed_book(self, book):
        workload, n, seed = book
        options = make_book(workload, n, seed=seed).options
        direct, _ = price_packed_book(
            PackedPortfolio.pack(options), YC, HC, want_legs=False
        )
        with open_session("vectorized", options) as session:
            np.testing.assert_array_equal(session.spreads(YC, HC), direct)


class TestCpuSessionBitIdentity:
    @given(book=book_strategy)
    @settings(max_examples=15, deadline=None)
    def test_state_matches_scalar_loop(self, book):
        workload, n, seed = book
        options = make_book(workload, n, seed=seed).options
        pricer = CDSPricer(yield_curve=YC, hazard_curve=HC)
        loop = np.asarray([pricer.price(o).spread_bps for o in options])
        with open_session("cpu", options) as session:
            np.testing.assert_array_equal(session.spreads(YC, HC), loop)

    @given(
        n_scenarios=st.integers(min_value=1, max_value=5),
        mc_seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=10, deadline=None)
    def test_negotiated_tensor_matches_scalar_loop(self, n_scenarios, mc_seed):
        options = make_book("heterogeneous", 3, seed=9).options
        shocks = monte_carlo(YC, HC, n_scenarios, seed=mc_seed)
        with open_session("cpu", options) as session:
            mediated = session.price_tensor(shocks.tensor).spreads_bps
        for i, s in enumerate(shocks):
            pricer = CDSPricer(
                yield_curve=s.yield_curve, hazard_curve=s.hazard_curve
            )
            loop = np.asarray([pricer.price(o).spread_bps for o in options])
            np.testing.assert_array_equal(mediated[i], loop)


class TestDataflowSessionBitIdentity:
    @given(
        n=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=8, deadline=None)
    def test_state_matches_engine_run(self, n, seed):
        options = make_book("uniform", n, seed=seed).options
        direct = VectorizedDataflowEngine(SC).run(options, YC, HC)
        with open_session("dataflow", options, scenario=SC) as session:
            result = session.price_state(YC, HC)
        np.testing.assert_array_equal(
            result.spreads_bps[0], direct.spreads_bps
        )
        # The simulated timing rides along unchanged.
        assert result.meta["engine_result"].kernel_cycles == direct.kernel_cycles


class TestClusterSessionBitIdentity:
    @given(
        book=book_strategy,
        n_scenarios=st.integers(min_value=1, max_value=14),
        n_cards=st.integers(min_value=1, max_value=5),
        policy=st.sampled_from(
            ["round-robin", "least-loaded", "work-stealing"]
        ),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        mc_seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=20, deadline=None)
    def test_tensor_matches_pre_redesign_shard_loop(
        self, book, n_scenarios, n_cards, policy, chunk_size, mc_seed
    ):
        """The cluster backend == the pre-redesign risk-engine batch path:
        one price_packed_many call per shard_scenarios card chunk."""
        workload, n, seed = book
        options = make_book(workload, n, seed=seed).options
        tensor = monte_carlo(
            YC, HC, n_scenarios, seed=mc_seed, recovery_vol=0.05
        ).tensor

        packed = PackedPortfolio.pack(options)
        expected = np.empty((n_scenarios, len(options)), dtype=np.float64)
        for chunk in shard_scenarios(n_scenarios, n_cards, policy):
            if not chunk:
                continue
            idx = np.asarray(chunk, dtype=np.intp)
            expected[idx], _ = price_packed_many(
                packed,
                tensor.yield_times,
                tensor.yield_values[idx],
                tensor.hazard_times,
                tensor.hazard_values[idx],
                recovery_shifts=tensor.recovery_shifts[idx],
                want_legs=False,
                chunk_size=chunk_size,
            )

        with open_session(
            "cluster", options, n_cards=n_cards, scheduler=policy
        ) as session:
            result = session.price_tensor(tensor, chunk_size=chunk_size)
        np.testing.assert_array_equal(result.spreads_bps, expected)

    @given(
        n_cards=st.integers(min_value=1, max_value=4),
        mc_seed=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=10, deadline=None)
    def test_card_count_never_changes_numbers(self, n_cards, mc_seed):
        options = make_book("skewed", 5, seed=13).options
        tensor = monte_carlo(YC, HC, 9, seed=mc_seed).tensor
        with open_session("vectorized", options) as session:
            flat = session.price_tensor(tensor).spreads_bps
        with open_session("cluster", options, n_cards=n_cards) as session:
            sharded = session.price_tensor(tensor).spreads_bps
        np.testing.assert_array_equal(sharded, flat)


class TestRiskEngineSessionBitIdentity:
    @given(
        book=book_strategy,
        n_scenarios=st.integers(min_value=1, max_value=10),
        n_cards=st.integers(min_value=1, max_value=4),
        mc_seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=12, deadline=None)
    def test_revaluation_matches_pre_redesign_pipeline(
        self, book, n_scenarios, n_cards, mc_seed
    ):
        """Full pre-redesign revaluation, hand-rolled: pack the book,
        resolve par spreads, one kernel call per card shard, PVs from the
        legs — must equal ScenarioRiskEngine through the session."""
        workload, n, seed = book
        portfolio = make_book(workload, n, seed=seed)
        engine = ScenarioRiskEngine(
            portfolio, YC, HC, scenario=SC, n_cards=n_cards
        )
        shocks = monte_carlo(YC, HC, n_scenarios, seed=mc_seed)
        rev = engine.revalue(shocks, with_timing=False)

        packed = PackedPortfolio.pack(portfolio.options)
        par, _ = price_packed_book(packed, YC, HC, want_legs=False)
        unit_spread = par / BASIS_POINTS
        tensor = shocks.tensor
        expected_pv = np.empty((n_scenarios, len(portfolio)))
        for chunk in shard_scenarios(n_scenarios, n_cards, "least-loaded"):
            if not chunk:
                continue
            idx = np.asarray(chunk, dtype=np.intp)
            _, legs = price_packed_many(
                packed,
                tensor.yield_times,
                tensor.yield_values[idx],
                tensor.hazard_times,
                tensor.hazard_values[idx],
                recovery_shifts=tensor.recovery_shifts[idx],
                want_legs=True,
            )
            premium, protection, accrual, _ = legs
            expected_pv[idx] = protection - unit_spread * (premium + accrual)

        np.testing.assert_array_equal(rev.pv, expected_pv)
        _, base_legs = price_packed_book(packed, YC, HC, want_legs=True)
        base_premium, base_protection, base_accrual, _ = base_legs
        base_pv = base_protection - unit_spread * (base_premium + base_accrual)
        np.testing.assert_array_equal(rev.base_pv, base_pv)
        np.testing.assert_array_equal(
            rev.pnl, (expected_pv - base_pv[None, :]) @ portfolio.notionals
        )
