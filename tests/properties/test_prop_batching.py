"""Property-based tests pinning batched repricing bit-identical to looping.

The batched scenario-tensor kernel is a pure throughput optimisation: for
any book, any scenario set, any chunk size and any cluster shape it must
produce **bit-identical** floats to the per-scenario ``price_packed``
loop.  These tests enforce that with ``numpy.testing.assert_array_equal``
(no tolerance) at three levels:

1. the raw kernel: ``price_packed_many`` versus a ``price_packed`` loop;
2. the batched curve evaluation: ``interp_many`` versus ``np.interp``;
3. the risk stack: engine PVs/P&L, VaR/ES and CS01/IR01 ladders with
   ``batch=True`` versus ``batch=False``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curves import HazardCurve, YieldCurve, interp_many
from repro.core.vector_pricing import (
    PackedPortfolio,
    price_packed,
    price_packed_many,
)
from repro.risk.engine import ScenarioRiskEngine, make_book
from repro.risk.measures import (
    cs01_ladder,
    expected_shortfall,
    ir01_ladder,
    tail_measures,
    value_at_risk,
)
from repro.risk.scenarios import monte_carlo
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()


class TestInterpManyMatchesNumpy:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_knots=st.integers(min_value=2, max_value=40),
        n_rows=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_np_interp(self, seed, n_knots, n_rows):
        gen = np.random.default_rng(seed)
        xp = np.cumsum(gen.uniform(0.05, 1.0, n_knots))
        fp = gen.normal(size=(n_rows, n_knots))
        # Interior points, exact knot hits, and both out-of-range sides.
        x = np.concatenate(
            [gen.uniform(-1.0, xp[-1] + 2.0, 64), xp, [xp[0], xp[-1]]]
        )
        batched = interp_many(x, xp, fp)
        for row in range(n_rows):
            np.testing.assert_array_equal(
                batched[row], np.interp(x, xp, fp[row])
            )


book_strategy = st.tuples(
    st.sampled_from(["uniform", "skewed", "heterogeneous"]),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=1000),
)


class TestKernelBitIdentity:
    @given(
        book=book_strategy,
        n_scenarios=st.integers(min_value=1, max_value=16),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
        mc_seed=st.integers(min_value=0, max_value=500),
        recovery_vol=st.sampled_from([0.0, 0.05]),
    )
    @settings(max_examples=25, deadline=None)
    def test_price_packed_many_matches_per_scenario_loop(
        self, book, n_scenarios, chunk_size, mc_seed, recovery_vol
    ):
        workload, n, seed = book
        packed = PackedPortfolio.pack(make_book(workload, n, seed=seed).options)
        shocks = monte_carlo(
            YC, HC, n_scenarios, seed=mc_seed, recovery_vol=recovery_vol
        )
        tensor = shocks.tensor
        spreads, legs = price_packed_many(
            packed,
            tensor.yield_times,
            tensor.yield_values,
            tensor.hazard_times,
            tensor.hazard_values,
            recovery_shifts=tensor.recovery_shifts,
            chunk_size=chunk_size,
        )
        for i, s in enumerate(shocks):
            recovery = packed.recovery
            if s.recovery_shift != 0.0:
                recovery = np.clip(recovery + s.recovery_shift, 0.0, 0.999)
            sp_i, legs_i = price_packed(
                packed.times,
                packed.accruals,
                packed.mask,
                recovery,
                s.yield_curve,
                s.hazard_curve,
            )
            np.testing.assert_array_equal(spreads[i], sp_i)
            for batched_leg, looped_leg in zip(legs, legs_i):
                np.testing.assert_array_equal(batched_leg[i], looped_leg)

    @given(
        n_scenarios=st.integers(min_value=1, max_value=12),
        chunk_a=st.one_of(st.none(), st.integers(min_value=1, max_value=15)),
        chunk_b=st.one_of(st.none(), st.integers(min_value=1, max_value=15)),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_chunking_is_invisible(self, n_scenarios, chunk_a, chunk_b, seed):
        packed = PackedPortfolio.pack(make_book("skewed", 5, seed=3).options)
        shocks = monte_carlo(YC, HC, n_scenarios, seed=seed)
        tensor = shocks.tensor
        results = [
            price_packed_many(
                packed,
                tensor.yield_times,
                tensor.yield_values,
                tensor.hazard_times,
                tensor.hazard_values,
                chunk_size=c,
            )
            for c in (chunk_a, chunk_b)
        ]
        np.testing.assert_array_equal(results[0][0], results[1][0])
        for leg_a, leg_b in zip(results[0][1], results[1][1]):
            np.testing.assert_array_equal(leg_a, leg_b)


class TestEngineBitIdentity:
    @given(
        book=book_strategy,
        n_scenarios=st.integers(min_value=1, max_value=16),
        n_cards=st.integers(min_value=1, max_value=5),
        policy=st.sampled_from(["round-robin", "least-loaded", "work-stealing"]),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
        mc_seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_revaluation_matches_loop(
        self, book, n_scenarios, n_cards, policy, chunk_size, mc_seed
    ):
        workload, n, seed = book
        engine = ScenarioRiskEngine(
            make_book(workload, n, seed=seed),
            YC,
            HC,
            scenario=SC,
            n_cards=n_cards,
            scheduler=policy,
        )
        shocks = monte_carlo(YC, HC, n_scenarios, seed=mc_seed, recovery_vol=0.03)
        batched = engine.revalue(
            shocks, with_timing=False, batch=True, chunk_size=chunk_size
        )
        looped = engine.revalue(shocks, with_timing=False, batch=False)
        np.testing.assert_array_equal(batched.pv, looped.pv)
        np.testing.assert_array_equal(batched.pnl, looped.pnl)

    @given(
        n_scenarios=st.integers(min_value=2, max_value=32),
        mc_seed=st.integers(min_value=0, max_value=500),
        confidence=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=20, deadline=None)
    def test_tail_measures_unchanged_by_batching(
        self, n_scenarios, mc_seed, confidence
    ):
        engine = ScenarioRiskEngine(make_book("uniform", 4, seed=1), YC, HC,
                                    scenario=SC)
        shocks = monte_carlo(YC, HC, n_scenarios, seed=mc_seed)
        pnl_b = engine.revalue(shocks, with_timing=False, batch=True).pnl
        pnl_l = engine.revalue(shocks, with_timing=False, batch=False).pnl
        assert value_at_risk(pnl_b, confidence) == value_at_risk(
            pnl_l, confidence
        )
        assert expected_shortfall(pnl_b, confidence) == expected_shortfall(
            pnl_l, confidence
        )
        # The single-sort fast path equals the per-call order statistics.
        (measure,) = tail_measures(pnl_b, (confidence,))
        assert measure.var == value_at_risk(pnl_b, confidence)
        assert measure.es == expected_shortfall(pnl_b, confidence)

    @given(book=book_strategy)
    @settings(max_examples=10, deadline=None)
    def test_ladders_unchanged_by_batching(self, book):
        workload, n, seed = book
        engine = ScenarioRiskEngine(
            make_book(workload, n, seed=seed), YC, HC, scenario=SC
        )
        assert cs01_ladder(engine, batch=True) == cs01_ladder(engine, batch=False)
        assert ir01_ladder(engine, batch=True) == ir01_ladder(engine, batch=False)


class TestKernelValidation:
    def test_bad_chunk_size_rejected(self):
        from repro.errors import ValidationError

        packed = PackedPortfolio.pack(make_book("uniform", 2, seed=0).options)
        shocks = monte_carlo(YC, HC, 2, seed=0)
        tensor = shocks.tensor
        with pytest.raises(ValidationError):
            price_packed_many(
                packed,
                tensor.yield_times,
                tensor.yield_values,
                tensor.hazard_times,
                tensor.hazard_values,
                chunk_size=0,
            )
