"""Property-based tests at the cluster level (hypothesis).

Two invariants: (1) every scheduling policy produces an exact partition of
any cost vector; (2) with an ideal host link (zero contention, zero
dispatch latency) cluster throughput is monotone non-decreasing in the
card count — adding hardware never slows the ideal cluster down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CDSCluster, HostLinkModel
from repro.cluster.scheduler import SCHEDULERS, make_scheduler, validate_partition
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
IDEAL_LINK = HostLinkModel(host_contention=0.0, dispatch_latency_s=0.0)

costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    min_size=0,
    max_size=60,
)


class TestPartitionProperties:
    @given(costs=costs_strategy, n_cards=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_every_policy_partitions_exactly(self, costs, n_cards):
        for name in SCHEDULERS:
            assignment = make_scheduler(name).partition(costs, n_cards)
            assert len(assignment) == n_cards
            validate_partition(assignment, len(costs))


class TestScalingProperties:
    @given(n_options=st.integers(1, 12))
    @settings(max_examples=8, deadline=None)
    def test_throughput_monotone_without_contention(self, n_options):
        # Uniform portfolio, ideal host: each added card can only lower the
        # slowest card's load, so aggregate options/sec never decreases.
        options = SC.options(n_options)
        rates = []
        for n_cards in (1, 2, 3):
            result = CDSCluster(
                SC, n_cards=n_cards, n_engines=2, link=IDEAL_LINK
            ).run(options)
            rates.append(result.options_per_second)
        for slower, faster in zip(rates, rates[1:]):
            assert faster >= slower * (1.0 - 1e-9)
