"""Property-based tests for curves (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curves import HazardCurve, YieldCurve


@st.composite
def curve_knots(draw, min_size=2, max_size=40, value_min=0.0, value_max=0.2):
    """Strictly increasing positive times with bounded values."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    times = np.cumsum(gaps)
    values = draw(
        st.lists(
            st.floats(min_value=value_min, max_value=value_max, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return list(times), values


class TestCurveInterpolationProperties:
    @given(curve_knots())
    @settings(max_examples=60, deadline=None)
    def test_interpolation_within_value_bounds(self, knots):
        times, values = knots
        c = YieldCurve(times, values)
        lo, hi = min(values), max(values)
        for t in np.linspace(0.0, times[-1] * 1.5, 23):
            v = c.interpolate(float(t))
            assert lo - 1e-12 <= v <= hi + 1e-12

    @given(curve_knots())
    @settings(max_examples=60, deadline=None)
    def test_interpolation_exact_at_knots(self, knots):
        times, values = knots
        c = YieldCurve(times, values)
        for t, v in zip(times, values):
            assert abs(c.interpolate(float(t)) - v) < 1e-12

    @given(curve_knots(value_min=0.001))
    @settings(max_examples=60, deadline=None)
    def test_discount_in_unit_interval(self, knots):
        """Positive zero rates keep discount factors in (0, 1]; monotonicity
        is NOT asserted here because steeply inverted curves imply negative
        forward rates (a real market phenomenon the model permits)."""
        times, values = knots
        c = YieldCurve(times, values)
        ts = np.linspace(0.0, times[-1] * 1.2, 29)
        dfs = np.asarray(c.discount(ts))
        assert np.all((dfs > 0.0) & (dfs <= 1.0))

    @given(curve_knots(value_min=0.001))
    @settings(max_examples=60, deadline=None)
    def test_discount_decreasing_for_nondecreasing_rates(self, knots):
        """With a non-decreasing zero curve all forwards are positive, so
        discount factors must fall monotonically."""
        times, values = knots
        c = YieldCurve(times, sorted(values))
        ts = np.linspace(0.0, times[-1] * 1.2, 29)
        dfs = np.asarray(c.discount(ts))
        assert np.all(np.diff(dfs) <= 1e-12)


class TestHazardCurveProperties:
    @given(curve_knots(value_min=0.0, value_max=0.5))
    @settings(max_examples=60, deadline=None)
    def test_cumulative_hazard_nondecreasing(self, knots):
        times, values = knots
        hc = HazardCurve(times, values)
        ts = np.linspace(0.0, times[-1] * 1.3, 31)
        lam = np.asarray(hc.integrated(ts))
        assert np.all(np.diff(lam) >= -1e-12)

    @given(curve_knots(value_min=0.0, value_max=0.5))
    @settings(max_examples=60, deadline=None)
    def test_survival_probability_bounds(self, knots):
        times, values = knots
        hc = HazardCurve(times, values)
        for t in np.linspace(0.0, times[-1] * 1.3, 17):
            s = hc.survival(float(t))
            assert 0.0 < s <= 1.0
            assert abs(hc.default_probability(float(t)) - (1.0 - s)) < 1e-12

    @given(curve_knots(value_min=0.0, value_max=0.5))
    @settings(max_examples=60, deadline=None)
    def test_integral_matches_numeric_quadrature(self, knots):
        """Analytic piecewise integration agrees with brute-force quadrature
        of the piecewise-constant intensity."""
        times, values = knots
        hc = HazardCurve(times, values)
        t_end = float(times[-1])
        grid = np.linspace(0.0, t_end, 4001)
        mid = (grid[:-1] + grid[1:]) / 2.0
        lam_mid = np.array([hc.intensity(float(m)) for m in mid])
        numeric = float(np.sum(lam_mid * np.diff(grid)))
        # Midpoint quadrature of a piecewise-constant integrand errs by at
        # most one intensity jump per knot-containing bin.
        bin_width = t_end / 4000.0
        tolerance = 1e-9 + bin_width * max(values) * (len(times) + 1)
        assert abs(hc.integrated(t_end) - numeric) <= tolerance

    @given(curve_knots(value_min=0.0, value_max=0.5))
    @settings(max_examples=60, deadline=None)
    def test_accumulation_length_monotone(self, knots):
        times, values = knots
        hc = HazardCurve(times, values)
        ts = np.linspace(0.0, times[-1] * 1.2, 19)
        lengths = [hc.accumulation_length(float(t)) for t in ts]
        assert lengths == sorted(lengths)
        assert all(0 <= n <= len(hc) for n in lengths)
