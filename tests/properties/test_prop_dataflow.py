"""Property-based tests for the dataflow simulator (hypothesis).

Invariants: token conservation and ordering through arbitrary chains,
determinism, makespan lower bounds, and back-pressure correctness for
arbitrary stage timings and FIFO depths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.engine import Simulator, collector, feeder, transformer

stage_params = st.tuples(
    st.floats(min_value=0.5, max_value=12.0),  # II
    st.floats(min_value=0.0, max_value=40.0),  # latency
    st.integers(min_value=1, max_value=8),  # downstream FIFO depth
)


@st.composite
def chains(draw):
    n_tokens = draw(st.integers(min_value=1, max_value=60))
    n_stages = draw(st.integers(min_value=1, max_value=4))
    stages = [draw(stage_params) for _ in range(n_stages)]
    return n_tokens, stages


def _build_and_run(n_tokens, stages):
    sim = Simulator()
    first = sim.stream("s0", depth=stages[0][2])
    sim.process("src", feeder(first, list(range(n_tokens))))
    prev = first
    for i, (ii, lat, _depth) in enumerate(stages):
        nxt_depth = stages[i + 1][2] if i + 1 < len(stages) else 2
        nxt = sim.stream(f"s{i + 1}", depth=nxt_depth)
        sim.process(
            f"stage{i}",
            transformer(prev, nxt, n_tokens, lambda v: v, ii=ii, latency=lat),
        )
        prev = nxt
    sink = []
    sim.process("dst", collector(prev, n_tokens, sink))
    result = sim.run()
    return result, sink


class TestChainInvariants:
    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_tokens_conserved_and_ordered(self, chain):
        n_tokens, stages = chain
        _, sink = _build_and_run(n_tokens, stages)
        assert sink == list(range(n_tokens))

    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_bottleneck(self, chain):
        n_tokens, stages = chain
        result, _ = _build_and_run(n_tokens, stages)
        bottleneck_ii = max(ii for ii, _, _ in stages)
        assert result.makespan_cycles >= (n_tokens - 1) * bottleneck_ii

    @given(chain=chains())
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_most_token_serialisation(self, chain):
        """Upper bound: even with depth-1 FIFOs forcing full back-pressure
        serialisation, no token waits longer than one full chain traversal
        per predecessor — makespan <= n * (sum of latencies and IIs)."""
        n_tokens, stages = chain
        result, _ = _build_and_run(n_tokens, stages)
        per_token = sum(ii + lat for ii, lat, _ in stages) + 2.0
        assert result.makespan_cycles <= n_tokens * per_token + 1.0

    @given(chain=chains())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, chain):
        n_tokens, stages = chain
        r1, _ = _build_and_run(n_tokens, stages)
        r2, _ = _build_and_run(n_tokens, stages)
        assert r1.makespan_cycles == r2.makespan_cycles
        assert r1.process_times == r2.process_times

    @given(chain=chains())
    @settings(max_examples=40, deadline=None)
    def test_stream_stats_consistent(self, chain):
        n_tokens, stages = chain
        result, _ = _build_and_run(n_tokens, stages)
        for name, stats in result.stream_stats.items():
            assert stats.tokens == n_tokens, name
            assert stats.max_occupancy >= 1
            assert stats.reader_stall_cycles >= 0.0
            assert stats.writer_stall_cycles >= 0.0


class TestDepthMonotonicity:
    @given(
        n_tokens=st.integers(min_value=5, max_value=50),
        ii_producer=st.floats(min_value=0.5, max_value=6.0),
        ii_consumer=st.floats(min_value=0.5, max_value=6.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_deeper_fifo_never_slower(self, n_tokens, ii_producer, ii_consumer):
        def run(depth):
            sim = Simulator()
            s = sim.stream("s", depth=depth)
            sim.process("src", feeder(s, list(range(n_tokens)), ii=ii_producer))
            sim.process("dst", collector(s, n_tokens, [], ii=ii_consumer))
            return sim.run().makespan_cycles

        assert run(8) <= run(1) + 1e-9
