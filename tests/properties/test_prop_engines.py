"""Property-based tests at the engine level (hypothesis).

For arbitrary small portfolios, the free-running engines must match the
reference pricer and each other, replication must never change results, and
chunked multi-engine decomposition must be order-preserving.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.cpu.engine import chunk_options
from repro.engines import InterOptionDataflowEngine, VectorizedDataflowEngine
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=2)
YC = SC.yield_curve()
HC = SC.hazard_curve()
REF = CDSPricer(YC, HC)

portfolio_strategy = st.lists(
    st.builds(
        CDSOption,
        maturity=st.floats(min_value=0.3, max_value=9.0, allow_nan=False),
        frequency=st.sampled_from([1, 2, 4]),
        recovery_rate=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    ),
    min_size=1,
    max_size=5,
)


class TestEngineProperties:
    @given(options=portfolio_strategy)
    @settings(max_examples=25, deadline=None)
    def test_interoption_matches_reference(self, options):
        result = InterOptionDataflowEngine(SC).run(options=options)
        ref = np.array([REF.price(o).spread_bps for o in options])
        np.testing.assert_allclose(result.spreads_bps, ref, rtol=1e-12)

    @given(
        options=portfolio_strategy,
        replication=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_replication_never_changes_results(self, options, replication):
        sc = SC.with_overrides(replication_factor=replication)
        vec = VectorizedDataflowEngine(sc).run(options=options)
        inter = InterOptionDataflowEngine(SC).run(options=options)
        assert np.array_equal(vec.spreads_bps, inter.spreads_bps)

    @given(options=portfolio_strategy)
    @settings(max_examples=25, deadline=None)
    def test_throughput_positive_finite(self, options):
        result = InterOptionDataflowEngine(SC).run(options=options)
        assert np.isfinite(result.options_per_second)
        assert result.options_per_second > 0


class TestChunkingProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunking_partitions_in_order(self, n, k):
        items = list(range(n))
        chunks = chunk_options(items, k)
        assert [x for c in chunks for x in c] == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)
        assert len(chunks) == min(n, k)
