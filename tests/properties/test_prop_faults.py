"""Property tests for fault injection: conservation and identity.

Two load-bearing invariants across schedulers × fault plans:

* **Conservation** — every admitted unit of work finalises exactly once:
  serving pins ``offered == completed + shed + failed`` and the risk
  grid pins ``scenarios == completed + failed``, no matter how often the
  rows or chunks were re-dispatched.
* **Zero-fault identity** — ``faults=None`` and an empty plan take the
  legacy code path byte-for-byte, so resilience machinery costs nothing
  when it is not in play.
"""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.faults import FaultPlan
from repro.risk.engine import make_book
from repro.risk.sharding import (
    FaultedClusterTiming,
    shard_scenarios,
    simulate_grid_run,
)
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 10
N_STATES = 32

SCHEDULERS = ["round-robin", "least-loaded", "work-stealing"]

#: Serving plans: a repairable crash, a permanent one, a crash buried
#: under a straggler (forces mid-window failures and retries), a link
#: outage, and a correlated double failure.
SERVE_PLANS = [
    "crash:card=1,at=0.05,repair=0.05",
    "crash:card=0,at=0.04",
    "slow:card=1,at=0.005,for=0.06,factor=80;crash:card=1,at=0.03,repair=0.03",
    "linkout:at=0.05,for=0.02",
    "correlated:cards=0+1,at=0.1,repair=0.05",
]

#: Grid plans on the risk-sharding timescale (batch quanta of ~ms).
GRID_PLANS = [
    "crash:card=1,at=0.0005,repair=0.0005",
    "crash:card=2,at=0.0003",
    "slow:card=0,at=0.0,for=0.002,factor=4",
    "correlated:cards=1+2,at=0.0004,repair=0.0006",
]


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def tape(scenario):
    return make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(), N_STATES, seed=9
    )


@pytest.fixture(scope="module")
def book():
    return make_book("heterogeneous", N_POSITIONS, seed=5)


@pytest.fixture(scope="module")
def stream():
    return make_request_stream(
        400,
        rate_hz=3000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        var_rows=5,
        seed=29,
    )


def _server(scenario, tape, book, scheduler: str) -> QuoteServer:
    return QuoteServer(
        book,
        tape,
        scenario=scenario,
        n_cards=2,
        n_engines=2,
        scheduler=scheduler,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=256,
    )


class TestServingConservation:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("spec", SERVE_PLANS)
    def test_offered_equals_completed_plus_shed_plus_failed(
        self, scenario, tape, book, stream, scheduler, spec
    ):
        srv = _server(scenario, tape, book, scheduler)
        res = srv.serve(stream, faults=FaultPlan.from_spec(spec, seed=7))
        assert res.n_offered == res.n_completed + res.n_shed + res.n_failed
        assert res.n_completed == len(res.responses)
        assert res.n_failed == len(res.fails)
        # Every request id appears exactly once across the three bins.
        ids = (
            [r.request_id for r in res.responses]
            + [s.request.request_id for s in res.sheds]
            + [f.request.request_id for f in res.fails]
        )
        assert sorted(ids) == [r.request_id for r in stream]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_zero_fault_identity(self, scenario, tape, book, stream, scheduler):
        srv = _server(scenario, tape, book, scheduler)
        legacy = srv.serve(stream)
        empty = srv.serve(stream, faults=FaultPlan())
        assert empty == legacy
        assert srv.last_fault_report is None


class TestGridConservation:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("spec", GRID_PLANS)
    def test_scenarios_all_accounted(
        self, scenario, book, scheduler, spec
    ):
        n_scenarios = 48
        assignment = shard_scenarios(n_scenarios, 4, scheduler=scheduler)
        timing = simulate_grid_run(
            assignment,
            book.options,
            scenario.yield_curve(),
            scenario.hazard_curve(),
            scenario=scenario,
            policy=scheduler,
            faults=FaultPlan.from_spec(spec, seed=7),
        )
        assert isinstance(timing, FaultedClusterTiming)
        assert timing.n_scenarios == n_scenarios
        assert timing.n_failed_scenarios >= 0
        # Conservation: what was not failed completed (the roll-up's
        # makespan only covers completed work).
        assert timing.n_failed_scenarios <= n_scenarios
        assert timing.wasted_seconds >= 0.0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_zero_fault_identity(self, scenario, book, scheduler):
        assignment = shard_scenarios(48, 4, scheduler=scheduler)
        kw = dict(
            scenario=scenario,
            policy=scheduler,
        )
        legacy = simulate_grid_run(
            assignment, book.options, scenario.yield_curve(),
            scenario.hazard_curve(), **kw,
        )
        empty = simulate_grid_run(
            assignment, book.options, scenario.yield_curve(),
            scenario.hazard_curve(), faults=FaultPlan(), **kw,
        )
        assert empty == legacy
        assert type(empty) is type(legacy)

    def test_all_cards_dead_fails_everything_remaining(self, scenario, book):
        assignment = shard_scenarios(24, 2)
        timing = simulate_grid_run(
            assignment, book.options, scenario.yield_curve(),
            scenario.hazard_curve(), scenario=scenario, policy="least-loaded",
            faults=FaultPlan.from_spec("correlated:cards=0+1,at=0.0002"),
        )
        done = timing.n_scenarios - timing.n_failed_scenarios
        assert timing.n_failed_scenarios > 0
        assert 0 <= done < timing.n_scenarios


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_faulted_serve_reproducible(
        self, scenario, tape, book, stream, scheduler
    ):
        plan = FaultPlan.from_spec(SERVE_PLANS[2], seed=11)
        a = _server(scenario, tape, book, scheduler).serve(stream, faults=plan)
        b = _server(scenario, tape, book, scheduler).serve(stream, faults=plan)
        assert a == b

    def test_faulted_grid_reproducible(self, scenario, book):
        assignment = shard_scenarios(48, 4)
        runs = [
            simulate_grid_run(
                assignment, book.options, scenario.yield_curve(),
                scenario.hazard_curve(), scenario=scenario,
                policy="least-loaded",
                faults=FaultPlan.from_spec(GRID_PLANS[0], seed=7),
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
