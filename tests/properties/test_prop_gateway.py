"""Property tests for the multi-tenant gateway.

The load-bearing invariant: the quote cache (hits *and* single-flight
joins) is purely a latency/capacity knob.  For any seed and any tenant
mix, every request id answered by both a cache-on and a cache-off
replay of the same trace must carry a bit-identical value — cached
replies replay the exact ``(kind, rows, option)`` number the kernels
produced, never a recomputation.  Alongside it: conservation (every
offered request is completed, shed or failed, per tenant and in
aggregate) across the same sweep.
"""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.gateway import (
    DEFAULT_TENANTS,
    Gateway,
    PASSTHROUGH_TENANT,
    make_tenant_stream,
    make_tick_stream,
)
from repro.risk.engine import make_book
from repro.serving import make_market_tape
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 10
N_STATES = 32

SEEDS = (3, 11, 29)
MIXES = (
    ("all-tiers", DEFAULT_TENANTS, (0.5, 0.3, 0.2)),
    ("gold-heavy", DEFAULT_TENANTS[:2], (0.9, 0.1)),
    ("single", (PASSTHROUGH_TENANT,), (1.0,)),
)


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def book():
    return make_book("heterogeneous", N_POSITIONS, seed=5)


@pytest.fixture(scope="module")
def tape(scenario):
    return make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(), N_STATES, seed=9
    )


def _gateway(book, tape, scenario, tenants, *, cache):
    return Gateway(
        book,
        tape,
        scenario=scenario,
        n_servers=2,
        n_cards=2,
        n_engines=2,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=256,
        tenants=tenants,
        cache=cache,
    )


def _replay(book, tape, scenario, tenants, seed, *, cache, shares):
    stream = make_tenant_stream(
        500,
        rate_hz=30000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        tenants=tenants,
        mix=(0.9, 0.08, 0.02),
        var_rows=5,
        seed=seed,
    )
    ticks = make_tick_stream(20, rate_hz=1500.0, n_states=N_STATES, seed=seed)
    gw = _gateway(book, tape, scenario, tenants, cache=cache)
    return gw.serve(stream, ticks=ticks)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,tenants,shares", MIXES, ids=[m[0] for m in MIXES])
class TestCacheBitIdentity:
    def test_cached_values_identical_to_uncached(
        self, book, tape, scenario, name, tenants, shares, seed
    ):
        on = _replay(
            book, tape, scenario, tenants, seed, cache=True, shares=shares
        )
        off = _replay(
            book, tape, scenario, tenants, seed, cache=False, shares=shares
        )
        a = {r.request_id: r.value for r in on.responses}
        b = {r.request_id: r.value for r in off.responses}
        common = set(a) & set(b)
        assert common, "no overlapping completions to compare"
        mismatched = [i for i in common if a[i] != b[i]]
        assert mismatched == []

    def test_conservation_per_tenant_and_aggregate(
        self, book, tape, scenario, name, tenants, shares, seed
    ):
        res = _replay(
            book, tape, scenario, tenants, seed, cache=True, shares=shares
        )
        assert res.n_offered == res.n_completed + res.n_shed + res.n_failed
        for t in res.tenants:
            assert t.n_offered == t.n_completed + t.n_shed + t.n_failed
        assert sum(t.n_offered for t in res.tenants) == res.n_offered
        assert sum(t.n_completed for t in res.tenants) == res.n_completed

    def test_deterministic_replay(
        self, book, tape, scenario, name, tenants, shares, seed
    ):
        first = _replay(
            book, tape, scenario, tenants, seed, cache=True, shares=shares
        )
        second = _replay(
            book, tape, scenario, tenants, seed, cache=True, shares=shares
        )
        assert first == second
