"""Property-based tests for the pricing model (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer

YC = YieldCurve(np.linspace(0.25, 12.0, 48), 0.01 + 0.002 * np.sqrt(np.linspace(0.25, 12.0, 48)))


def options_strategy():
    return st.builds(
        CDSOption,
        maturity=st.floats(min_value=0.1, max_value=11.0, allow_nan=False),
        frequency=st.sampled_from([1, 2, 4, 12]),
        recovery_rate=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    )


def hazard_strategy():
    return st.lists(
        st.floats(min_value=1e-5, max_value=0.3, allow_nan=False),
        min_size=3,
        max_size=12,
    ).map(lambda vs: HazardCurve(np.linspace(1.0, 12.0, len(vs)), vs))


class TestSpreadProperties:
    @given(option=options_strategy(), hc=hazard_strategy())
    @settings(max_examples=80, deadline=None)
    def test_spread_positive_and_finite(self, option, hc):
        spread = CDSPricer(YC, hc).price(option).spread_bps
        assert np.isfinite(spread)
        assert spread > 0.0

    @given(option=options_strategy(), hc=hazard_strategy())
    @settings(max_examples=60, deadline=None)
    def test_vectorised_matches_scalar(self, option, hc):
        scalar = CDSPricer(YC, hc).price(option).spread_bps
        vector = VectorCDSPricer(YC, hc).spreads([option])[0]
        assert abs(vector - scalar) <= 1e-9 * max(1.0, abs(scalar))

    @given(option=options_strategy(), hc=hazard_strategy())
    @settings(max_examples=60, deadline=None)
    def test_spread_scales_inverse_with_recovery(self, option, hc):
        """spread(R) = spread(0) * (1 - R) exactly (protection-leg scaling)."""
        pricer = CDSPricer(YC, hc)
        base = pricer.price(
            CDSOption(option.maturity, option.frequency, 0.0)
        ).spread_bps
        scaled = pricer.price(option).spread_bps
        assert abs(scaled - base * (1.0 - option.recovery_rate)) <= 1e-7 * base

    @given(
        option=options_strategy(),
        lam=st.floats(min_value=1e-4, max_value=0.2, allow_nan=False),
        bump=st.floats(min_value=0.01, max_value=0.2, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_hazard_level(self, option, lam, bump):
        lo = HazardCurve([20.0], [lam])
        hi = HazardCurve([20.0], [lam + bump])
        s_lo = CDSPricer(YC, lo).price(option).spread_bps
        s_hi = CDSPricer(YC, hi).price(option).spread_bps
        assert s_hi > s_lo

    @given(option=options_strategy(), hc=hazard_strategy())
    @settings(max_examples=60, deadline=None)
    def test_legs_non_negative(self, option, hc):
        legs = CDSPricer(YC, hc).price(option).legs
        assert legs.premium_leg > 0
        assert legs.protection_leg >= 0
        assert legs.accrual_leg >= 0
        assert 0 < legs.survival_at_maturity <= 1
