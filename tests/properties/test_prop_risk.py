"""Property-based tests for the risk subsystem (hypothesis).

Three invariants the acceptance criteria pin:

1. **VaR <= ES** at the same confidence level, for any P&L vector — both
   are order statistics of the same empirical loss distribution.
2. **Bucketed CS01 sums to the parallel CS01** within tolerance, for any
   book: the tenor buckets tile the curve, and PV is near-linear over a
   one-basis-point bump.
3. **Scenario sharding is numerically invisible**: any card count and any
   policy produce measures identical to a single-card evaluation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.risk.engine import Portfolio, ScenarioRiskEngine, make_book
from repro.risk.measures import (
    cs01_ladder,
    expected_shortfall,
    tail_measures,
    value_at_risk,
)
from repro.risk.scenarios import monte_carlo
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()

pnl_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=1,
    max_size=80,
)
confidence_strategy = st.floats(min_value=0.01, max_value=0.999)


class TestTailMeasureProperties:
    @given(pnl=pnl_strategy, confidence=confidence_strategy)
    @settings(max_examples=120, deadline=None)
    def test_var_never_exceeds_es(self, pnl, confidence):
        arr = np.asarray(pnl)
        var = value_at_risk(arr, confidence)
        es = expected_shortfall(arr, confidence)
        assert var <= es

    @given(pnl=pnl_strategy, confidence=confidence_strategy)
    @settings(max_examples=60, deadline=None)
    def test_var_is_an_observed_loss(self, pnl, confidence):
        arr = np.asarray(pnl)
        assert value_at_risk(arr, confidence) in (-arr)

    @given(pnl=pnl_strategy)
    @settings(max_examples=60, deadline=None)
    def test_var_monotone_in_confidence(self, pnl):
        arr = np.asarray(pnl)
        ms = tail_measures(arr, (0.5, 0.9, 0.99))
        assert ms[0].var <= ms[1].var <= ms[2].var

    @given(
        pnl=pnl_strategy,
        confidence=confidence_strategy,
        shift=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_translation_equivariance(self, pnl, confidence, shift):
        """Shifting every P&L by c shifts VaR and ES by exactly -c."""
        arr = np.asarray(pnl)
        var0 = value_at_risk(arr, confidence)
        var1 = value_at_risk(arr + shift, confidence)
        assert var1 == pytest.approx(var0 - shift, rel=1e-6, abs=1e-6)
        es0 = expected_shortfall(arr, confidence)
        es1 = expected_shortfall(arr + shift, confidence)
        assert es1 == pytest.approx(es0 - shift, rel=1e-6, abs=1e-6)


book_strategy = st.tuples(
    st.sampled_from(["uniform", "skewed", "heterogeneous"]),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=1000),
)


class TestLadderProperties:
    @given(book=book_strategy)
    @settings(max_examples=15, deadline=None)
    def test_bucketed_cs01_sums_to_parallel(self, book):
        workload, n, seed = book
        engine = ScenarioRiskEngine(
            make_book(workload, n, seed=seed), YC, HC, scenario=SC
        )
        ladder = cs01_ladder(engine)
        # Scale the first-order reconciliation tolerance by the *gross*
        # ladder magnitude: on mixed buyer/seller books the netted
        # parallel sensitivity can cancel to nearly zero while each
        # bucket (and its convexity error) stays finite.
        gross = sum(abs(e.value) for e in ladder.entries)
        scale = max(abs(ladder.parallel), gross, 1e-12)
        assert abs(ladder.bucket_sum - ladder.parallel) <= 1e-2 * scale + 1e-12


class TestShardingInvariance:
    @given(
        n_scenarios=st.integers(min_value=1, max_value=12),
        n_cards=st.integers(min_value=1, max_value=6),
        policy=st.sampled_from(["round-robin", "least-loaded", "work-stealing"]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_measures_identical_to_single_card(
        self, n_scenarios, n_cards, policy, seed
    ):
        book = Portfolio.from_options(SC.options(3), notionals=[2.0, -1.0, 0.5])
        shocks = monte_carlo(YC, HC, n_scenarios, seed=seed)
        single = ScenarioRiskEngine(book, YC, HC, scenario=SC, n_cards=1)
        multi = ScenarioRiskEngine(
            book, YC, HC, scenario=SC, n_cards=n_cards, scheduler=policy
        )
        pnl_single = single.revalue(shocks, with_timing=False).pnl
        pnl_multi = multi.revalue(shocks, with_timing=False).pnl
        np.testing.assert_array_equal(pnl_single, pnl_multi)
