"""Property-based tests for payment schedules and engine equivalence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import build_schedule
from repro.core.types import CDSOption

option_strategy = st.builds(
    CDSOption,
    maturity=st.floats(min_value=0.05, max_value=15.0, allow_nan=False),
    frequency=st.sampled_from([1, 2, 3, 4, 6, 12]),
    recovery_rate=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
)


class TestScheduleProperties:
    @given(option=option_strategy)
    @settings(max_examples=150, deadline=None)
    def test_schedule_invariants(self, option):
        s = build_schedule(option)
        times = np.asarray(s.times)
        accruals = np.asarray(s.accruals)
        # Ends exactly at maturity.
        assert times[-1] == option.maturity
        # Strictly increasing positive times.
        assert times[0] > 0
        assert np.all(np.diff(times) > 0)
        # Accruals positive and telescoping to maturity.
        assert np.all(accruals > 0)
        np.testing.assert_allclose(np.sum(accruals), option.maturity, rtol=1e-9)

    @given(option=option_strategy)
    @settings(max_examples=150, deadline=None)
    def test_regular_periods_equal_step(self, option):
        s = build_schedule(option)
        step = 1.0 / option.frequency
        # All but possibly the last accrual equal the regular step.
        regular = np.asarray(s.accruals[:-1])
        if regular.size:
            np.testing.assert_allclose(regular, step, rtol=1e-9)

    @given(option=option_strategy)
    @settings(max_examples=150, deadline=None)
    def test_count_matches_n_payments(self, option):
        assert len(build_schedule(option)) == option.n_payments

    @given(option=option_strategy)
    @settings(max_examples=100, deadline=None)
    def test_stub_never_longer_than_step(self, option):
        s = build_schedule(option)
        assert float(s.accruals[-1]) <= 1.0 / option.frequency + 1e-9
