"""Property tests for the serving layer.

The load-bearing invariant: micro-batching is *purely* a
throughput/latency knob.  However requests are coalesced, routed and
chunked, every response value must be bit-identical to pricing that
request alone — the serving counterpart of the risk subsystem's
batch == loop pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.batching import BatchQueue
from repro.risk.engine import make_book
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 10
N_STATES = 32


@pytest.fixture(scope="module")
def scenario():
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def tape(scenario):
    return make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(), N_STATES, seed=9
    )


@pytest.fixture(scope="module")
def stream():
    return make_request_stream(
        400,
        rate_hz=3000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        var_rows=5,
        seed=29,
    )


def _server(scenario, tape, **kw) -> QuoteServer:
    kw.setdefault("n_cards", 2)
    kw.setdefault("n_engines", 2)
    return QuoteServer(
        make_book("heterogeneous", N_POSITIONS, seed=5),
        tape,
        scenario=scenario,
        **kw,
    )


def _values(result) -> dict[int, float]:
    return {r.request_id: r.value for r in result.responses}


class TestBatchedBitIdentity:
    def test_batched_equals_individual(self, scenario, tape, stream):
        """Every coalesced response == the one-request-per-kernel-call
        answer, bit for bit."""
        server = _server(
            scenario, tape, queue=BatchQueue(max_batch=32, linger_s=2e-3)
        )
        res = server.serve(stream)
        answered = [r for r in stream if r.request_id in _values(res)]
        individual = server.price_individually(answered)
        batched = _values(res)
        assert len(answered) == len(stream)  # nothing shed at this load
        for req, value in zip(answered, individual):
            assert batched[req.request_id] == value, req

    def test_coalescing_policy_never_changes_values(
        self, scenario, tape, stream
    ):
        """max_batch / linger / chunk_size only move latency, not numbers."""
        policies = [
            dict(queue=BatchQueue(max_batch=1, linger_s=0.0)),
            dict(queue=BatchQueue(max_batch=8, linger_s=1e-3)),
            dict(queue=BatchQueue(max_batch=128, linger_s=5e-3), chunk_size=3),
        ]
        seen = None
        for kw in policies:
            res = _server(scenario, tape, **kw).serve(stream)
            values = _values(res)
            if seen is None:
                seen = values
            else:
                assert values == seen

    def test_card_count_and_scheduler_never_change_values(
        self, scenario, tape, stream
    ):
        seen = None
        for n_cards, policy in [(1, "round-robin"), (3, "least-loaded"),
                                (4, "work-stealing")]:
            res = _server(
                scenario, tape, n_cards=n_cards, scheduler=policy
            ).serve(stream)
            values = _values(res)
            if seen is None:
                seen = values
            else:
                assert values == seen


class TestTimingSanity:
    def test_coalescing_reduces_dispatches(self, scenario, tape, stream):
        one = _server(scenario, tape, queue=BatchQueue(max_batch=1, linger_s=0.0))
        many = _server(
            scenario, tape, queue=BatchQueue(max_batch=64, linger_s=2e-3)
        )
        r1 = one.serve(stream)
        rn = many.serve(stream)
        assert rn.n_dispatches < r1.n_dispatches
        assert rn.mean_batch_requests > 2.0

    def test_responses_respect_simulated_causality(self, scenario, tape, stream):
        res = _server(scenario, tape).serve(stream)
        by_id = {r.request_id: r for r in stream}
        for resp in res.responses:
            req = by_id[resp.request_id]
            assert resp.formed_s >= req.arrival_s
            # A linger timer can fire no later than arrival + linger.
            assert resp.formed_s <= req.arrival_s + 1e-3 + 1e-12

    def test_card_busy_windows_disjoint(self, scenario, tape, stream):
        """Total busy time per card never exceeds the span (no card is
        double-booked by overlapping dispatches)."""
        res = _server(scenario, tape).serve(stream)
        for card in res.cards:
            assert card.busy_seconds <= res.span_seconds * (1 + 1e-9)


class TestVarReduction:
    def test_var_value_depends_only_on_own_rows(self, scenario, tape):
        from repro.serving.request import PricingRequest

        va = PricingRequest(0, "var", 0.0, 1.0, rows=(1, 4, 9, 13, 21))
        noise = [
            PricingRequest(i, "quote", 0.0, 1.0, rows=(i % N_STATES,),
                           option_index=i % N_POSITIONS)
            for i in range(1, 40)
        ]
        server = _server(
            scenario, tape, queue=BatchQueue(max_batch=64, linger_s=1e-3)
        )
        alone = server.serve([va])
        crowded = server.serve([va] + noise)
        v_alone = [r.value for r in alone.responses if r.request_id == 0][0]
        v_crowd = [r.value for r in crowded.responses if r.request_id == 0][0]
        assert v_alone == v_crowd
        assert np.isfinite(v_alone)
