"""Shared fixtures for the risk-subsystem tests: small, fast grids."""

from __future__ import annotations

import pytest

from repro.risk.engine import ScenarioRiskEngine, make_book
from repro.workloads.scenarios import PaperScenario


@pytest.fixture
def risk_scenario() -> PaperScenario:
    """Short rate tables so revaluation and timing sims stay fast."""
    return PaperScenario(n_rates=64, n_options=8)


@pytest.fixture
def book(risk_scenario):
    """A small signed book with buyers and sellers."""
    return make_book("heterogeneous", 8, seed=5)


@pytest.fixture
def engine(book, risk_scenario) -> ScenarioRiskEngine:
    """Single-card engine over the small book."""
    return ScenarioRiskEngine(book, scenario=risk_scenario)
