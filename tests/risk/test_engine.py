"""Unit tests for positions, portfolios and the scenario risk engine."""

import numpy as np
import pytest

from repro.core.risk import RiskEngine
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.risk.engine import (
    Portfolio,
    Position,
    ScenarioRiskEngine,
    make_book,
)
from repro.risk.scenarios import monte_carlo, parallel_shocks, recovery_shocks


class TestPosition:
    def test_zero_notional_rejected(self, option):
        with pytest.raises(ValidationError):
            Position(option=option, notional=0.0)

    def test_negative_spread_rejected(self, option):
        with pytest.raises(ValidationError):
            Position(option=option, contract_spread_bps=-1.0)

    def test_buyer_flag(self, option):
        assert Position(option=option, notional=2.0).is_buyer
        assert not Position(option=option, notional=-2.0).is_buyer


class TestPortfolio:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Portfolio([])

    def test_from_options_defaults(self, mixed_options):
        p = Portfolio.from_options(mixed_options)
        assert len(p) == len(mixed_options)
        np.testing.assert_array_equal(p.notionals, np.ones(len(mixed_options)))

    def test_from_options_length_mismatch(self, mixed_options):
        with pytest.raises(ValidationError):
            Portfolio.from_options(mixed_options, notionals=[1.0])

    def test_gross_notional(self, option):
        p = Portfolio.from_options([option, option], notionals=[2.0, -3.0])
        assert p.gross_notional == pytest.approx(5.0)


class TestMakeBook:
    def test_deterministic(self):
        a = make_book("skewed", 12, seed=9)
        b = make_book("skewed", 12, seed=9)
        assert a.options == b.options
        np.testing.assert_array_equal(a.notionals, b.notionals)

    def test_has_buyers_and_sellers(self):
        book = make_book("heterogeneous", 40, seed=9)
        signs = np.sign(book.notionals)
        assert (signs > 0).any() and (signs < 0).any()

    def test_buyer_fraction_extremes(self):
        assert all(p.is_buyer for p in make_book(n_positions=20, buyer_fraction=1.0))
        assert not any(
            p.is_buyer for p in make_book(n_positions=20, buyer_fraction=0.0)
        )

    def test_bad_fraction(self):
        with pytest.raises(ValidationError):
            make_book(buyer_fraction=1.5)


class TestScenarioRiskEngine:
    def test_base_pv_zero_at_par(self, engine):
        np.testing.assert_allclose(engine.base_pv, 0.0, atol=1e-12)

    def test_fixed_contract_spread_shifts_pv(self, risk_scenario, option):
        """A below-par contracted spread makes owned protection valuable."""
        book = Portfolio.from_options([option], contract_spreads_bps=[1.0])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        assert engine.base_pv[0] > 0.0
        assert engine.contract_spreads_bps[0] == 1.0

    def test_pnl_matches_core_risk_engine(self, risk_scenario, option):
        """A 1 bp-equivalent parallel hazard scenario reproduces the
        bump-and-reprice CS01 of repro.core.risk for the same contract."""
        book = Portfolio.from_options([option])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        core = RiskEngine(engine.yield_curve, engine.hazard_curve)
        shocks = parallel_shocks(
            engine.yield_curve,
            engine.hazard_curve,
            hazard_bumps_bps=(core.hazard_bump / 1e-4,),
            rate_bumps_bps=(),
        )
        rev = engine.revalue(shocks, with_timing=False)
        cs01 = core.greeks([option])[0].cs01
        assert rev.pnl[0] == pytest.approx(cs01, rel=1e-9)

    def test_seller_loses_when_credit_worsens(self, risk_scenario, option):
        book = Portfolio.from_options([option], notionals=[-1.0])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        shocks = parallel_shocks(
            engine.yield_curve,
            engine.hazard_curve,
            hazard_bumps_bps=(100.0,),
            rate_bumps_bps=(),
        )
        rev = engine.revalue(shocks, with_timing=False)
        assert rev.pnl[0] < 0.0

    def test_recovery_scenarios_hit_buyers(self, risk_scenario, option):
        """Higher recovery cheapens owned protection."""
        book = Portfolio.from_options([option])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        shocks = recovery_shocks(
            engine.yield_curve, engine.hazard_curve, shifts=(0.1,)
        )
        rev = engine.revalue(shocks, with_timing=False)
        assert rev.pnl[0] < 0.0

    def test_revaluation_shapes_and_extremes(self, engine):
        shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 12, seed=3)
        rev = engine.revalue(shocks, with_timing=False)
        assert rev.pv.shape == (12, len(engine.portfolio))
        assert rev.pnl.shape == (12,)
        assert rev.position_pnl.shape == rev.pv.shape
        worst_label, worst = rev.worst()
        best_label, best = rev.best()
        assert worst <= best
        assert worst_label in shocks.labels and best_label in shocks.labels
        assert rev.timing is None

    def test_timing_attached_when_requested(self, book, risk_scenario):
        engine = ScenarioRiskEngine(book, scenario=risk_scenario, n_cards=2)
        shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 6, seed=3)
        rev = engine.revalue(shocks)
        assert rev.timing is not None
        assert rev.timing.n_scenarios == 6
        assert rev.timing.n_cards == 2
        assert rev.timing.makespan_seconds > 0

    def test_sharding_does_not_change_numbers(self, book, risk_scenario):
        shocks = None
        pnls = []
        for cards, policy in [(1, "least-loaded"), (3, "round-robin"),
                              (4, "work-stealing")]:
            engine = ScenarioRiskEngine(
                book, scenario=risk_scenario, n_cards=cards, scheduler=policy
            )
            if shocks is None:
                shocks = monte_carlo(
                    engine.yield_curve, engine.hazard_curve, 10, seed=3
                )
            pnls.append(engine.revalue(shocks, with_timing=False).pnl)
        np.testing.assert_array_equal(pnls[0], pnls[1])
        np.testing.assert_array_equal(pnls[0], pnls[2])

    def test_bad_cards(self, book):
        with pytest.raises(ValidationError):
            ScenarioRiskEngine(book, n_cards=0)


class TestMixedGridFallback:
    """Batch requested, but the scenario set cannot lower to a tensor."""

    @pytest.fixture
    def mixed_set(self, engine):
        from repro.core.curves import YieldCurve
        from repro.risk.scenarios import Scenario, ScenarioSet

        yc, hc = engine.yield_curve, engine.hazard_curve
        # A hand-built set whose second scenario lives on its own (tiny)
        # yield knot grid — unloweable to one dense tensor.
        other_yc = YieldCurve([1.0, 5.0, 10.0], [0.012, 0.018, 0.022])
        return ScenarioSet(
            name="handmade-mixed",
            base_yield=yc,
            base_hazard=hc,
            scenarios=(
                Scenario(label="base-grid", yield_curve=yc, hazard_curve=hc),
                Scenario(label="coarse-grid", yield_curve=other_yc,
                         hazard_curve=hc, recovery_shift=0.05),
            ),
        )

    def test_emits_no_tensor(self, mixed_set):
        from repro.risk.tensor import ScenarioTensor

        assert mixed_set.tensor is None
        assert ScenarioTensor.try_pack(mixed_set) is None

    def test_batch_request_falls_back_to_loop(self, engine, mixed_set):
        """``batch=True`` on a mixed-grid set silently takes the
        per-scenario loop and matches it bit for bit."""
        batched = engine.revalue(mixed_set, with_timing=False, batch=True)
        looped = engine.revalue(mixed_set, with_timing=False, batch=False)
        np.testing.assert_array_equal(batched.pv, looped.pv)
        np.testing.assert_array_equal(batched.pnl, looped.pnl)

    def test_fallback_matches_manual_per_scenario_pricing(
        self, engine, mixed_set
    ):
        rev = engine.revalue(mixed_set, with_timing=False, batch=True)
        for i, s in enumerate(mixed_set.scenarios):
            expected = engine._unit_pv(
                s.yield_curve, s.hazard_curve, recovery_shift=s.recovery_shift
            )
            np.testing.assert_array_equal(rev.pv[i], expected)
