"""Unit tests for VaR/ES, ladders and JTD concentration."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.risk.engine import Portfolio, ScenarioRiskEngine
from repro.risk.measures import (
    cs01_ladder,
    expected_shortfall,
    ir01_ladder,
    jtd_concentration,
    tail_measures,
    value_at_risk,
)


class TestVarEs:
    def test_var_is_an_observed_loss(self):
        pnl = np.array([-5.0, -1.0, 0.0, 2.0, 3.0])
        assert value_at_risk(pnl, 0.8) in (-np.asarray(pnl)).tolist()

    def test_var_at_extreme_confidence_is_worst_loss(self):
        pnl = np.array([-5.0, -1.0, 0.0, 2.0])
        assert value_at_risk(pnl, 0.999) == 5.0

    def test_es_averages_the_tail(self):
        pnl = np.array([-4.0, -2.0, 0.0, 1.0])
        var = value_at_risk(pnl, 0.5)
        es = expected_shortfall(pnl, 0.5)
        assert es == pytest.approx((-np.asarray(pnl))[(-np.asarray(pnl)) >= var].mean())

    def test_var_never_exceeds_es(self):
        gen = np.random.default_rng(3)
        for _ in range(10):
            pnl = gen.normal(size=50)
            for c in (0.5, 0.9, 0.95, 0.99):
                assert value_at_risk(pnl, c) <= expected_shortfall(pnl, c)

    def test_tail_measures_order(self):
        pnl = np.random.default_rng(1).normal(size=200)
        ms = tail_measures(pnl, (0.9, 0.99))
        assert [m.confidence for m in ms] == [0.9, 0.99]
        assert ms[0].var <= ms[1].var  # VaR is monotone in confidence

    def test_bad_inputs(self):
        with pytest.raises(ValidationError):
            value_at_risk(np.array([1.0]), 1.0)
        with pytest.raises(ValidationError):
            value_at_risk(np.array([]), 0.9)
        with pytest.raises(ValidationError):
            tail_measures(np.array([1.0]), ())


class TestLadders:
    def test_cs01_ladder_sums_to_parallel(self, engine):
        ladder = cs01_ladder(engine)
        assert ladder.kind == "cs01"
        assert ladder.bucket_sum == pytest.approx(ladder.parallel, rel=5e-3)

    def test_ir01_ladder_sums_to_parallel(self, engine):
        ladder = ir01_ladder(engine)
        assert ladder.kind == "ir01"
        assert ladder.bucket_sum == pytest.approx(
            ladder.parallel, rel=5e-3, abs=1e-12
        )

    def test_long_protection_book_has_positive_cs01(self, risk_scenario, option):
        book = Portfolio.from_options([option])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        ladder = cs01_ladder(engine)
        assert ladder.parallel > 0.0

    def test_ladder_renders(self, engine):
        text = cs01_ladder(engine).render()
        assert "CS01 ladder" in text
        assert "bucket sum" in text and "parallel" in text

    def test_buckets_beyond_maturity_are_flat(self, risk_scenario, option):
        """A 5y contract has no sensitivity to the (7, 30] bucket."""
        book = Portfolio.from_options([option])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        ladder = cs01_ladder(engine)
        tail = ladder.entries[-1]
        assert tail.bucket_lo >= option.maturity
        assert abs(tail.value) < abs(ladder.parallel) * 1e-3


class TestJTD:
    def test_buyer_gains_seller_loses(self, risk_scenario, option):
        book = Portfolio.from_options([option, option], notionals=[1.0, -2.0])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        conc = jtd_concentration(engine)
        # Buyer jtd = +LGD, seller = -2*LGD at par.
        assert conc.net == pytest.approx(-option.loss_given_default, rel=1e-9)
        assert conc.gross == pytest.approx(3 * option.loss_given_default, rel=1e-9)
        assert conc.largest_index == 1

    def test_single_name_book_is_fully_concentrated(self, risk_scenario, option):
        book = Portfolio.from_options([option])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        conc = jtd_concentration(engine)
        assert conc.herfindahl == pytest.approx(1.0)
        assert conc.top_share == pytest.approx(1.0)
        assert conc.top_n == 1

    def test_uniform_book_herfindahl(self, risk_scenario, option):
        n = 10
        book = Portfolio.from_options([option] * n)
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        conc = jtd_concentration(engine, top_n=3)
        assert conc.herfindahl == pytest.approx(1.0 / n)
        assert conc.top_share == pytest.approx(3.0 / n)

    def test_bad_top_n(self, engine):
        with pytest.raises(ValidationError):
            jtd_concentration(engine, top_n=0)
