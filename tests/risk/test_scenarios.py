"""Unit tests for scenario generation."""

import numpy as np
import pytest

from repro.core.risk import ONE_BP
from repro.errors import ValidationError
from repro.risk.scenarios import (
    CALM_STRESSED_REGIMES,
    DEFAULT_TENOR_EDGES,
    Regime,
    Scenario,
    ScenarioSet,
    bucketed_shocks,
    historical_replay,
    monte_carlo,
    parallel_shocks,
    recovery_shocks,
    tenor_buckets,
)
from repro.workloads.history import make_curve_history


class TestScenarioTypes:
    def test_scenario_requires_label(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            Scenario(label="", yield_curve=yield_curve, hazard_curve=hazard_curve)

    def test_recovery_shift_bounds(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            Scenario(
                label="x",
                yield_curve=yield_curve,
                hazard_curve=hazard_curve,
                recovery_shift=1.0,
            )

    def test_set_requires_scenarios(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            ScenarioSet(
                name="empty",
                base_yield=yield_curve,
                base_hazard=hazard_curve,
                scenarios=(),
            )

    def test_set_iteration_and_labels(self, yield_curve, hazard_curve):
        s = parallel_shocks(yield_curve, hazard_curve)
        assert len(s) == len(list(s)) == len(s.labels)
        assert s[0].label == s.labels[0]


class TestTenorBuckets:
    def test_default_edges_tile(self):
        buckets = tenor_buckets(DEFAULT_TENOR_EDGES)
        for (_, hi), (lo, _) in zip(buckets, buckets[1:]):
            assert hi == lo

    def test_bad_edges_rejected(self):
        with pytest.raises(ValidationError):
            tenor_buckets([1.0])
        with pytest.raises(ValidationError):
            tenor_buckets([1.0, 1.0, 2.0])


class TestParallelShocks:
    def test_one_scenario_per_bump(self, yield_curve, hazard_curve):
        s = parallel_shocks(
            yield_curve,
            hazard_curve,
            hazard_bumps_bps=(10.0, 50.0),
            rate_bumps_bps=(25.0,),
        )
        assert len(s) == 3
        assert s.labels == ("hazard+10bp", "hazard+50bp", "rates+25bp")

    def test_hazard_bump_moves_hazard_only(self, yield_curve, hazard_curve):
        s = parallel_shocks(
            yield_curve, hazard_curve, hazard_bumps_bps=(10.0,), rate_bumps_bps=()
        )
        sc = s[0]
        assert sc.yield_curve is yield_curve
        np.testing.assert_allclose(
            np.asarray(sc.hazard_curve.values),
            np.asarray(hazard_curve.values) + 10 * ONE_BP,
        )

    def test_down_bump_floors_at_zero(self, yield_curve, hazard_curve):
        s = parallel_shocks(
            yield_curve,
            hazard_curve,
            hazard_bumps_bps=(-1e4,),
            rate_bumps_bps=(),
        )
        assert np.all(np.asarray(s[0].hazard_curve.values) >= 0.0)

    def test_no_bumps_rejected(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            parallel_shocks(
                yield_curve, hazard_curve, hazard_bumps_bps=(), rate_bumps_bps=()
            )


class TestBucketedShocks:
    def test_one_scenario_per_bucket(self, yield_curve, hazard_curve):
        s = bucketed_shocks(yield_curve, hazard_curve)
        assert len(s) == len(tenor_buckets(DEFAULT_TENOR_EDGES))

    def test_buckets_partition_the_bump(self, yield_curve, hazard_curve):
        """Summing the bucketed curves' deviations recovers one parallel
        bump at every knot (the buckets tile without overlap)."""
        bump = ONE_BP
        s = bucketed_shocks(yield_curve, hazard_curve, bump=bump)
        base = np.asarray(hazard_curve.values)
        total = sum(
            np.asarray(sc.hazard_curve.values) - base for sc in s
        )
        np.testing.assert_allclose(total, np.full_like(base, bump))

    def test_yield_variant(self, yield_curve, hazard_curve):
        s = bucketed_shocks(yield_curve, hazard_curve, curve="yield")
        assert all(sc.hazard_curve is hazard_curve for sc in s)

    def test_bad_curve_kind(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            bucketed_shocks(yield_curve, hazard_curve, curve="fx")


class TestRecoveryShocks:
    def test_shifts_carried(self, yield_curve, hazard_curve):
        s = recovery_shocks(yield_curve, hazard_curve, shifts=(-0.1, 0.1))
        assert [sc.recovery_shift for sc in s] == [-0.1, 0.1]
        assert all(sc.hazard_curve is hazard_curve for sc in s)


class TestHistoricalReplay:
    def test_one_scenario_per_move(self, yield_curve, hazard_curve):
        history = make_curve_history(9, seed=3)
        s = historical_replay(yield_curve, hazard_curve, history)
        assert len(s) == history.n_moves == 8

    def test_replay_preserves_base_grid(self, yield_curve, hazard_curve):
        history = make_curve_history(4, n_points=16, seed=3)
        s = historical_replay(yield_curve, hazard_curve, history)
        for sc in s:
            np.testing.assert_array_equal(sc.yield_curve.times, yield_curve.times)
            np.testing.assert_array_equal(sc.hazard_curve.times, hazard_curve.times)

    def test_moves_are_applied(self, yield_curve, hazard_curve):
        history = make_curve_history(8, seed=3)
        s = historical_replay(yield_curve, hazard_curve, history)
        assert any(
            not np.array_equal(sc.yield_curve.values, yield_curve.values)
            for sc in s
        )


class TestMonteCarlo:
    def test_deterministic_in_seed(self, yield_curve, hazard_curve):
        a = monte_carlo(yield_curve, hazard_curve, 5, seed=11)
        b = monte_carlo(yield_curve, hazard_curve, 5, seed=11)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(
                sa.hazard_curve.values, sb.hazard_curve.values
            )
            np.testing.assert_array_equal(
                sa.yield_curve.values, sb.yield_curve.values
            )

    def test_different_seeds_differ(self, yield_curve, hazard_curve):
        a = monte_carlo(yield_curve, hazard_curve, 3, seed=1)
        b = monte_carlo(yield_curve, hazard_curve, 3, seed=2)
        assert not np.array_equal(
            a[0].hazard_curve.values, b[0].hazard_curve.values
        )

    def test_hazards_never_negative(self, yield_curve, hazard_curve):
        s = monte_carlo(
            yield_curve, hazard_curve, 50, seed=11, hazard_vol_bps=500.0
        )
        for sc in s:
            assert np.all(np.asarray(sc.hazard_curve.values) >= 0.0)

    def test_regime_mixture_labels(self, yield_curve, hazard_curve):
        s = monte_carlo(
            yield_curve,
            hazard_curve,
            40,
            seed=11,
            regimes=CALM_STRESSED_REGIMES,
        )
        names = {lbl.split(":")[-1] for lbl in s.labels}
        assert names == {"calm", "stressed"}
        assert s.name == "mc-mixture"

    def test_stressed_regime_widens_credit(self, yield_curve, hazard_curve):
        """A certain 'stressed' regime with a positive drift raises the
        mean hazard level versus the no-regime draw."""
        stressed_only = (Regime(name="stressed", weight=1.0, hazard_drift_bps=50.0),)
        base = monte_carlo(yield_curve, hazard_curve, 20, seed=11)
        stressed = monte_carlo(
            yield_curve, hazard_curve, 20, seed=11, regimes=stressed_only
        )
        mean = lambda s: np.mean(
            [np.mean(np.asarray(sc.hazard_curve.values)) for sc in s]
        )
        assert mean(stressed) > mean(base)

    def test_recovery_vol(self, yield_curve, hazard_curve):
        s = monte_carlo(
            yield_curve, hazard_curve, 10, seed=11, recovery_vol=0.05
        )
        assert any(sc.recovery_shift != 0.0 for sc in s)

    def test_bad_parameters(self, yield_curve, hazard_curve):
        with pytest.raises(ValidationError):
            monte_carlo(yield_curve, hazard_curve, 0)
        with pytest.raises(ValidationError):
            monte_carlo(yield_curve, hazard_curve, 1, tenor_correlation=1.0)
        with pytest.raises(ValidationError):
            monte_carlo(yield_curve, hazard_curve, 1, credit_rates_correlation=-1.0)
        with pytest.raises(ValidationError):
            monte_carlo(yield_curve, hazard_curve, 1, hazard_vol_bps=-1.0)

    def test_bad_regime(self):
        with pytest.raises(ValidationError):
            Regime(name="", weight=1.0)
        with pytest.raises(ValidationError):
            Regime(name="x", weight=0.0)
        with pytest.raises(ValidationError):
            Regime(name="x", weight=1.0, hazard_scale=0.0)
