"""Unit tests for scenario-grid sharding and the cluster timing roll-up."""

import pytest

from repro.cluster.batching import BatchQueue
from repro.cluster.interconnect import HostLinkModel
from repro.errors import ValidationError
from repro.risk.sharding import shard_scenarios, simulate_grid_run


class TestShardScenarios:
    def test_partition_is_exact(self):
        assignment = shard_scenarios(17, 4)
        seen = sorted(i for chunk in assignment for i in chunk)
        assert seen == list(range(17))

    def test_uniform_costs_balance(self):
        assignment = shard_scenarios(16, 4)
        assert [len(c) for c in assignment] == [4, 4, 4, 4]

    def test_more_cards_than_scenarios(self):
        assignment = shard_scenarios(2, 5)
        assert sum(1 for c in assignment if c) == 2

    def test_policies_all_work(self):
        for policy in ("round-robin", "least-loaded", "work-stealing"):
            assignment = shard_scenarios(9, 3, policy)
            assert sum(len(c) for c in assignment) == 9

    def test_chunks_sorted(self):
        for chunk in shard_scenarios(20, 3, "work-stealing"):
            assert chunk == sorted(chunk)

    def test_bad_counts(self):
        with pytest.raises(ValidationError):
            shard_scenarios(0, 2)
        with pytest.raises(ValidationError):
            shard_scenarios(4, 0)


class TestSimulateGridRun:
    @pytest.fixture
    def grid(self, risk_scenario, book):
        assignment = shard_scenarios(12, 3)
        return assignment, book.options, risk_scenario

    def test_rollup_shape(self, grid, risk_scenario):
        assignment, options, sc = grid
        timing = simulate_grid_run(
            assignment,
            options,
            sc.yield_curve(),
            sc.hazard_curve(),
            scenario=sc,
            policy="least-loaded",
        )
        assert timing.n_scenarios == 12
        assert timing.n_positions == len(options)
        assert timing.n_cards == 3
        assert timing.n_active_cards == 3
        assert timing.repricings_per_second > 0
        assert timing.total_watts > 0
        assert len(timing.cards) == 3
        assert "repricings/s" in timing.summary()

    def test_busy_time_proportional_to_scenarios(self, grid):
        assignment, options, sc = grid
        timing = simulate_grid_run(
            assignment,
            options,
            sc.yield_curve(),
            sc.hazard_curve(),
            scenario=sc,
            policy="least-loaded",
        )
        for shard in timing.cards:
            assert shard.seconds == pytest.approx(
                shard.n_scenarios * timing.batch_seconds
            )

    def test_idle_cards_draw_shell_power(self, risk_scenario, book):
        assignment = shard_scenarios(2, 4)
        timing = simulate_grid_run(
            assignment,
            book.options,
            risk_scenario.yield_curve(),
            risk_scenario.hazard_curve(),
            scenario=risk_scenario,
            policy="least-loaded",
        )
        idle = [s for s in timing.cards if s.idle]
        active = [s for s in timing.cards if not s.idle]
        assert len(idle) == 2
        assert all(s.watts < active[0].watts for s in idle)
        assert all(s.utilisation == 0.0 for s in idle)

    def test_batch_queue_caps_dispatch_size(self, risk_scenario, book):
        assignment = shard_scenarios(10, 1)
        timing = simulate_grid_run(
            assignment,
            book.options,
            risk_scenario.yield_curve(),
            risk_scenario.hazard_curve(),
            scenario=risk_scenario,
            policy="least-loaded",
            queue=BatchQueue(max_batch=3),
        )
        assert timing.dispatches == 4  # ceil(10 / 3)

    def test_ideal_link_scales_with_cards(self, risk_scenario, book):
        """With an ideal host link, 4 cards cut the makespan 4x."""
        link = HostLinkModel(host_contention=0.0, dispatch_latency_s=0.0)
        yc, hc = risk_scenario.yield_curve(), risk_scenario.hazard_curve()
        runs = {
            cards: simulate_grid_run(
                shard_scenarios(16, cards),
                book.options,
                yc,
                hc,
                scenario=risk_scenario,
                policy="least-loaded",
                link=link,
            )
            for cards in (1, 4)
        }
        speedup = (
            runs[4].repricings_per_second / runs[1].repricings_per_second
        )
        assert speedup == pytest.approx(4.0, rel=1e-6)

    def test_empty_inputs_rejected(self, risk_scenario, book):
        yc, hc = risk_scenario.yield_curve(), risk_scenario.hazard_curve()
        with pytest.raises(ValidationError):
            simulate_grid_run(
                [[0]], [], yc, hc, scenario=risk_scenario, policy="x"
            )
        with pytest.raises(ValidationError):
            simulate_grid_run(
                [], book.options, yc, hc, scenario=risk_scenario, policy="x"
            )


class TestFaultedGridRun:
    """The failure-aware grid walk: re-partition on crash, straggler
    inflation, conservation, zero-fault identity."""

    def _run(self, risk_scenario, book, spec, *, n_scenarios=40, n_cards=4,
             seed=7):
        from repro.faults import FaultPlan

        assignment = shard_scenarios(n_scenarios, n_cards)
        return simulate_grid_run(
            assignment,
            book.options,
            risk_scenario.yield_curve(),
            risk_scenario.hazard_curve(),
            scenario=risk_scenario,
            policy="least-loaded",
            faults=FaultPlan.from_spec(spec, seed=seed) if spec else None,
        )

    def test_empty_plan_identity(self, risk_scenario, book):
        from repro.faults import FaultPlan
        from repro.risk.sharding import FaultedClusterTiming

        assignment = shard_scenarios(40, 4)
        kw = dict(scenario=risk_scenario, policy="least-loaded")
        yc, hc = risk_scenario.yield_curve(), risk_scenario.hazard_curve()
        legacy = simulate_grid_run(assignment, book.options, yc, hc, **kw)
        empty = simulate_grid_run(
            assignment, book.options, yc, hc, faults=FaultPlan(), **kw
        )
        assert empty == legacy
        assert not isinstance(empty, FaultedClusterTiming)

    def test_crash_with_repair_repartitions(self, risk_scenario, book):
        from repro.risk.sharding import FaultedClusterTiming

        timing = self._run(
            risk_scenario, book, "crash:card=1,at=0.0005,repair=0.0005"
        )
        assert isinstance(timing, FaultedClusterTiming)
        assert timing.n_repartitions == 1
        assert timing.n_rescheduled > 0
        assert timing.n_failed_scenarios == 0
        assert timing.wasted_seconds >= 0.0

    def test_all_cards_dead_fails_remainder(self, risk_scenario, book):
        timing = self._run(
            risk_scenario, book, "correlated:cards=0+1,at=0.0002",
            n_cards=2, n_scenarios=24,
        )
        assert timing.n_failed_scenarios > 0
        assert timing.n_failed_scenarios <= 24

    def test_straggler_grows_makespan(self, risk_scenario, book):
        base = self._run(risk_scenario, book, "")
        slowed = self._run(
            risk_scenario, book, "slow:card=0,at=0.0,for=0.01,factor=4"
        )
        assert slowed.makespan_seconds > base.makespan_seconds

    def test_deterministic(self, risk_scenario, book):
        spec = "crash:card=2,at=0.0004,repair=0.0005"
        assert self._run(risk_scenario, book, spec) == self._run(
            risk_scenario, book, spec
        )

    def test_spec_carried_in_rollup(self, risk_scenario, book):
        spec = "crash:card=1,at=0.0005,repair=0.0005"
        timing = self._run(risk_scenario, book, spec)
        assert timing.fault_spec == spec
