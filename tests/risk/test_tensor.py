"""Unit tests for the scenario-tensor lowering and the batched engine path."""

import numpy as np
import pytest

from repro.core.curves import YieldCurve
from repro.errors import ValidationError
from repro.risk.engine import Portfolio, ScenarioRiskEngine
from repro.risk.scenarios import (
    Scenario,
    ScenarioSet,
    historical_replay,
    monte_carlo,
    parallel_shocks,
    recovery_shocks,
)
from repro.risk.tensor import ScenarioTensor
from repro.workloads.history import make_curve_history


@pytest.fixture
def curves(risk_scenario):
    return risk_scenario.yield_curve(), risk_scenario.hazard_curve()


class TestScenarioTensorPacking:
    def test_shapes_and_values(self, curves):
        yc, hc = curves
        shocks = monte_carlo(yc, hc, 7, seed=3, recovery_vol=0.05)
        tensor = ScenarioTensor.from_scenario_set(shocks)
        assert tensor.n_scenarios == 7
        assert tensor.yield_values.shape == (7, len(yc))
        assert tensor.hazard_values.shape == (7, len(hc))
        for i, s in enumerate(shocks):
            np.testing.assert_array_equal(
                tensor.yield_values[i], s.yield_curve.values
            )
            np.testing.assert_array_equal(
                tensor.hazard_values[i], s.hazard_curve.values
            )
            assert tensor.recovery_shifts[i] == s.recovery_shift
        assert tensor.nbytes > 0

    def test_generators_attach_tensor(self, curves):
        yc, hc = curves
        assert monte_carlo(yc, hc, 3, seed=1).tensor is not None
        history = make_curve_history(4, seed=2)
        assert historical_replay(yc, hc, history).tensor is not None

    def test_attached_tensor_is_reused(self, curves):
        yc, hc = curves
        shocks = monte_carlo(yc, hc, 3, seed=1)
        assert ScenarioTensor.from_scenario_set(shocks) is shocks.tensor

    def test_lazily_packed_generators(self, curves):
        """Generators without attached tensors still lower cleanly."""
        yc, hc = curves
        for shocks in (parallel_shocks(yc, hc), recovery_shocks(yc, hc)):
            assert shocks.tensor is None
            tensor = ScenarioTensor.from_scenario_set(shocks)
            assert tensor.n_scenarios == len(shocks)

    def test_mixed_grids_rejected(self, curves):
        yc, hc = curves
        other_yc = YieldCurve([1.0, 2.0, 3.0], [0.01, 0.02, 0.02])
        mixed = ScenarioSet(
            name="mixed",
            base_yield=yc,
            base_hazard=hc,
            scenarios=(
                Scenario(label="a", yield_curve=yc, hazard_curve=hc),
                Scenario(label="b", yield_curve=other_yc, hazard_curve=hc),
            ),
        )
        with pytest.raises(ValidationError):
            ScenarioTensor.from_scenario_set(mixed)
        assert ScenarioTensor.try_pack(mixed) is None

    def test_replaced_scenarios_drop_stale_tensor(self, curves):
        """dataclasses.replace with different scenarios must not keep the
        old tensor — batch=True would silently price stale rows."""
        import dataclasses

        yc, hc = curves
        shocks = monte_carlo(yc, hc, 6, seed=2, recovery_vol=0.05)
        reordered = dataclasses.replace(
            shocks, scenarios=tuple(reversed(shocks.scenarios))
        )
        assert reordered.tensor is None
        tensor = ScenarioTensor.from_scenario_set(reordered)
        np.testing.assert_array_equal(
            tensor.yield_values, shocks.tensor.yield_values[::-1]
        )
        # A subset replace drops the stale tensor too (no crash).
        subset = dataclasses.replace(shocks, scenarios=shocks.scenarios[:3])
        assert subset.tensor is None
        # Same scenario tuple keeps the attached tensor.
        renamed = dataclasses.replace(shocks, name="mc-renamed")
        assert renamed.tensor is shocks.tensor

    def test_tensor_arrays_frozen(self, curves):
        yc, hc = curves
        tensor = monte_carlo(yc, hc, 3, seed=1).tensor
        with pytest.raises(ValueError):
            tensor.yield_values[0, 0] = 99.0

    def test_wrong_sized_sourceless_tensor_rejected_by_set(self, curves):
        """Hand-attached tensors (no source provenance) are validated by
        count — the caller claimed correspondence, so a mismatch is an
        error rather than a silent drop."""
        import dataclasses

        yc, hc = curves
        shocks = monte_carlo(yc, hc, 3, seed=1)
        sourceless = dataclasses.replace(shocks.tensor, source_scenarios=None)
        with pytest.raises(ValidationError):
            ScenarioSet(
                name="bad",
                base_yield=yc,
                base_hazard=hc,
                scenarios=shocks.scenarios[:2],
                tensor=sourceless,
            )


class TestBatchedEnginePath:
    def test_mixed_grid_sets_fall_back_to_loop(self, book, risk_scenario):
        """batch=True silently loops when the set cannot be lowered."""
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        yc, hc = engine.yield_curve, engine.hazard_curve
        coarse_yc = YieldCurve([1.0, 5.0, 10.0], [0.01, 0.015, 0.02])
        mixed = ScenarioSet(
            name="mixed",
            base_yield=yc,
            base_hazard=hc,
            scenarios=(
                Scenario(label="fine", yield_curve=yc, hazard_curve=hc),
                Scenario(label="coarse", yield_curve=coarse_yc, hazard_curve=hc),
            ),
        )
        batched = engine.revalue(mixed, with_timing=False, batch=True)
        looped = engine.revalue(mixed, with_timing=False, batch=False)
        np.testing.assert_array_equal(batched.pv, looped.pv)

    def test_engine_default_mode_is_constructor_mode(self, book, risk_scenario):
        looped_engine = ScenarioRiskEngine(
            book, scenario=risk_scenario, batch=False
        )
        batched_engine = ScenarioRiskEngine(
            book, scenario=risk_scenario, batch=True, chunk_size=2
        )
        shocks = monte_carlo(
            looped_engine.yield_curve, looped_engine.hazard_curve, 5, seed=9
        )
        np.testing.assert_array_equal(
            looped_engine.revalue(shocks, with_timing=False).pv,
            batched_engine.revalue(shocks, with_timing=False).pv,
        )

    def test_bad_chunk_size_rejected(self, book):
        with pytest.raises(ValidationError):
            ScenarioRiskEngine(book, chunk_size=0)

    def test_timing_identical_across_modes(self, book, risk_scenario):
        """Batching changes host wall-clock only, never the simulated
        cluster roll-up (shard boundaries are chunk boundaries)."""
        engine = ScenarioRiskEngine(book, scenario=risk_scenario, n_cards=2)
        shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 6, seed=3)
        t_batched = engine.revalue(shocks, batch=True).timing
        t_looped = engine.revalue(shocks, batch=False).timing
        assert t_batched == t_looped

    def test_single_scenario_grid(self, book, risk_scenario):
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 1, seed=4)
        rev = engine.revalue(shocks, with_timing=False, batch=True)
        assert rev.pv.shape == (1, len(book))

    def test_notional_weighting_preserved(self, risk_scenario):
        """Signed notionals weight the batched P&L exactly as the loop."""
        options = risk_scenario.options(3)
        book = Portfolio.from_options(options, notionals=[2.0, -1.5, 0.25])
        engine = ScenarioRiskEngine(book, scenario=risk_scenario)
        shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 8, seed=5)
        batched = engine.revalue(shocks, with_timing=False, batch=True)
        looped = engine.revalue(shocks, with_timing=False, batch=False)
        np.testing.assert_array_equal(batched.pnl, looped.pnl)
        np.testing.assert_array_equal(
            batched.pnl,
            (batched.pv - batched.base_pv[None, :]) @ book.notionals,
        )
