"""Shared fixtures for the serving tests: a small, fast server."""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.risk.engine import make_book
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario

N_POSITIONS = 12
N_STATES = 48


@pytest.fixture(scope="module")
def serving_scenario() -> PaperScenario:
    """Short rate tables so calibration and numerics stay fast."""
    return PaperScenario(n_rates=64, n_options=N_POSITIONS)


@pytest.fixture(scope="module")
def tape(serving_scenario):
    return make_market_tape(
        serving_scenario.yield_curve(),
        serving_scenario.hazard_curve(),
        N_STATES,
        seed=3,
    )


@pytest.fixture(scope="module")
def server(serving_scenario, tape) -> QuoteServer:
    return QuoteServer(
        make_book("heterogeneous", N_POSITIONS, seed=5),
        tape,
        scenario=serving_scenario,
        n_cards=2,
        n_engines=2,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=256,
    )


@pytest.fixture(scope="module")
def stream(server):
    return make_request_stream(
        600,
        rate_hz=2000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        var_rows=6,
        seed=11,
    )
