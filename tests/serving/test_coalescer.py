"""Unit tests for the size-or-linger micro-batch coalescer."""

import pytest

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.serving.coalescer import MicroBatchCoalescer
from repro.serving.request import PricingRequest


def req(rid, arrival, *, deadline=None, priority=0, row=0) -> PricingRequest:
    return PricingRequest(
        request_id=rid,
        kind="quote",
        arrival_s=arrival,
        deadline_s=deadline if deadline is not None else arrival + 10.0,
        rows=(row,),
        option_index=0,
        priority=priority,
    )


def coalescer(max_batch=4, linger_s=1.0) -> MicroBatchCoalescer:
    return MicroBatchCoalescer(BatchQueue(max_batch=max_batch, linger_s=linger_s))


class TestSizeTrigger:
    def test_full_queue_dispatches_immediately(self):
        c = coalescer(max_batch=3)
        assert c.offer(req(0, 0.0)) == []
        assert c.offer(req(1, 0.1)) == []
        batches = c.offer(req(2, 0.2))
        assert len(batches) == 1
        assert batches[0].formed_s == 0.2
        assert [r.request_id for r in batches[0].requests] == [0, 1, 2]
        assert c.n_pending == 0

    def test_batch_ids_increment(self):
        c = coalescer(max_batch=1, linger_s=0.0)
        ids = [c.offer(req(i, i * 0.1))[0].batch_id for i in range(3)]
        assert ids == [0, 1, 2]


class TestLingerTrigger:
    def test_oldest_request_bounds_the_wait(self):
        c = coalescer(max_batch=100, linger_s=1.0)
        c.offer(req(0, 0.0))
        c.offer(req(1, 0.5))
        # Arrival at 2.0 fires the timer that expired at 0.0 + 1.0.
        batches = c.offer(req(2, 2.0))
        assert len(batches) == 1
        assert batches[0].formed_s == 1.0
        assert [r.request_id for r in batches[0].requests] == [0, 1]
        assert c.n_pending == 1

    def test_causality_of_linger_sweep(self):
        """A linger batch formed at t only carries requests arrived by t."""
        c = coalescer(max_batch=100, linger_s=1.0)
        c.offer(req(0, 0.0))
        batches = c.offer(req(1, 1.5))  # after the timer at 1.0 fired
        batches += c.offer(req(2, 3.0))
        # Two batches: {0} at t=1.0, {1} at t=2.5 — request 1 never rides
        # the timer that expired before it arrived.
        assert [b.formed_s for b in batches] == [1.0, 2.5]
        assert [r.request_id for b in batches for r in b.requests] == [0, 1]

    def test_flush_drains_at_linger_expiry(self):
        c = coalescer(max_batch=100, linger_s=1.0)
        c.offer(req(0, 0.0))
        c.offer(req(1, 0.2))
        batches = c.flush()
        assert len(batches) == 1
        assert batches[0].formed_s == 1.0
        assert c.n_pending == 0


class TestPriorityAndDeadline:
    def test_priority_orders_the_batch(self):
        c = coalescer(max_batch=2, linger_s=1.0)
        c.offer(req(0, 0.0, priority=0))
        batches = c.offer(req(1, 0.1, priority=5))
        assert len(batches) == 1
        assert [r.request_id for r in batches[0].requests] == [1, 0]

    def test_equal_priority_keeps_arrival_order(self):
        c = coalescer(max_batch=2, linger_s=1.0)
        c.offer(req(0, 0.0, priority=1))
        batches = c.offer(req(1, 0.1, priority=1))
        assert [r.request_id for r in batches[0].requests] == [0, 1]
        assert c.n_pending == 0

    def test_expired_requests_are_shed_not_priced(self):
        c = coalescer(max_batch=100, linger_s=1.0)
        c.offer(req(0, 0.0, deadline=0.5))  # expires before the timer
        c.offer(req(1, 0.1))
        batches = c.flush()
        assert [r.request_id for r in batches[0].requests] == [1]
        assert len(c.sheds) == 1
        assert c.sheds[0].request.request_id == 0
        assert c.sheds[0].reason == "deadline"

    def test_all_expired_forms_no_batch(self):
        c = coalescer(max_batch=100, linger_s=1.0)
        c.offer(req(0, 0.0, deadline=0.5))
        assert c.flush() == []
        assert len(c.sheds) == 1


class TestOrdering:
    def test_out_of_order_offer_rejected(self):
        c = coalescer()
        c.offer(req(0, 1.0))
        with pytest.raises(ValidationError, match="arrival order"):
            c.offer(req(1, 0.5))

    def test_advance_ratchets_the_time_guard(self):
        """offer() after advance(t) cannot rewind simulated time."""
        c = coalescer(max_batch=100, linger_s=1.0)
        c.advance(10.0)
        with pytest.raises(ValidationError, match="arrival order"):
            c.offer(req(0, 5.0))

    def test_reap_sheds_expired_pending(self):
        c = coalescer(max_batch=100, linger_s=10.0)
        c.offer(req(0, 0.0, deadline=1.0))
        c.offer(req(1, 0.0, deadline=100.0))
        assert c.reap(2.0) == 1
        assert c.n_pending == 1
        assert c.sheds[0].request.request_id == 0
        assert c.sheds[0].reason == "deadline"
        # The survivor still prices normally.
        batches = c.flush()
        assert [r.request_id for r in batches[0].requests] == [1]

    def test_advance_without_due_timers_is_empty(self):
        c = coalescer(max_batch=100, linger_s=5.0)
        c.offer(req(0, 0.0))
        assert c.advance(1.0) == []
        assert c.n_pending == 1
