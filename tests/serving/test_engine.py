"""Unit tests for the quote server: cost model, event loop, metrics."""

import numpy as np
import pytest

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.risk.engine import make_book
from repro.serving import (
    DispatchCostModel,
    PricingRequest,
    QuoteServer,
    make_request_stream,
)
from repro.serving.metrics import LatencyStats
from repro.serving.request import ShedReason

from .conftest import N_POSITIONS, N_STATES


class TestDispatchCostModel:
    def test_calibration_positive(self, server):
        m = server.cost_model
        assert m.invocation_seconds > 0
        assert m.row_transfer_seconds > 0
        assert m.cell_kernel_seconds > 0

    def test_fixed_overhead_amortises(self, server):
        """Per-request service must fall as the batch grows — the whole
        point of micro-batching."""
        m = server.cost_model
        single = m.service_seconds(1, 1)
        batched = m.service_seconds(64, 64) / 64
        assert batched < single / 3

    def test_contention_stretches_pcie_only(self, server):
        m = server.cost_model
        base = m.service_seconds(4, 4, contention=1.0)
        stretched = m.service_seconds(4, 4, contention=2.0)
        assert base < stretched < 2.0 * base

    def test_validation(self, server):
        m = server.cost_model
        with pytest.raises(ValidationError):
            m.service_seconds(0, 1)
        with pytest.raises(ValidationError):
            m.service_seconds(1, 1, contention=0.5)
        with pytest.raises(ValidationError):
            DispatchCostModel(-1.0, 0.0, 0.0, 0.0, 0.0)


class TestServe:
    def test_every_request_accounted_for(self, server, stream):
        res = server.serve(stream)
        assert res.n_offered == len(stream)
        assert res.n_completed + res.n_shed == res.n_offered
        answered = {r.request_id for r in res.responses}
        shed = {s.request.request_id for s in res.sheds}
        assert answered | shed == {r.request_id for r in stream}
        assert not (answered & shed)

    def test_latencies_positive_and_ordered(self, server, stream):
        res = server.serve(stream)
        for r in res.responses:
            assert r.completion_s > r.formed_s >= r.arrival_s
            assert r.latency_s == r.completion_s - r.arrival_s
        assert res.latency.p50_s <= res.latency.p95_s <= res.latency.p99_s
        assert res.latency.p99_s <= res.latency.max_s

    def test_deterministic(self, server, stream):
        first = server.serve(stream)
        second = server.serve(stream)
        assert first == second  # responses excluded from eq; compare core
        assert [r.value for r in first.responses] == [
            r.value for r in second.responses
        ]

    def test_card_accounting_consistent(self, server, stream):
        res = server.serve(stream)
        assert sum(c.dispatches for c in res.cards) >= res.n_dispatches
        assert all(c.busy_seconds >= 0 for c in res.cards)
        total_rows = sum(c.n_rows for c in res.cards)
        assert total_rows == round(res.mean_batch_rows * res.n_dispatches)

    def test_empty_trace_rejected(self, server):
        with pytest.raises(ValidationError):
            server.serve([])

    def test_row_beyond_tape_rejected(self, server):
        bad = PricingRequest(
            0, "reval", 0.0, 1.0, rows=(N_STATES,)
        )
        with pytest.raises(ValidationError, match="beyond the"):
            server.serve([bad])

    def test_option_beyond_book_rejected(self, server):
        bad = PricingRequest(
            0, "quote", 0.0, 1.0, rows=(0,), option_index=N_POSITIONS
        )
        with pytest.raises(ValidationError, match="beyond the"):
            server.serve([bad])

    def test_shared_rows_not_double_charged(self, server):
        """Two revals on the same tape row cost the card one book
        repricing, not two — the batch dedupes rows before the kernel."""
        dup = [
            PricingRequest(0, "reval", 0.0, 1.0, rows=(5,)),
            PricingRequest(1, "reval", 0.0, 1.0, rows=(5,)),
        ]
        res = server.serve(dup)
        assert sum(c.n_cells for c in res.cards) == N_POSITIONS
        assert sum(c.n_rows for c in res.cards) == 1

    def test_quote_cells_count_distinct_contracts(self, server):
        """Quotes sharing one row charge one cell per distinct contract."""
        quotes = [
            PricingRequest(i, "quote", 0.0, 1.0, rows=(2,), option_index=i % 3)
            for i in range(6)
        ]
        res = server.serve(quotes)
        assert sum(c.n_cells for c in res.cards) == 3

    def test_render_and_summary(self, server, stream):
        res = server.serve(stream)
        assert "goodput" in res.summary()
        text = res.render()
        assert "Card" in text and "Util" in text


class TestBackpressure:
    def test_idle_server_admits_at_any_queue_depth(self, serving_scenario, tape):
        """Completed work must not count as in-flight: a request arriving
        long after the previous one finished is admitted even at depth 1."""
        srv = QuoteServer(
            make_book("heterogeneous", N_POSITIONS, seed=5),
            tape,
            scenario=serving_scenario,
            n_cards=1,
            n_engines=2,
            queue=BatchQueue(max_batch=8, linger_s=1e-3),
            queue_depth=1,
        )
        reqs = [
            PricingRequest(0, "quote", 0.0, 1.0, rows=(0,), option_index=0),
            PricingRequest(1, "quote", 10.0, 11.0, rows=(1,), option_index=1),
        ]
        res = srv.serve(reqs)
        assert res.n_completed == 2
        assert res.n_shed_queue == 0

    def test_tiny_queue_depth_sheds(self, serving_scenario, tape):
        srv = QuoteServer(
            make_book("heterogeneous", N_POSITIONS, seed=5),
            tape,
            scenario=serving_scenario,
            n_cards=1,
            n_engines=2,
            queue=BatchQueue(max_batch=8, linger_s=5e-4),
            queue_depth=4,
        )
        reqs = make_request_stream(
            300,
            rate_hz=50_000.0,  # far beyond one card's capacity
            n_states=N_STATES,
            n_positions=N_POSITIONS,
            var_rows=6,
            seed=11,
        )
        res = srv.serve(reqs)
        assert res.n_shed_queue > 0
        assert res.shed_rate > 0.1

    def test_overload_sheds_or_misses_deadlines(self, serving_scenario, tape):
        srv = QuoteServer(
            make_book("heterogeneous", N_POSITIONS, seed=5),
            tape,
            scenario=serving_scenario,
            n_cards=1,
            n_engines=2,
            queue=BatchQueue(max_batch=1, linger_s=0.0),  # no coalescing
            queue_depth=10_000,
        )
        reqs = make_request_stream(
            400,
            rate_hz=100_000.0,
            n_states=N_STATES,
            n_positions=N_POSITIONS,
            var_rows=6,
            seed=11,
        )
        res = srv.serve(reqs)
        assert res.n_late + res.n_shed > 0
        assert res.goodput_rps < res.throughput_rps or res.n_shed > 0

    def _burst_server(self, serving_scenario, tape, queue_depth):
        return QuoteServer(
            make_book("heterogeneous", N_POSITIONS, seed=5),
            tape,
            scenario=serving_scenario,
            n_cards=1,
            n_engines=2,
            # Long linger: nothing flushes between burst arrivals, so
            # the coalescer's pending count alone drives admission.
            queue=BatchQueue(max_batch=64, linger_s=1e-2),
            queue_depth=queue_depth,
        )

    @staticmethod
    def _burst(n):
        return [
            PricingRequest(
                i, "quote", i * 1e-6, 1.0, rows=(i % 4,), option_index=i % 4
            )
            for i in range(n)
        ]

    def test_exact_boundary_admits_up_to_depth(self, serving_scenario, tape):
        """The contract is ``outstanding >= queue_depth`` sheds: the
        request arriving with depth-1 outstanding is admitted, the one
        arriving at exactly depth outstanding is shed."""
        srv = self._burst_server(serving_scenario, tape, queue_depth=3)
        res = srv.serve(self._burst(4))
        assert res.n_completed == 3
        assert res.n_shed_queue == 1
        shed = res.sheds[0]
        assert shed.request.request_id == 3
        assert shed.reason == ShedReason.BACKPRESSURE

    def test_exactly_depth_requests_all_admitted(self, serving_scenario, tape):
        srv = self._burst_server(serving_scenario, tape, queue_depth=3)
        res = srv.serve(self._burst(3))
        assert res.n_completed == 3
        assert res.n_shed_queue == 0

    def test_queue_depth_one_serialises_admission(self, serving_scenario, tape):
        """Depth 1: one request outstanding at a time — the second of a
        simultaneous pair is shed, a later spaced arrival is admitted."""
        srv = self._burst_server(serving_scenario, tape, queue_depth=1)
        reqs = self._burst(2) + [
            PricingRequest(2, "quote", 5.0, 6.0, rows=(0,), option_index=0)
        ]
        res = srv.serve(reqs)
        assert res.n_completed == 2
        assert res.n_shed_queue == 1
        assert res.sheds[0].request.request_id == 1


class TestValueSemantics:
    def test_quote_matches_kernel_spread(self, server, tape):
        req = PricingRequest(
            0, "quote", 0.0, 1.0, rows=(7,), option_index=3
        )
        res = server.serve([req])
        spreads, _ = server.engine.quote_rows(tape, (7,))
        assert res.responses[0].value == float(spreads[0, 3])

    def test_reval_matches_pnl_identity(self, server, tape):
        req = PricingRequest(0, "reval", 0.0, 1.0, rows=(5,))
        res = server.serve([req])
        _, pv = server.engine.quote_rows(tape, (5,))
        expected = float(
            np.sum(
                (pv[0] - server.engine.base_pv) * server.book.notionals
            )
        )
        assert res.responses[0].value == expected

    def test_var_is_positive_loss_number(self, server, stream):
        res = server.serve(stream)
        var_vals = [r for r in res.responses if r.kind == "var"]
        assert var_vals, "stream should carry var requests"
        # VaR is a loss quantile: finite, and its sign is meaningful
        # (positive when the tail loses money).
        assert all(np.isfinite(r.value) for r in var_vals)


class TestLatencyStats:
    def test_empty_sample(self):
        s = LatencyStats.from_latencies(np.array([]))
        assert s.n == 0 and s.max_s == 0.0

    def test_percentile_order(self):
        s = LatencyStats.from_latencies(np.linspace(0.0, 1.0, 101))
        assert s.p50_s == pytest.approx(0.5)
        assert s.p95_s == pytest.approx(0.95)
        assert s.n == 101

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            LatencyStats.from_latencies(np.array([-1.0]))
