"""Edge-case contracts for the serving stat helpers.

The degenerate streams a long-running server actually produces — empty
latency samples, a single completed request, a kind that was entirely
shed, a one-card cluster — must have pinned, explicit behaviour rather
than whatever NumPy happens to do.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.serving.metrics import (
    CardLoad,
    KindStats,
    LatencyStats,
    ServingResult,
    per_kind_stats,
)
from repro.serving.request import (
    FailRecord,
    PricingRequest,
    PricingResponse,
    ShedReason,
    ShedRecord,
)


def _request(request_id: int, kind: str = "quote") -> PricingRequest:
    return PricingRequest(
        request_id=request_id,
        kind=kind,
        arrival_s=0.0,
        deadline_s=1.0,
        rows=(0,),
        option_index=0 if kind == "quote" else None,
    )


def _response(
    request_id: int, kind: str = "quote", latency_s: float = 1e-3,
    met: bool = True,
) -> PricingResponse:
    return PricingResponse(
        request_id=request_id,
        kind=kind,
        value=42.0,
        arrival_s=0.0,
        formed_s=latency_s / 2,
        completion_s=latency_s,
        latency_s=latency_s,
        met_deadline=met,
        batch_id=0,
        cards=(0,),
    )


def _result(responses=(), sheds=(), fails=(), cards=(), span_seconds=1.0) -> ServingResult:
    met = sum(1 for r in responses if r.met_deadline)
    return ServingResult(
        n_offered=len(responses) + len(sheds) + len(fails),
        n_completed=len(responses),
        n_shed_queue=sum(1 for s in sheds if s.reason == "queue_full"),
        n_shed_deadline=sum(1 for s in sheds if s.reason == "deadline"),
        n_deadline_met=met,
        n_late=len(responses) - met,
        span_seconds=span_seconds,
        throughput_rps=len(responses) / span_seconds,
        goodput_rps=met / span_seconds,
        shed_rate=(
            len(sheds) / (len(responses) + len(sheds))
            if responses or sheds
            else 0.0
        ),
        deadline_hit_rate=met / len(responses) if responses else 0.0,
        latency=LatencyStats.from_latencies(
            np.asarray([r.latency_s for r in responses])
        ),
        n_dispatches=1,
        mean_batch_requests=float(len(responses)),
        mean_batch_rows=1.0,
        cards=tuple(cards),
        responses=tuple(responses),
        sheds=tuple(sheds),
        n_failed=len(fails),
        fails=tuple(fails),
    )


class TestLatencyStatsEmpty:
    def test_default_zero_policy(self):
        stats = LatencyStats.from_latencies(np.array([]))
        assert stats.n == 0
        assert stats.mean_s == 0.0
        assert stats.p99_s == 0.0

    def test_nan_policy(self):
        stats = LatencyStats.from_latencies(np.array([]), empty="nan")
        assert stats.n == 0
        for value in (stats.mean_s, stats.p50_s, stats.p95_s, stats.p99_s,
                      stats.max_s):
            assert math.isnan(value)

    def test_raise_policy(self):
        with pytest.raises(ValidationError):
            LatencyStats.from_latencies(np.array([]), empty="raise")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            LatencyStats.from_latencies(np.array([1.0]), empty="drop")


class TestLatencyStatsDegenerate:
    def test_single_sample_every_stat_equals_it(self):
        stats = LatencyStats.from_latencies(np.array([2e-3]))
        assert stats.n == 1
        for value in (stats.mean_s, stats.p50_s, stats.p95_s, stats.p99_s,
                      stats.max_s):
            assert value == pytest.approx(2e-3)

    def test_nan_sample_rejected(self):
        with pytest.raises(ValidationError):
            LatencyStats.from_latencies(np.array([1e-3, float("nan")]))

    def test_negative_sample_rejected(self):
        with pytest.raises(ValidationError):
            LatencyStats.from_latencies(np.array([-1e-3]))


class TestPerKindStatsEdges:
    def test_kind_with_zero_requests_is_omitted(self):
        result = _result(responses=[_response(0, "quote")])
        kinds = per_kind_stats(result)
        assert [k.kind for k in kinds] == ["quote"]

    def test_all_shed_kind_has_zero_completions(self):
        sheds = [
            ShedRecord(request=_request(0, "var"), time_s=0.5,
                       reason="queue_full"),
            ShedRecord(request=_request(1, "var"), time_s=0.6,
                       reason="deadline"),
        ]
        result = _result(responses=[_response(2, "quote")], sheds=sheds)
        by_kind = {k.kind: k for k in per_kind_stats(result)}
        var = by_kind["var"]
        assert var.n_offered == 2
        assert var.n_completed == 0
        assert var.n_shed == 2
        assert var.deadline_hit_rate == 0.0
        assert var.goodput_rps == 0.0
        assert var.latency.n == 0

    def test_fully_shed_run(self):
        sheds = [
            ShedRecord(request=_request(i, "quote"), time_s=0.1,
                       reason="queue_full")
            for i in range(3)
        ]
        result = _result(sheds=sheds)
        kinds = per_kind_stats(result)
        assert len(kinds) == 1
        assert kinds[0].n_completed == 0
        assert result.shed_rate == 1.0

    def test_canonical_kind_order(self):
        result = _result(
            responses=[
                _response(0, "var"), _response(1, "quote"),
                _response(2, "reval"),
            ]
        )
        assert [k.kind for k in per_kind_stats(result)] == [
            "quote", "reval", "var"
        ]

    def test_per_kind_goodput_sums_to_aggregate(self):
        result = _result(
            responses=[
                _response(0, "quote"), _response(1, "var", met=False),
                _response(2, "reval"),
            ]
        )
        kinds = per_kind_stats(result)
        assert sum(k.goodput_rps for k in kinds) == pytest.approx(
            result.goodput_rps
        )

    def test_single_completion_of_a_kind(self):
        result = _result(responses=[_response(0, "reval", latency_s=3e-3)])
        (reval,) = per_kind_stats(result)
        assert isinstance(reval, KindStats)
        assert reval.latency.n == 1
        assert reval.latency.p99_s == pytest.approx(3e-3)


class TestCardLoadEdges:
    def test_idle_card(self):
        idle = CardLoad(card_id=1, dispatches=0, n_rows=0, n_cells=0,
                        busy_seconds=0.0, utilisation=0.0)
        assert idle.idle is True

    def test_single_card_carries_everything(self):
        card = CardLoad(card_id=0, dispatches=4, n_rows=10, n_cells=80,
                        busy_seconds=0.5, utilisation=0.5)
        result = _result(responses=[_response(0)], cards=[card])
        assert len(result.cards) == 1
        assert result.cards[0].idle is False
        # The render path must cope with a one-card table.
        assert "Card" in result.render()


class TestShedReasonAccounting:
    """The typed shed/fail taxonomy introduced with fault injection."""

    def test_fail_record_normalises_string_reason(self):
        f = FailRecord(_request(0), 0.5, attempts=3, reason="card_failure")
        assert f.reason is ShedReason.CARD_FAILURE

    def test_n_shed_other_counts_beyond_legacy_pair(self):
        sheds = (
            ShedRecord(_request(0), 0.1, "queue_full"),
            ShedRecord(_request(1), 0.2, "deadline"),
            ShedRecord(_request(2), 0.3, ShedReason.DEGRADED),
        )
        res = _result(sheds=sheds)
        assert res.n_shed == 3
        assert res.n_shed_other == 1

    def test_shed_reason_counts_spans_sheds_and_fails(self):
        sheds = (
            ShedRecord(_request(0), 0.1, "queue_full"),
            ShedRecord(_request(1), 0.3, ShedReason.DEGRADED),
        )
        fails = (
            FailRecord(_request(2), 0.4, attempts=3,
                       reason=ShedReason.CARD_FAILURE),
            FailRecord(_request(3), 0.5, attempts=2,
                       reason=ShedReason.CARD_FAILURE),
        )
        counts = _result(sheds=sheds, fails=fails).shed_reason_counts()
        assert counts == {
            "queue_full": 1,
            "card_failure": 2,
            "degraded": 1,
        }

    def test_zero_fault_counts_omit_fault_reasons(self):
        sheds = (ShedRecord(_request(0), 0.1, "queue_full"),)
        counts = _result(sheds=sheds).shed_reason_counts()
        assert counts == {"queue_full": 1}

    def test_per_kind_stats_count_failures_in_offered(self):
        responses = (_response(0, "quote"),)
        fails = (
            FailRecord(_request(1, "var"), 0.4, attempts=3,
                       reason=ShedReason.CARD_FAILURE),
        )
        stats = {
            s.kind: s
            for s in per_kind_stats(_result(responses=responses, fails=fails))
        }
        assert stats["var"].n_offered == 1
        assert stats["var"].n_completed == 0
        assert stats["quote"].n_offered == 1
