"""Tests for the mixed-workload pieces: the periodic risk-refresh
stream and the per-kind metrics breakdown."""

import pytest

from repro.errors import ValidationError
from repro.serving import make_request_stream, make_risk_refresh_stream, per_kind_stats
from repro.serving.workload import KIND_PRIORITY


class TestRiskRefreshStream:
    def test_periodic_arrivals_and_deadlines(self):
        stream = make_risk_refresh_stream(
            4, period_s=0.25, n_states=32, var_rows=8, seed=3
        )
        assert [r.arrival_s for r in stream] == [0.25, 0.5, 0.75, 1.0]
        for r in stream:
            assert r.kind == "var"
            assert r.deadline_s == r.arrival_s + 0.8 * 0.25
            assert r.priority == KIND_PRIORITY["var"]
            assert r.option_index is None
            assert len(r.rows) == 8
            assert list(r.rows) == sorted(set(r.rows))
            assert all(0 <= row < 32 for row in r.rows)

    def test_id_base_offsets_past_a_quote_trace(self):
        stream = make_risk_refresh_stream(
            3, period_s=0.1, n_states=8, request_id_base=500, seed=3
        )
        assert [r.request_id for r in stream] == [500, 501, 502]

    def test_var_rows_capped_at_tape_length(self):
        stream = make_risk_refresh_stream(
            2, period_s=0.1, n_states=4, var_rows=100, seed=3
        )
        assert all(len(r.rows) == 4 for r in stream)

    def test_custom_start_and_fraction(self):
        stream = make_risk_refresh_stream(
            2, period_s=1.0, n_states=8, start_s=0.0,
            deadline_fraction=0.5, seed=3,
        )
        assert [r.arrival_s for r in stream] == [0.0, 1.0]
        assert [r.deadline_s for r in stream] == [0.5, 1.5]

    def test_deterministic_in_seed(self):
        a = make_risk_refresh_stream(5, period_s=0.1, n_states=64, seed=9)
        b = make_risk_refresh_stream(5, period_s=0.1, n_states=64, seed=9)
        c = make_risk_refresh_stream(5, period_s=0.1, n_states=64, seed=10)
        assert a == b
        assert a != c

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_refreshes": 0},
            {"period_s": 0.0},
            {"n_states": 0},
            {"var_rows": 0},
            {"deadline_fraction": 0.0},
            {"deadline_fraction": 1.5},
            {"start_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(n_refreshes=2, period_s=0.1, n_states=8)
        defaults.update(kwargs)
        n = defaults.pop("n_refreshes")
        with pytest.raises(ValidationError):
            make_risk_refresh_stream(n, **defaults)


class TestPerKindStats:
    def test_breakdown_partitions_the_run(self, server):
        requests = make_request_stream(
            300,
            rate_hz=2000.0,
            n_states=48,
            n_positions=12,
            var_rows=6,
            seed=11,
        )
        result = server.serve(requests)
        kinds = per_kind_stats(result)
        assert [k.kind for k in kinds] == [
            k for k in ("quote", "reval", "var")
            if any(r.kind == k for r in result.responses)
            or any(s.request.kind == k for s in result.sheds)
        ]
        assert sum(k.n_offered for k in kinds) == result.n_offered
        assert sum(k.n_completed for k in kinds) == result.n_completed
        assert sum(k.n_shed for k in kinds) == result.n_shed
        assert sum(k.n_deadline_met for k in kinds) == result.n_deadline_met
        for k in kinds:
            assert k.n_offered == k.n_completed + k.n_shed
            assert k.latency.n == k.n_completed
            if k.n_completed:
                assert k.deadline_hit_rate == k.n_deadline_met / k.n_completed
        # Per-kind goodputs share the aggregate span denominator.
        total = sum(k.goodput_rps for k in kinds)
        assert total == pytest.approx(result.goodput_rps)
