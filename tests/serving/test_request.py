"""Unit tests for the serving request/response types."""

import pytest

from repro.errors import ValidationError
from repro.serving.request import PricingRequest, ShedRecord


def quote(rid=0, arrival=0.0, deadline=1.0, **kw) -> PricingRequest:
    kw.setdefault("rows", (0,))
    kw.setdefault("option_index", 0)
    return PricingRequest(
        request_id=rid, kind="quote", arrival_s=arrival, deadline_s=deadline, **kw
    )


class TestPricingRequest:
    def test_quote_shape(self):
        q = quote(rows=(3,), option_index=5, deadline=0.5)
        assert q.n_rows == 1
        assert q.n_cells(100) == 1

    def test_reval_cells_scale_with_book(self):
        r = PricingRequest(1, "reval", 0.0, 1.0, rows=(2,))
        assert r.n_cells(64) == 64

    def test_var_cells_scale_with_rows_and_book(self):
        v = PricingRequest(2, "var", 0.0, 1.0, rows=(0, 1, 2, 3))
        assert v.n_rows == 4
        assert v.n_cells(10) == 40

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown request kind"):
            PricingRequest(0, "gamma", 0.0, 1.0, rows=(0,))

    def test_deadline_must_exceed_arrival(self):
        with pytest.raises(ValidationError, match="deadline"):
            quote(arrival=1.0, deadline=1.0)

    def test_rows_non_empty(self):
        with pytest.raises(ValidationError, match="rows"):
            PricingRequest(0, "var", 0.0, 1.0, rows=())

    def test_single_state_kinds_reject_multi_row(self):
        with pytest.raises(ValidationError, match="exactly one market state"):
            PricingRequest(0, "reval", 0.0, 1.0, rows=(0, 1))

    def test_quote_needs_option_index(self):
        with pytest.raises(ValidationError, match="option_index"):
            PricingRequest(0, "quote", 0.0, 1.0, rows=(0,))

    def test_option_index_rejected_off_quote(self):
        with pytest.raises(ValidationError, match="only applies to quote"):
            PricingRequest(0, "reval", 0.0, 1.0, rows=(0,), option_index=1)


class TestShedRecord:
    def test_reasons(self):
        q = quote()
        assert ShedRecord(q, 0.5, "queue_full").reason == "queue_full"
        with pytest.raises(ValidationError, match="unknown shed reason"):
            ShedRecord(q, 0.5, "mood")
