"""Telemetry integration for the quote server.

Two contracts pin the tentpole acceptance criteria at engine level:

* with a recording handle, every completed request's phase spans tile
  its [arrival, completion] window exactly — the span durations sum to
  the response latency;
* with the default no-op handle, the :class:`ServingResult` is
  *identical* to a recorded run's (telemetry observes, never perturbs).
"""

from __future__ import annotations

import pytest

from repro.cluster.batching import BatchQueue
from repro.risk.engine import make_book
from repro.serving import QuoteServer
from repro.telemetry import NULL_TELEMETRY, Telemetry

from .conftest import N_POSITIONS

#: Request-phase spans in pipeline order.
PHASES = ("coalesce", "host_link", "card_queue", "card_service")


def _make_server(serving_scenario, tape, telemetry=None) -> QuoteServer:
    return QuoteServer(
        make_book("heterogeneous", N_POSITIONS, seed=5),
        tape,
        scenario=serving_scenario,
        n_cards=2,
        n_engines=2,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=256,
        telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def recorded(serving_scenario, tape, stream):
    telemetry = Telemetry.recording()
    server = _make_server(serving_scenario, tape, telemetry)
    result = server.serve(stream)
    return telemetry, result


class TestRequestSpans:
    def test_every_response_has_the_four_phases(self, recorded):
        telemetry, result = recorded
        for response in result.responses:
            spans = telemetry.recorder.for_trace(response.request_id)
            assert tuple(s.name for s in spans) == PHASES

    def test_phase_durations_sum_to_latency(self, recorded):
        telemetry, result = recorded
        for response in result.responses:
            spans = telemetry.recorder.for_trace(response.request_id)
            total = sum(s.duration_s for s in spans)
            assert total == pytest.approx(response.latency_s, abs=1e-12)

    def test_phases_are_contiguous(self, recorded):
        telemetry, result = recorded
        for response in result.responses[:50]:
            spans = telemetry.recorder.for_trace(response.request_id)
            for left, right in zip(spans, spans[1:]):
                assert right.start_s == pytest.approx(left.end_s, abs=1e-12)

    def test_spans_carry_kind(self, recorded):
        telemetry, result = recorded
        for response in result.responses[:50]:
            spans = telemetry.recorder.for_trace(response.request_id)
            assert {s.kind for s in spans} == {response.kind}

    def test_resource_tracks_present(self, recorded):
        telemetry, result = recorded
        tracks = {s.track for s in telemetry.spans if s.category == "resource"}
        assert "host" in tracks
        assert {"card0", "card1"} <= tracks

    def test_card_busy_matches_resource_spans(self, recorded):
        telemetry, result = recorded
        for card in result.cards:
            spans = telemetry.recorder.for_track(f"card{card.card_id}")
            busy = sum(
                s.duration_s for s in spans if s.category == "resource"
            )
            assert busy == pytest.approx(card.busy_seconds, abs=1e-12)


class TestMetricsPublication:
    def test_counters_match_result(self, recorded):
        telemetry, result = recorded
        m = telemetry.metrics
        assert m.get("serving_requests_offered_total").value == result.n_offered
        assert (
            m.get("serving_requests_completed_total").value
            == result.n_completed
        )
        assert m.get("serving_batches_total").value == result.n_dispatches

    def test_latency_histogram_count(self, recorded):
        telemetry, result = recorded
        h = telemetry.metrics.get("serving_latency_seconds")
        assert h.count == result.n_completed
        assert h.max == pytest.approx(result.latency.max_s)


class TestNoOpIdentity:
    def test_default_run_identical_to_recorded_run(
        self, serving_scenario, tape, stream, recorded
    ):
        _, with_telemetry = recorded
        bare = _make_server(serving_scenario, tape).serve(stream)
        # Frozen-dataclass equality over every simulated number.
        assert bare == with_telemetry

    def test_null_singleton_registry_stays_clean(
        self, serving_scenario, tape, stream
    ):
        before = len(NULL_TELEMETRY.metrics)
        _make_server(serving_scenario, tape).serve(stream)
        assert len(NULL_TELEMETRY.metrics) == before
