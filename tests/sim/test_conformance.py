"""Timing-conformance suite: the :mod:`repro.sim` rebuild is pinned
**bit-identical** to the legacy per-silo clocks it replaced.

Each test carries a compact reference implementation of the pre-rebuild
arithmetic — scalar ``busy_until`` per card, a ``host_free`` scalar for
the serialised dispatch thread, direct ``kernel + pcie * factor`` sums —
and asserts exact float equality (``==``, no tolerances) against the
rebuilt layers across schedulers, card counts and traffic models.  The
recurrences are identical operation-for-operation, so any drift is a
real behaviour change, not rounding.
"""

from __future__ import annotations

import heapq
import json
import random
from pathlib import Path

import pytest

from repro.api.cost import ClusterTimingRig, DispatchCostModel
from repro.cluster.batching import BatchQueue
from repro.cluster.cluster import CDSCluster, option_costs
from repro.cluster.interconnect import HostLinkModel
from repro.cluster.node import ClusterNode
from repro.cluster.scheduler import SCHEDULERS, make_scheduler
from repro.risk.engine import make_book
from repro.risk.sharding import shard_scenarios, simulate_grid_run
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.serving.coalescer import MicroBatchCoalescer
from repro.workloads.cluster import Arrival
from repro.workloads.scenarios import PaperScenario

BENCH_SERVING = Path(__file__).resolve().parents[2] / "BENCH_serving.json"


# ---------------------------------------------------------------------------
# Rig level: the host_free / busy_until recurrence.
# ---------------------------------------------------------------------------
def test_rig_matches_legacy_host_free_recurrence():
    """A random dispatch sequence replayed through scalar state.

    Legacy serving kept one ``host_free`` float for the serialised host
    thread and one ``busy_until`` float per card; the rig spells the same
    recurrence as two chained reservations.  Every window must agree
    exactly.
    """
    gen = random.Random(3)
    cost = DispatchCostModel(
        invocation_seconds=1e-5,
        pcie_latency_s=2e-6,
        row_transfer_seconds=1e-7,
        cell_transfer_seconds=3e-8,
        cell_kernel_seconds=5e-7,
    )
    link = HostLinkModel()
    rig = ClusterTimingRig(cost, link, 3)
    host_free = 0.0
    busy = [0.0, 0.0, 0.0]
    t = 0.0
    for _ in range(300):
        t += gen.expovariate(2000.0)
        card = gen.randrange(3)
        n_rows = gen.randint(1, 8)
        n_cells = n_rows * gen.randint(1, 16)
        factor = link.contention_factor(gen.randint(1, 3))
        window = rig.dispatch(t, card, n_rows, n_cells, contention=factor)

        issued = max(t, host_free) + link.dispatch_seconds(1)
        host_free = issued
        start = max(issued, busy[card])
        done = start + cost.service_seconds(n_rows, n_cells, contention=factor)
        busy[card] = done
        assert window.start_s == start
        assert window.done_s == done
    assert rig.host.busy_until == host_free
    assert [c.busy_until for c in rig.cards] == busy


# ---------------------------------------------------------------------------
# Cluster dispatch.
# ---------------------------------------------------------------------------
def _legacy_cluster_timing(scenario, options, yc, hc, *, n_cards, n_engines,
                           policy, link):
    """Pre-rebuild ``CDSCluster.run`` timing: direct per-card sums."""
    scheduler = make_scheduler(policy)
    assignment = scheduler.partition(option_costs(options), n_cards)
    active = sum(1 for chunk in assignment if chunk)
    factor = link.contention_factor(active)
    seconds: dict[int, float] = {}
    for card_id, chunk in enumerate(assignment):
        if not chunk:
            continue
        node = ClusterNode(card_id, scenario, n_engines=n_engines)
        result = node.price([options[i] for i in chunk], yc, hc)
        kernel = scenario.clock.seconds(result.kernel_cycles)
        seconds[card_id] = kernel + result.pcie_seconds * factor
    dispatches = scheduler.dispatches(assignment)
    makespan = max(seconds.values()) + link.dispatch_seconds(dispatches)
    return makespan, seconds, dispatches


@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
@pytest.mark.parametrize("n_cards", [1, 3])
def test_cluster_timing_conformance(policy, n_cards):
    scenario = PaperScenario(n_rates=64, n_options=24)
    options = scenario.options()
    yc, hc = scenario.yield_curve(), scenario.hazard_curve()
    link = HostLinkModel()

    result = CDSCluster(
        scenario, n_cards=n_cards, n_engines=2, scheduler=policy, link=link
    ).run(options, yc, hc)
    makespan, seconds, dispatches = _legacy_cluster_timing(
        scenario, options, yc, hc,
        n_cards=n_cards, n_engines=2, policy=policy, link=link,
    )

    assert result.makespan_seconds == makespan
    assert result.dispatches == dispatches
    assert result.options_per_second == len(options) / makespan
    for card in result.cards:
        assert card.seconds == seconds.get(card.card_id, 0.0)
        assert card.utilisation == card.seconds / makespan


# ---------------------------------------------------------------------------
# Risk-shard grid replay.
# ---------------------------------------------------------------------------
def _legacy_grid_timing(assignment, options, yc, hc, *, scenario, n_engines,
                        link, queue):
    """Pre-rebuild ``simulate_grid_run`` timing: scalar busy per card."""
    active = sum(1 for chunk in assignment if chunk)
    factor = link.contention_factor(active)
    node = ClusterNode(0, scenario, n_engines=n_engines)
    result = node.price(options, yc, hc)
    batch_seconds = (
        scenario.clock.seconds(result.kernel_cycles)
        + result.pcie_seconds * factor
    )
    seconds: dict[int, float] = {}
    dispatches = 0
    token = options[0]
    for card_id, chunk in enumerate(assignment):
        if not chunk:
            continue
        dispatches += len(
            queue.coalesce([Arrival(time_s=0.0, options=[token] * len(chunk))])
        )
        seconds[card_id] = len(chunk) * batch_seconds
    makespan = max(seconds.values()) + link.dispatch_seconds(dispatches)
    return batch_seconds, makespan, seconds


@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
@pytest.mark.parametrize("n_scenarios,n_cards", [(17, 3), (64, 4)])
def test_risk_grid_timing_conformance(policy, n_scenarios, n_cards):
    scenario = PaperScenario(n_rates=64, n_options=12)
    options = scenario.options()
    yc, hc = scenario.yield_curve(), scenario.hazard_curve()
    link = HostLinkModel()
    queue = BatchQueue()
    assignment = shard_scenarios(n_scenarios, n_cards, policy)

    timing = simulate_grid_run(
        assignment, options, yc, hc,
        scenario=scenario, policy=policy, n_engines=2, link=link, queue=queue,
    )
    batch_seconds, makespan, seconds = _legacy_grid_timing(
        assignment, options, yc, hc,
        scenario=scenario, n_engines=2, link=link, queue=queue,
    )

    assert timing.batch_seconds == batch_seconds
    assert timing.makespan_seconds == makespan
    assert timing.scenarios_per_second == n_scenarios / makespan
    for shard in timing.cards:
        assert shard.seconds == seconds.get(shard.card_id, 0.0)
        assert shard.utilisation == shard.seconds / makespan


# ---------------------------------------------------------------------------
# Serving: the full event-driven serve loop.
# ---------------------------------------------------------------------------
N_POSITIONS = 12
N_STATES = 48
N_CARDS = 3


@pytest.fixture(scope="module")
def server():
    scenario = PaperScenario(n_rates=64, n_options=N_POSITIONS)
    tape = make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(), N_STATES, seed=3
    )
    return QuoteServer(
        make_book("heterogeneous", N_POSITIONS, seed=5),
        tape,
        scenario=scenario,
        n_cards=N_CARDS,
        n_engines=2,
        queue=BatchQueue(max_batch=16, linger_s=1e-3),
        queue_depth=64,
    )


def _legacy_serve_timing(server, requests):
    """Pre-rebuild ``QuoteServer.serve``: the scalar-clock trace replay.

    Timing only — numerics are kernel outputs and never depended on the
    clock.  Returns per-request completion instants and card placements,
    per-card accounting, and the shed request ids, all computed with the
    legacy ``host_free`` / per-card ``busy_until`` floats.
    """
    trace = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    coalescer = MicroBatchCoalescer(server.queue)
    host_free = 0.0
    busy = [0.0] * server.n_cards
    busy_seconds = [0.0] * server.n_cards
    card_dispatches = [0] * server.n_cards
    in_flight: list[float] = []
    completions: dict[int, tuple[float, tuple[int, ...]]] = {}
    queue_shed_ids: list[int] = []
    n_batches = 0

    def run(batches):
        nonlocal host_free, n_batches
        for batch in batches:
            n_batches += 1
            rows = batch.rows
            wanted = {r: set() for r in rows}
            for req in batch.requests:
                for r in req.rows:
                    if req.kind == "quote" and wanted[r] is not None:
                        wanted[r].add(req.option_index)
                    elif req.kind != "quote":
                        wanted[r] = None
            weight = {
                r: server.n_positions if opts is None else len(opts)
                for r, opts in wanted.items()
            }
            assignment = server.scheduler.partition(
                [float(weight[r]) for r in rows], server.n_cards
            )
            active = sum(1 for chunk in assignment if chunk)
            factor = server.link.contention_factor(active)
            chunks = sorted(
                (chunk for chunk in assignment if chunk),
                key=lambda chunk: -sum(weight[rows[i]] for i in chunk),
            )
            by_busy = sorted(
                range(server.n_cards), key=lambda c: (busy[c], c)
            )
            row_done: dict[int, float] = {}
            row_card: dict[int, int] = {}
            for slot, chunk in enumerate(chunks):
                card = by_busy[slot]
                n_rows = len(chunk)
                n_cells = sum(weight[rows[i]] for i in chunk)
                issued = max(batch.formed_s, host_free) \
                    + server.link.dispatch_seconds(1)
                host_free = issued
                service = server.cost_model.service_seconds(
                    n_rows, n_cells, contention=factor
                )
                start = max(issued, busy[card])
                done = start + service
                busy[card] = done
                busy_seconds[card] += service
                card_dispatches[card] += 1
                for i in chunk:
                    row_done[rows[i]] = done
                    row_card[rows[i]] = card
            for req in batch.requests:
                completion = max(row_done[r] for r in req.rows)
                completions[req.request_id] = (
                    completion,
                    tuple(sorted({row_card[r] for r in req.rows})),
                )
                heapq.heappush(in_flight, completion)

    for req in trace:
        now = req.arrival_s
        run(coalescer.advance(now))
        while in_flight and in_flight[0] <= now:
            heapq.heappop(in_flight)
        coalescer.reap(now)
        if coalescer.n_pending + len(in_flight) >= server.queue_depth:
            queue_shed_ids.append(req.request_id)
            continue
        run(coalescer.offer(req))
    run(coalescer.flush())

    deadline_shed_ids = [s.request.request_id for s in coalescer.sheds]
    return (completions, busy_seconds, card_dispatches,
            queue_shed_ids, deadline_shed_ids, n_batches)


@pytest.mark.parametrize("traffic", ["poisson", "bursty", "diurnal"])
def test_serving_timing_conformance(server, traffic):
    requests = make_request_stream(
        400,
        rate_hz=3000.0,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        traffic=traffic,
        var_rows=6,
        seed=11,
    )
    result = server.serve(requests)
    (completions, busy_seconds, card_dispatches,
     queue_shed_ids, deadline_shed_ids, n_batches) = _legacy_serve_timing(
        server, requests
    )

    # The event loop must have exercised real contention, not a trivial
    # one-batch replay.
    assert result.n_dispatches > 5
    assert sum(1 for d in card_dispatches if d) > 1

    assert result.n_dispatches == n_batches
    assert len(result.responses) == len(completions)
    for resp in result.responses:
        completion, cards = completions[resp.request_id]
        assert resp.completion_s == completion
        assert resp.latency_s == completion - resp.arrival_s
        assert resp.cards == cards
    for card in result.cards:
        assert card.busy_seconds == busy_seconds[card.card_id]
        assert card.dispatches == card_dispatches[card.card_id]
    assert [s.request.request_id for s in result.sheds
            if s.reason == "queue_full"] == queue_shed_ids
    assert sorted(s.request.request_id for s in result.sheds
                  if s.reason == "deadline") == sorted(deadline_shed_ids)


# ---------------------------------------------------------------------------
# Benchmark artifact: the committed BENCH_serving.json simulated metrics.
# ---------------------------------------------------------------------------
def test_bench_serving_metrics_reproduce():
    """Rerun the committed benchmark's coalesced config; every simulated
    metric must land exactly on the committed (rounded) value.

    ``host_wall_seconds`` is real wall-clock and excluded — the simulated
    rows are the deterministic contract.
    """
    committed = json.loads(BENCH_SERVING.read_text())
    offered = committed["offered"]
    scenario = PaperScenario(n_rates=256, n_options=offered["n_positions"])
    tape = make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(),
        offered["n_states"], seed=7,
    )
    srv = QuoteServer(
        make_book("heterogeneous", offered["n_positions"], seed=7),
        tape,
        scenario=scenario,
        n_cards=offered["n_cards"],
        n_engines=5,
        queue=BatchQueue(max_batch=256, linger_s=5e-4),
        queue_depth=2048,
    )
    requests = make_request_stream(
        offered["n_requests"],
        rate_hz=offered["rate_hz"],
        n_states=offered["n_states"],
        n_positions=offered["n_positions"],
        seed=7,
    )
    result = srv.serve(requests)
    assert committed["coalesced"] == {
        "goodput_rps": round(result.goodput_rps, 1),
        "throughput_rps": round(result.throughput_rps, 1),
        "shed_rate": round(result.shed_rate, 4),
        "deadline_hit_rate": round(result.deadline_hit_rate, 4),
        "p50_ms": round(result.latency.p50_s * 1e3, 3),
        "p95_ms": round(result.latency.p95_s * 1e3, 3),
        "p99_ms": round(result.latency.p99_s * 1e3, 3),
        "n_dispatches": result.n_dispatches,
        "mean_batch_requests": round(result.mean_batch_requests, 2),
    }
