"""Unit tests for the event-queue primitives: ordering, cancellation,
clock monotonicity, determinism."""

import random

import pytest

from repro.errors import ValidationError
from repro.sim import Clock, Event, EventQueue, Process, Simulation


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        late = q.push(Event(time=2.0))
        early = q.push(Event(time=1.0))
        assert q.pop() is early
        assert q.pop() is late

    def test_equal_timestamps_pop_in_push_order(self):
        """The stable tie-break: same instant, same priority → push order."""
        q = EventQueue()
        events = [q.push(Event(time=1.0)) for _ in range(50)]
        assert [q.pop() for _ in range(50)] == events

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low = q.push(Event(time=1.0, priority=5))
        high = q.push(Event(time=1.0, priority=0))
        assert q.pop() is high
        assert q.pop() is low

    def test_cancellation_skips_event(self):
        q = EventQueue()
        keep = q.push(Event(time=1.0))
        drop = q.push(Event(time=0.5))
        q.cancel(drop)
        assert len(q) == 1
        assert q.pop() is keep
        assert not q

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(Event(time=1.0))
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_does_not_remove(self):
        q = EventQueue()
        e = q.push(Event(time=3.0))
        assert q.peek() is e
        assert len(q) == 1
        assert q.pop() is e
        assert q.peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(ValidationError):
            EventQueue().pop()

    def test_events_are_single_use(self):
        q = EventQueue()
        e = q.push(Event(time=1.0))
        q.pop()
        with pytest.raises(ValidationError):
            q.push(e)

    def test_deterministic_under_fixed_seed(self):
        """Same seeded schedule → identical execution order, run to run."""

        def replay(seed):
            gen = random.Random(seed)
            q = EventQueue()
            for i in range(200):
                q.push(Event(time=gen.choice([0.0, 1.0, 2.0]), payload=i))
            return [q.pop().payload for _ in range(200)]

        assert replay(7) == replay(7)
        assert replay(7) != replay(8)


class TestClock:
    def test_monotone(self):
        c = Clock()
        assert c.advance_to(1.5) == 1.5
        with pytest.raises(ValidationError):
            c.advance_to(1.0)

    def test_advance_to_same_instant_is_allowed(self):
        c = Clock(2.0)
        assert c.advance_to(2.0) == 2.0


class TestSimulation:
    def test_runs_events_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule_at(2.0, fired.append, payload="b")
        sim.schedule_at(1.0, fired.append, payload="a")
        assert sim.run() == 2
        assert fired == ["a", "b"]
        assert sim.now == 2.0

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulation()
        fired = []

        def first(_):
            fired.append("first")
            sim.schedule(0.5, lambda _: fired.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 1.5

    def test_cannot_schedule_into_the_past(self):
        sim = Simulation()
        sim.schedule_at(1.0, lambda _: None)
        sim.run()
        with pytest.raises(ValidationError):
            sim.schedule_at(0.5, lambda _: None)

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulation()
        fired = []
        sim.schedule_at(1.0, fired.append, payload=1)
        sim.schedule_at(5.0, fired.append, payload=5)
        assert sim.run(until=2.0) == 1
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.run() == 1
        assert fired == [1, 5]

    def test_cancelled_event_never_fires(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule_at(1.0, fired.append, payload="x")
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_trace_hooks_see_every_event(self):
        sim = Simulation()
        seen = []
        sim.add_trace(lambda e: seen.append((e.time, e.label)))
        sim.schedule_at(1.0, lambda _: None, label="one")
        sim.schedule_at(2.0, lambda _: None, label="two")
        sim.run()
        assert seen == [(1.0, "one"), (2.0, "two")]


class TestProcess:
    def test_hold_chains_steps(self):
        sim = Simulation()
        ticks = []
        proc = Process(sim, "ticker")

        def tick(_):
            ticks.append(sim.now)
            if len(ticks) < 3:
                proc.hold(1.0, tick)

        proc.hold(1.0, tick)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_every_schedules_periodic_instants(self):
        sim = Simulation()
        fired = []
        Process(sim, "refresh").every(0.5, fired.append, start=1.0, n_times=3)
        sim.run()
        assert fired == [1.0, 1.5, 2.0]


class TestCancellationEdges:
    """Documented contracts around dead events (fired / cancelled /
    never-pushed) — these used to be corruption vectors."""

    def test_cancel_after_fire_is_a_noop(self):
        q = EventQueue()
        fired = q.push(Event(time=1.0))
        live = q.push(Event(time=2.0))
        assert q.pop() is fired
        q.cancel(fired)  # dead event: must not touch the live count
        assert len(q) == 1
        assert q.pop() is live

    def test_cancel_never_pushed_event_is_a_noop(self):
        q = EventQueue()
        q.push(Event(time=1.0))
        q.cancel(Event(time=5.0))
        assert len(q) == 1

    def test_repush_cancelled_event_raises(self):
        """Events are single-use even after cancellation: the lazy-
        deletion heap may still hold the stale entry, so reviving the
        object would corrupt ordering."""
        q = EventQueue()
        e = q.push(Event(time=1.0))
        q.cancel(e)
        with pytest.raises(ValidationError):
            q.push(e)

    def test_repush_fired_event_raises(self):
        q = EventQueue()
        e = q.push(Event(time=1.0))
        q.pop()
        with pytest.raises(ValidationError):
            q.push(e)

    def test_double_cancel_keeps_count_consistent(self):
        q = EventQueue()
        a = q.push(Event(time=1.0))
        b = q.push(Event(time=2.0))
        q.cancel(a)
        q.cancel(a)
        assert len(q) == 1
        assert q.pop() is b
        assert not q

    def test_sim_cancel_of_fired_event_is_safe(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule_at(1.0, fired.append, payload="x")
        later = sim.schedule_at(2.0, fired.append, payload="y")
        sim.run(until=1.5)
        sim.cancel(handle)  # already fired: no-op
        sim.run()
        assert fired == ["x", "y"]
        del later
