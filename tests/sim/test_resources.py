"""Unit tests for the contention primitives: Resource busy windows,
FIFO/priority Servers, the in-flight CompletionTracker."""

import pytest

from repro.errors import ValidationError
from repro.sim import CompletionTracker, Resource, Server, Simulation


class TestResource:
    def test_idle_resource_starts_immediately(self):
        r = Resource("card")
        w = r.reserve(2.0, 0.5)
        assert (w.start_s, w.done_s, w.waited_s) == (2.0, 2.5, 0.0)
        assert r.busy_until == 2.5

    def test_busy_resource_queues_the_window(self):
        """The legacy recurrence: start = max(ready, busy_until)."""
        r = Resource("card")
        r.reserve(0.0, 3.0)
        w = r.reserve(1.0, 2.0)
        assert w.start_s == 3.0
        assert w.done_s == 5.0
        assert w.waited_s == 2.0

    def test_busy_seconds_accumulate_service_not_span(self):
        r = Resource("card")
        r.reserve(0.0, 1.0)
        r.reserve(10.0, 2.0)  # idle gap from 1.0 to 10.0
        assert r.busy_seconds == 3.0
        assert r.n_reservations == 2
        assert r.utilisation(12.0) == 3.0 / 12.0

    def test_zero_length_window_is_allowed(self):
        r = Resource()
        w = r.reserve(1.0, 0.0)
        assert w.start_s == w.done_s == 1.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValidationError):
            Resource().reserve(0.0, -1.0)

    def test_sim_attached_resource_rejects_past_reservations(self):
        sim = Simulation()
        r = Resource("card", sim=sim)
        sim.schedule_at(5.0, lambda _: None)
        sim.run()
        with pytest.raises(ValidationError):
            r.reserve(1.0, 1.0)

    def test_keep_windows_records_the_trace(self):
        r = Resource("card", keep_windows=True)
        r.reserve(0.0, 1.0)
        r.reserve(0.5, 1.0)
        assert [w.start_s for w in r.windows] == [0.0, 1.0]
        assert Resource("bare").windows == []


class TestServerFifo:
    def test_contending_jobs_serve_in_submission_order(self):
        sim = Simulation()
        srv = Server(sim, capacity=1)
        jobs = [srv.submit(0.0, 1.0, label=f"j{i}") for i in range(3)]
        sim.run()
        assert [j.label for j in srv.completed] == ["j0", "j1", "j2"]
        assert [(j.start_s, j.done_s) for j in jobs] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 3.0),
        ]

    def test_capacity_two_overlaps_service(self):
        sim = Simulation()
        srv = Server(sim, capacity=2)
        jobs = [srv.submit(0.0, 2.0), srv.submit(0.0, 2.0), srv.submit(0.0, 2.0)]
        sim.run()
        assert [(j.start_s, j.done_s) for j in jobs] == [
            (0.0, 2.0), (0.0, 2.0), (2.0, 4.0),
        ]

    def test_idle_server_starts_at_arrival(self):
        sim = Simulation()
        srv = Server(sim)
        j = srv.submit(3.0, 0.5)
        sim.run()
        assert (j.start_s, j.done_s) == (3.0, 3.5)
        assert srv.n_waiting == 0
        assert srv.resource.busy_seconds == 0.5

    def test_priorities_are_ignored_under_fifo(self):
        sim = Simulation()
        srv = Server(sim, capacity=1, discipline="fifo")
        low = srv.submit(0.0, 1.0, priority=0, label="low")
        high = srv.submit(0.0, 1.0, priority=9, label="high")
        sim.run()
        assert [j.label for j in srv.completed] == ["low", "high"]
        assert low.start_s == 0.0 and high.start_s == 1.0


class TestServerPriority:
    def test_highest_priority_wins_contention(self):
        sim = Simulation()
        srv = Server(sim, capacity=1, discipline="priority")
        # The t=0 blocker occupies the slot; the waiters then drain by
        # priority, not submission order.
        srv.submit(0.0, 1.0, label="blocker")
        srv.submit(0.1, 1.0, priority=1, label="reval")
        srv.submit(0.2, 1.0, priority=2, label="quote")
        sim.run()
        assert [j.label for j in srv.completed] == ["blocker", "quote", "reval"]

    def test_stable_within_a_priority_level(self):
        sim = Simulation()
        srv = Server(sim, capacity=1, discipline="priority")
        srv.submit(0.0, 1.0, label="blocker")
        labels = [f"q{i}" for i in range(4)]
        for i, label in enumerate(labels):
            srv.submit(0.1 + 0.01 * i, 0.5, priority=2, label=label)
        sim.run()
        assert [j.label for j in srv.completed][1:] == labels

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValidationError):
            Server(Simulation(), discipline="lifo")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValidationError):
            Server(Simulation(), capacity=0)


class TestCompletionTracker:
    def test_drain_pops_everything_due(self):
        t = CompletionTracker()
        for done in (3.0, 1.0, 2.0, 5.0):
            t.push(done)
        assert len(t) == 4
        assert t.drain(2.0) == 2  # 1.0 and 2.0 (inclusive)
        assert len(t) == 2
        assert t.drain(10.0) == 2
        assert len(t) == 0

    def test_drain_on_empty_is_zero(self):
        assert CompletionTracker().drain(1.0) == 0


class TestZeroServiceContract:
    """The documented zero-service reservation contract: done == start,
    busy_until parked at the start, no busy seconds, one reservation."""

    def test_full_contract(self):
        r = Resource("card")
        r.reserve(0.0, 2.0)
        w = r.reserve(1.0, 0.0)
        assert w.start_s == w.done_s == 2.0
        assert r.busy_until == 2.0
        assert r.busy_seconds == 2.0  # nothing added
        assert r.n_reservations == 2

    def test_zero_service_pushed_past_downtime(self):
        r = Resource("card")
        r.add_downtime(1.0, 3.0)
        w = r.reserve(2.0, 0.0)
        assert w.start_s == w.done_s == 3.0


class TestDowntime:
    """Availability windows: half-open [start, end), kept sorted,
    pushing only starts that land *inside* a window (a busy window that
    would straddle a later outage is the dispatcher's concern)."""

    def test_windows_are_half_open(self):
        r = Resource("card")
        r.add_downtime(1.0, 2.0)
        assert not r.is_down(0.999)
        assert r.is_down(1.0)
        assert r.is_down(1.999)
        assert not r.is_down(2.0)

    def test_next_available_chains_adjacent_windows(self):
        r = Resource("card")
        r.add_downtime(3.0, 4.0)  # insertion order irrelevant
        r.add_downtime(1.0, 3.0)
        assert r.next_available(1.5) == 4.0
        assert r.next_available(0.5) == 0.5
        assert r.next_available(4.0) == 4.0

    def test_permanent_outage_is_infinite(self):
        import math

        r = Resource("card")
        r.add_downtime(1.0, math.inf)
        assert r.next_available(2.0) == math.inf
        assert r.peek_start(5.0) == math.inf

    def test_reserve_pushed_past_window(self):
        r = Resource("card")
        r.add_downtime(1.0, 2.0)
        w = r.reserve(1.5, 0.5)
        assert (w.start_s, w.done_s) == (2.0, 2.5)

    def test_straddling_window_not_pushed(self):
        """A start *before* the window is granted as-is — mid-window
        failure modelling lives in the fault-aware dispatcher, not
        here."""
        r = Resource("card")
        r.add_downtime(1.0, 2.0)
        w = r.reserve(0.5, 1.0)
        assert (w.start_s, w.done_s) == (0.5, 1.5)

    def test_peek_start_matches_reserve_without_granting(self):
        r = Resource("card")
        r.add_downtime(1.0, 2.0)
        assert r.peek_start(1.5) == 2.0
        assert r.n_reservations == 0
        assert r.busy_until == 0.0
        assert r.reserve(1.5, 0.5).start_s == 2.0
        # After the grant, busy_until dominates the peek.
        assert r.peek_start(2.2) == 2.5

    def test_degenerate_window_rejected(self):
        r = Resource("card")
        with pytest.raises(ValidationError):
            r.add_downtime(2.0, 2.0)
        with pytest.raises(ValidationError):
            r.add_downtime(2.0, 1.0)
