"""Exporter tests: Chrome trace round-trip, Prometheus text, CSV, snapshot."""

import json

import pytest

from repro.errors import ValidationError
from repro.telemetry import (
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    load_chrome_trace,
    metrics_snapshot,
    prometheus_text,
    spans_csv,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.telemetry.export import TELEMETRY_SCHEMA_VERSION


@pytest.fixture
def recorder() -> SpanRecorder:
    r = SpanRecorder()
    r.record("card_batch", 0.0, 2e-3, track="card0", category="resource",
             kind="cluster", args={"options": 4})
    r.record("coalesce", 0.0, 1e-3, track="requests", category="request",
             trace_id=7, kind="quote")
    r.record("card_service", 1e-3, 2e-3, track="requests", category="request",
             trace_id=7, kind="quote", args={"card": 0})
    return r


class TestChromeTrace:
    def test_payload_shape(self, recorder):
        payload = chrome_trace(recorder)
        assert payload["otherData"]["schema_version"] == TELEMETRY_SCHEMA_VERSION
        phases = [e["ph"] for e in payload["traceEvents"]]
        # Metadata, one complete slice, and an async begin/end pair.
        assert phases.count("X") == 1
        assert phases.count("b") == 2
        assert phases.count("e") == 2

    def test_round_trip(self, recorder):
        loaded = load_chrome_trace(chrome_trace(recorder))
        assert len(loaded) == len(recorder.spans)
        by_name = {s.name: s for s in loaded}
        resource = by_name["card_batch"]
        assert resource.trace_id is None
        assert resource.track == "card0"
        assert resource.kind == "cluster"
        assert resource.args == {"options": 4}
        assert resource.duration_s == pytest.approx(2e-3)
        request = by_name["coalesce"]
        assert request.trace_id == 7
        assert request.kind == "quote"

    def test_round_trip_via_file(self, recorder, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", recorder)
        assert json.loads(path.read_text())["displayTimeUnit"] == "ms"
        loaded = load_chrome_trace(path)
        assert {s.name for s in loaded} == {
            "card_batch", "coalesce", "card_service"
        }

    def test_rejects_non_trace_payload(self):
        with pytest.raises(ValidationError):
            load_chrome_trace({"not": "a trace"})

    def test_rejects_unmatched_async_end(self):
        payload = {
            "traceEvents": [
                {"ph": "e", "pid": 0, "tid": 0, "name": "x", "id": 1,
                 "ts": 2.0, "cat": "request"},
            ]
        }
        with pytest.raises(ValidationError):
            load_chrome_trace(payload)


class TestPrometheusText:
    def test_exposition(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "requests seen").inc(3)
        reg.gauge("util").set(0.5)
        reg.histogram("lat", "latency").observe_many([1.0, 2.0, 3.0])
        text = prometheus_text(reg)
        assert "# HELP requests_total requests seen" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "util 0.5" in text
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5"}' in text
        assert "lat_sum 6.0" in text
        assert "lat_count 3" in text

    def test_labelled_metrics_share_one_type_block(self):
        reg = MetricsRegistry()
        reg.counter("rows", labels={"card": "0"}).inc(1)
        reg.counter("rows", labels={"card": "1"}).inc(2)
        text = prometheus_text(reg)
        assert text.count("# TYPE rows counter") == 1
        assert 'rows{card="0"} 1' in text
        assert 'rows{card="1"} 2' in text


class TestSpansCsv:
    def test_header_and_rows(self, recorder):
        lines = spans_csv(recorder).strip().splitlines()
        assert lines[0] == (
            "name,category,track,trace_id,kind,start_s,end_s,duration_s"
        )
        assert len(lines) == 1 + len(recorder.spans)
        assert lines[1].startswith("card_batch,resource,card0,,cluster,")
        assert lines[2].startswith("coalesce,request,requests,7,quote,")


class TestMetricsSnapshot:
    def test_versioned_payload(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        snap = metrics_snapshot(reg)
        assert snap["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert snap["metrics"]["n"]["value"] == 2.0
        path = write_metrics_snapshot(tmp_path / "metrics.json", reg)
        assert json.loads(path.read_text()) == snap
