"""Unit tests for the metrics registry and the P² quantile histogram."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.telemetry import MetricsRegistry, metric_key
from repro.telemetry.metrics import Histogram


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("requests_total") == "requests_total"

    def test_labels_sorted(self):
        key = metric_key("x", {"b": "2", "a": "1"})
        assert key == 'x{a="1",b="2"}'

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            metric_key("")


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_never_decreases(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValidationError):
            reg.gauge("n")


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("level")
        g.set(3.0)
        g.set(1.5)
        assert g.value == pytest.approx(1.5)


class TestHistogram:
    def test_exact_under_five_samples(self):
        h = Histogram("lat")
        h.observe_many([3.0, 1.0, 2.0])
        # Warm-up buffer: exact interpolated percentiles.
        assert h.quantile(0.5) == pytest.approx(2.0)
        assert h.count == 3
        assert h.min == 1.0 and h.max == 3.0

    def test_p2_tracks_large_stream(self):
        rng = np.random.default_rng(42)
        sample = rng.exponential(scale=1.0, size=20_000)
        h = Histogram("lat")
        h.observe_many(sample)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(sample, q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.05)
        assert h.count == sample.size
        assert h.sum == pytest.approx(float(sample.sum()))
        assert h.max == pytest.approx(float(sample.max()))

    def test_untracked_quantile_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValidationError):
            h.quantile(0.25)

    def test_empty_snapshot_is_nullish(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None
        assert snap["quantiles"]["0.5"] is None


class TestRegistry:
    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(2.0)
        reg.counter("a").inc(1)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"type": "counter", "value": 1.0}
        assert snap["b"] == {"type": "gauge", "value": 2.0}

    def test_labelled_metrics_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("rows", labels={"card": "0"}).inc(3)
        reg.counter("rows", labels={"card": "1"}).inc(5)
        assert reg.get('rows{card="0"}').value == 3
        assert reg.get('rows{card="1"}').value == 5

    def test_absorb_adds_counters_sets_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.gauge("level").set(7.0)
        a.absorb(b)
        assert a.get("n").value == 3
        assert a.get("level").value == 7.0

    def test_absorb_rejects_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("lat").observe(1.0)
        with pytest.raises(ValidationError):
            a.absorb(b)

    def test_missing_metric_raises(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().get("nope")
