"""P² streaming-quantile edge cases: warm-up, transition, monotonicity.

The estimator is exact through its five-sample warm-up buffer and
switches to the five-marker P² recursion on the sixth observation —
that seam, constant streams, and cross-quantile ordering are the spots
where marker arithmetic goes wrong silently.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.telemetry.metrics import Histogram, _P2Quantile


class TestWarmUp:
    def test_empty_is_nan(self):
        assert math.isnan(_P2Quantile(0.5).value)

    def test_exact_through_five_samples(self):
        est = _P2Quantile(0.5)
        for x in [5.0, 1.0, 3.0]:
            est.observe(x)
        assert est.value == 3.0  # exact median of {1, 3, 5}
        est.observe(2.0)
        est.observe(4.0)
        assert est.value == 3.0  # exact median of {1..5}

    def test_single_sample_is_that_sample(self):
        for q in (0.5, 0.95, 0.99):
            est = _P2Quantile(q)
            est.observe(42.0)
            assert est.value == 42.0

    def test_quantile_bounds(self):
        with pytest.raises(ValidationError):
            _P2Quantile(0.0)
        with pytest.raises(ValidationError):
            _P2Quantile(1.0)


class TestSixthSampleTransition:
    def test_transition_stays_within_observed_range(self):
        est = _P2Quantile(0.5)
        for x in [10.0, 20.0, 30.0, 40.0, 50.0]:
            est.observe(x)
        exact_before = est.value
        assert exact_before == 30.0
        est.observe(35.0)  # first marker-mode observation
        assert 10.0 <= est.value <= 50.0

    def test_six_identical_then_estimate_is_that_value(self):
        est = _P2Quantile(0.95)
        for _ in range(6):
            est.observe(7.5)
        assert est.value == 7.5

    def test_new_min_and_max_update_extreme_markers(self):
        est = _P2Quantile(0.5)
        for x in [2.0, 3.0, 4.0, 5.0, 6.0, 4.5]:
            est.observe(x)
        est.observe(0.5)  # below every marker
        est.observe(99.0)  # above every marker
        assert 0.5 <= est.value <= 99.0


class TestConstantStreams:
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize("n", [1, 5, 6, 100])
    def test_constant_stream_estimates_the_constant(self, q, n):
        est = _P2Quantile(q)
        for _ in range(n):
            est.observe(3.25)
        assert est.value == 3.25

    def test_histogram_of_constants(self):
        h = Histogram("h", "help")
        for _ in range(1000):
            h.observe(1.5)
        snap = h.snapshot()
        assert snap["min"] == snap["max"] == 1.5
        for q in h.quantiles:
            assert h.quantile(q) == 1.5


class TestMonotonicity:
    def test_quantile_levels_stay_ordered_on_sorted_input(self):
        h = Histogram("h", "help", quantiles=(0.5, 0.95, 0.99))
        for i in range(1, 2001):
            h.observe(float(i))
        p50, p95, p99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        # On a long uniform ramp the estimates should land near the
        # exact order statistics.
        assert p50 == pytest.approx(1000.0, rel=0.05)
        assert p95 == pytest.approx(1900.0, rel=0.05)
        assert p99 == pytest.approx(1980.0, rel=0.05)

    def test_reverse_sorted_input_also_ordered(self):
        h = Histogram("h", "help", quantiles=(0.5, 0.95, 0.99))
        for i in range(2000, 0, -1):
            h.observe(float(i))
        p50, p95, p99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99

    def test_estimates_bounded_by_observed_range(self):
        h = Histogram("h", "help")
        values = [((i * 7919) % 1000) / 10.0 for i in range(500)]
        for v in values:
            h.observe(v)
        for q in h.quantiles:
            assert min(values) <= h.quantile(q) <= max(values)
