"""Kernel-profiler tests: the price_packed_many hook and its metrics."""

import numpy as np
import pytest

from repro.core.vector_pricing import (
    PackedPortfolio,
    get_kernel_profile_hook,
    price_packed_many,
)
from repro.risk.engine import make_book
from repro.risk.scenarios import monte_carlo
from repro.telemetry import KernelProfiler, MetricsRegistry
from repro.workloads.scenarios import PaperScenario

SC = PaperScenario(n_rates=48, n_options=4)
YC = SC.yield_curve()
HC = SC.hazard_curve()

N_SCENARIOS = 12


@pytest.fixture
def kernel_inputs():
    packed = PackedPortfolio.pack(make_book("uniform", 4, seed=3).options)
    tensor = monte_carlo(YC, HC, N_SCENARIOS, seed=5).tensor
    return packed, tensor


def _run_kernel(packed, tensor, chunk_size=None):
    return price_packed_many(
        packed,
        tensor.yield_times,
        tensor.yield_values,
        tensor.hazard_times,
        tensor.hazard_values,
        chunk_size=chunk_size,
    )


class TestKernelProfiler:
    def test_profiles_calls_chunks_rows_cells(self, kernel_inputs):
        packed, tensor = kernel_inputs
        profiler = KernelProfiler()
        with profiler:
            _run_kernel(packed, tensor, chunk_size=5)
        reg = profiler.registry
        assert reg.get("kernel_calls_total").value == 1
        # 12 scenarios in chunks of 5 -> 5 + 5 + 2.
        assert profiler.n_chunks == 3
        assert reg.get("kernel_rows_total").value == N_SCENARIOS
        assert (
            reg.get("kernel_cells_total").value
            == N_SCENARIOS * packed.n_options
        )
        assert profiler.wall_seconds > 0
        assert reg.get("kernel_chunk_wall_seconds").count == 3

    def test_uninstall_restores_previous_hook(self, kernel_inputs):
        packed, tensor = kernel_inputs
        assert get_kernel_profile_hook() is None
        outer = KernelProfiler()
        with outer:
            inner = KernelProfiler()
            with inner:
                assert get_kernel_profile_hook() is inner
                _run_kernel(packed, tensor)
            assert get_kernel_profile_hook() is outer
        assert get_kernel_profile_hook() is None
        assert inner.n_chunks > 0
        assert outer.n_chunks == 0

    def test_no_hook_no_metrics(self, kernel_inputs):
        packed, tensor = kernel_inputs
        profiler = KernelProfiler()
        _run_kernel(packed, tensor)  # hook never installed
        assert profiler.n_chunks == 0

    def test_results_identical_with_and_without_profiling(self, kernel_inputs):
        packed, tensor = kernel_inputs
        bare_spreads, _ = _run_kernel(packed, tensor)
        with KernelProfiler():
            profiled_spreads, _ = _run_kernel(packed, tensor)
        np.testing.assert_array_equal(bare_spreads, profiled_spreads)

    def test_set_simulated_busy_ratio(self, kernel_inputs):
        packed, tensor = kernel_inputs
        reg = MetricsRegistry()
        profiler = KernelProfiler(reg)
        with profiler:
            _run_kernel(packed, tensor)
        profiler.set_simulated_busy(2.0)
        assert reg.get("kernel_simulated_busy_seconds").value == 2.0
        ratio = reg.get("kernel_wall_vs_simulated_ratio").value
        assert ratio == pytest.approx(profiler.wall_seconds / 2.0)

    def test_zero_busy_skips_ratio(self):
        reg = MetricsRegistry()
        KernelProfiler(reg).set_simulated_busy(0.0)
        assert "kernel_wall_vs_simulated_ratio" not in reg
