"""Prometheus exposition escaping: hostile label values round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.telemetry import (
    MetricsRegistry,
    escape_label_value,
    metric_key,
    parse_prometheus_text,
    prometheus_text,
)

#: The three reserved characters, alone and combined, plus traps like a
#: literal ``\n`` sequence (must stay distinct from a real newline).
HOSTILE_VALUES = [
    'plain',
    'has"quote',
    "has\\backslash",
    "has\nnewline",
    'all\\three"\nat once',
    "\\n",  # literal backslash-n, NOT a newline
    'trailing\\',
    '',
]


class TestEscape:
    def test_escapes_the_reserved_three(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_first(self):
        # A literal \n must become \\n, not collapse into a newline
        # escape.
        assert escape_label_value("\\n") == "\\\\n"

    def test_metric_key_is_single_line(self):
        key = metric_key("m", {"k": 'v"with\n\\everything'})
        assert "\n" not in key
        assert key.startswith("m{")

    def test_distinct_values_stay_distinct_keys(self):
        # Unescaped rendering would collapse these two.
        a = metric_key("m", {"k": "x\ny"})
        b = metric_key("m", {"k": "x\\ny"})
        assert a != b


class TestRoundTrip:
    @pytest.mark.parametrize("value", HOSTILE_VALUES)
    def test_label_value_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("m_total", "help", labels={"k": value}).inc(2)
        parsed = parse_prometheus_text(prometheus_text(registry))
        (sample,) = parsed["samples"]
        assert sample["name"] == "m_total"
        assert sample["labels"] == {"k": value}
        assert sample["value"] == 2.0

    def test_multiple_labels_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge(
            "g", "help", labels={"a": 'x"1', "b": "y\\2", "c": "z\n3"}
        ).set(1.5)
        parsed = parse_prometheus_text(prometheus_text(registry))
        (sample,) = parsed["samples"]
        assert sample["labels"] == {"a": 'x"1', "b": "y\\2", "c": "z\n3"}

    def test_help_text_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("m_total", "help with \\ and\nnewline").inc()
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed["help"]["m_total"] == "help with \\ and\nnewline"

    def test_exposition_stays_line_parseable(self):
        registry = MetricsRegistry()
        for i, value in enumerate(HOSTILE_VALUES):
            registry.counter(
                "evil_total", "h", labels={"k": value, "i": str(i)}
            ).inc()
        text = prometheus_text(registry)
        # Every sample line is one line: name{...} value.
        samples = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(HOSTILE_VALUES)
        parsed = parse_prometheus_text(text)
        recovered = {s["labels"]["k"] for s in parsed["samples"]}
        assert recovered == set(HOSTILE_VALUES)

    def test_types_reported(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").inc()
        registry.gauge("g", "h").set(1.0)
        registry.histogram("h_seconds", "h").observe(0.5)
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed["type"] == {
            "c_total": "counter", "g": "gauge", "h_seconds": "summary",
        }


class TestParserErrors:
    def test_unterminated_value_raises(self):
        with pytest.raises(ValidationError):
            parse_prometheus_text('m{k="unterminated} 1')

    def test_unquoted_value_raises(self):
        with pytest.raises(ValidationError):
            parse_prometheus_text("m{k=bare} 1")

    def test_bad_escape_raises(self):
        with pytest.raises(ValidationError):
            parse_prometheus_text('m{k="bad\\t"} 1')
