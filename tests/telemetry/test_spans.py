"""Unit tests for the span model and recorders."""

import pytest

from repro.errors import ValidationError
from repro.telemetry import (
    NULL_RECORDER,
    NULL_TELEMETRY,
    NullRecorder,
    Span,
    SpanRecorder,
    Telemetry,
)


class TestSpan:
    def test_duration(self):
        s = Span(name="x", start_s=1.0, end_s=2.5)
        assert s.duration_s == pytest.approx(1.5)

    def test_instant_span_allowed(self):
        s = Span(name="shed", start_s=3.0, end_s=3.0)
        assert s.duration_s == 0.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValidationError):
            Span(name="x", start_s=2.0, end_s=1.0)

    def test_defaults(self):
        s = Span(name="x", start_s=0.0, end_s=1.0)
        assert s.trace_id is None
        assert s.kind == ""
        assert dict(s.args) == {}


class TestNullRecorder:
    def test_disabled_and_empty(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.spans == ()
        assert len(NULL_RECORDER) == 0

    def test_record_is_a_noop(self):
        r = NullRecorder()
        r.record("x", 0.0, 1.0, track="t")
        assert r.spans == ()


class TestSpanRecorder:
    def test_records_in_order(self):
        r = SpanRecorder()
        r.record("a", 0.0, 1.0, track="host")
        r.record("b", 1.0, 2.0, track="card0", trace_id=7, kind="quote")
        assert r.enabled is True
        assert len(r) == 2
        assert [s.name for s in r.spans] == ["a", "b"]

    def test_for_track_and_trace(self):
        r = SpanRecorder()
        r.record("a", 0.0, 1.0, track="host")
        r.record("b", 0.0, 1.0, track="card0", trace_id=3)
        r.record("c", 1.0, 2.0, track="card0", trace_id=4)
        assert [s.name for s in r.for_track("card0")] == ["b", "c"]
        assert [s.name for s in r.for_trace(4)] == ["c"]

    def test_clear(self):
        r = SpanRecorder()
        r.record("a", 0.0, 1.0)
        r.clear()
        assert len(r) == 0

    def test_invalid_span_rejected_at_record(self):
        r = SpanRecorder()
        with pytest.raises(ValidationError):
            r.record("a", 2.0, 1.0)


class TestTelemetry:
    def test_null_default(self):
        t = Telemetry()
        assert t.enabled is False
        assert t.spans == ()
        assert len(t.metrics) == 0

    def test_recording(self):
        t = Telemetry.recording()
        assert t.enabled is True
        t.recorder.record("a", 0.0, 1.0)
        assert len(t.spans) == 1

    def test_null_singleton_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        # Fresh handles never alias the shared singleton's registry.
        assert Telemetry.recording().metrics is not NULL_TELEMETRY.metrics
