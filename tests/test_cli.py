"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_engines(self):
        args = build_parser().parse_args(["table2", "--engines", "1", "3"])
        assert args.engines == [1, 3]

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.cards == 4
        assert args.policy == "least-loaded"
        assert args.engines == 5
        assert args.workload == "uniform"

    def test_cluster_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--policy", "fifo"])

    def test_risk_defaults(self):
        args = build_parser().parse_args(["risk"])
        assert args.scenarios == 1000
        assert args.cards == 4
        assert args.generator == "mc"
        assert args.confidence == [0.95, 0.99]
        assert args.measure == "var,es"
        assert args.seed is None
        assert not args.json

    def test_risk_bad_generator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["risk", "--generator", "quantum"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.requests == 10_000
        assert args.rate == 5000.0
        assert args.cards == 4
        assert args.traffic == "poisson"
        assert args.max_batch == 128
        assert args.chunk_size is None
        assert args.seed is None
        assert not args.json

    def test_serve_bad_traffic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--traffic", "tsunami"])

    def test_shared_flag_helper_covers_data_subcommands(self):
        """Every data-producing subcommand carries --json via the shared
        registration helper; the sampled ones carry --seed too."""
        for cmd in ("table1", "table2", "cluster", "risk", "serve"):
            args = build_parser().parse_args([cmd])
            assert hasattr(args, "json"), cmd
        for cmd in ("cluster", "risk", "serve"):
            args = build_parser().parse_args([cmd])
            assert hasattr(args, "seed"), cmd


class TestCommands:
    def test_table1(self, capsys):
        assert main(["--options", "6", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Xilinx Vitis library CDS engine" in out

    def test_table2(self, capsys):
        assert main(["--options", "6", "table2", "--engines", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Xeon" in out and "Opt/Watt" in out

    def test_cluster(self, capsys):
        assert main(["--options", "8", "cluster", "--cards", "4"]) == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out and "options/s" in out
        assert "Util" in out and "Watts" in out

    def test_cluster_resource_error_is_clean(self, capsys):
        # Six engines never fit on the U280; the CLI reports it without a
        # traceback and exits 2.
        assert main(["--options", "4", "cluster", "--engines", "6"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ceiling" in err

    def test_cluster_sweep(self, capsys):
        assert (
            main(
                [
                    "--options", "8",
                    "cluster",
                    "--cards", "2",
                    "--policy", "work-stealing",
                    "--workload", "skewed",
                    "--sweep", "1", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Speedup" in out
        assert "skewed" in out

    def test_figures_ascii(self, capsys):
        assert main(["--options", "2", "figures"]) == 0
        out = capsys.readouterr().out
        assert "timegrid" in out
        assert "hazard_acc" in out

    def test_figures_dot(self, capsys):
        assert main(["--options", "2", "figures", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_price(self, capsys):
        assert main(["price", "--maturity", "3", "--frequency", "4"]) == 0
        out = capsys.readouterr().out
        assert "spread" in out and "bps" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        assert "Vectorised engine estimate" in out


RISK_ARGS = ["--options", "6", "risk", "--scenarios", "20", "--cards", "2"]


class TestRiskCommand:
    def test_risk_report(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Risk report" in out
        assert "VaR" in out and "ES" in out
        assert "CS01 ladder" in out and "IR01 ladder" in out
        assert "JTD:" in out
        assert "repricings/s" in out

    def test_risk_deterministic_with_seed(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(RISK_ARGS + ["--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_risk_seed_changes_output(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(RISK_ARGS + ["--seed", "8"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_risk_measure_filter(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7", "--measure", "var"]) == 0
        out = capsys.readouterr().out
        assert "VaR" in out
        assert " ES" not in out

    def test_risk_bad_measure_is_clean(self, capsys):
        assert main(RISK_ARGS + ["--measure", "cvar"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_risk_generators(self, capsys):
        for gen in ("mixture", "historical", "parallel"):
            assert main(RISK_ARGS + ["--seed", "3", "--generator", gen]) == 0
            assert "Risk report" in capsys.readouterr().out


SERVE_ARGS = [
    "--options", "8",
    "serve",
    "--requests", "250",
    "--rate", "2000",
    "--cards", "2",
    "--engines", "2",
    "--states", "24",
]


class TestServeCommand:
    def test_serve_report(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Serving report" in out
        assert "goodput" in out
        assert "p50" in out and "p99" in out
        assert "shed" in out

    def test_serve_deterministic_with_seed(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(SERVE_ARGS + ["--seed", "7"]) == 0
        assert first == capsys.readouterr().out

    def test_serve_seed_changes_output(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(SERVE_ARGS + ["--seed", "8"]) == 0
        assert first != capsys.readouterr().out

    def test_serve_batch1_still_serves(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7", "--max-batch", "1",
                                  "--max-delay", "0"]) == 0
        assert "goodput" in capsys.readouterr().out


class TestJsonOutput:
    def test_table1_json(self, capsys):
        assert main(["--options", "6", "table1", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["key"] for r in rows} >= {"cpu_single_core", "vectorised_dataflow"}
        assert all("options_per_second" in r for r in rows)

    def test_table2_json(self, capsys):
        assert main(["--options", "6", "table2", "--engines", "1", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["key"] == "cpu_24_cores"
        assert all("watts" in r for r in rows)

    def test_cluster_json(self, capsys):
        assert main(
            ["--options", "8", "cluster", "--cards", "2", "--seed", "3",
             "--sweep", "1", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cards"] == 2
        assert payload["seed"] == 3
        assert len(payload["per_card"]) == 2
        assert len(payload["sweep"]) == 2
        assert payload["options_per_second"] > 0

    def test_cluster_json_deterministic(self, capsys):
        args = ["--options", "8", "cluster", "--cards", "2", "--seed", "3",
                "--workload", "skewed", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert first == capsys.readouterr().out

    def test_serve_json(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_requests"] == 250
        assert payload["seed"] == 7
        assert payload["n_offered"] == 250
        assert {"p50_s", "p95_s", "p99_s"} <= set(payload["latency"])
        assert "goodput_rps" in payload and "shed_rate" in payload
        assert len(payload["per_card"]) == 2
        assert payload["host_seconds"] > 0

    def test_risk_json(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_scenarios"] == 20
        assert payload["seed"] == 7
        assert len(payload["measures"]) == 2
        for m in payload["measures"]:
            assert m["var"] <= m["es"]
        assert payload["timing"]["n_cards"] == 2
        assert payload["cs01"]["kind"] == "cs01"


class TestBackendFlag:
    def test_risk_and_serve_default_backend(self):
        for cmd in ("risk", "serve"):
            args = build_parser().parse_args([cmd])
            assert args.backend == "vectorized", cmd

    def test_cluster_backend_is_not_a_base_choice(self):
        # The risk/serving engines already wrap their base in the cluster
        # backend; nesting is rejected, so the CLI never offers it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["risk", "--backend", "cluster"])

    def test_risk_cpu_backend_runs_and_is_reported(self, capsys):
        assert main(RISK_ARGS + ["--seed", "7", "--backend", "cpu"]) == 0
        out = capsys.readouterr().out
        # cpu has no batch-tensor capability: the session negotiates the
        # per-scenario path and the report says so.
        assert "backend cpu" in out
        assert "looped" in out

    def test_risk_backend_changes_only_floats_marginally(self, capsys):
        """vectorized and cpu agree to reassociation tolerance on VaR."""
        assert main(RISK_ARGS + ["--seed", "7", "--json"]) == 0
        vec = json.loads(capsys.readouterr().out)
        assert main(
            RISK_ARGS + ["--seed", "7", "--json", "--backend", "cpu"]
        ) == 0
        cpu = json.loads(capsys.readouterr().out)
        assert vec["backend"] == "vectorized" and cpu["backend"] == "cpu"
        assert vec["batched"] is True and cpu["batched"] is False
        for a, b in zip(vec["measures"], cpu["measures"]):
            assert abs(a["var"] - b["var"]) <= 1e-9 * max(1.0, abs(a["var"]))

    def test_serve_json_carries_backend(self, capsys):
        assert main(SERVE_ARGS + ["--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "vectorized"


class TestBackendsCommand:
    def test_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cpu", "vectorized", "dataflow", "cluster"):
            assert name in out
        assert "open_session" in out

    def test_json_payload(self, capsys):
        assert main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert by_name["vectorized"]["supports_batch_tensor"] is True
        assert by_name["cpu"]["supports_batch_tensor"] is False
        assert by_name["dataflow"]["simulated_timing"] is True
        assert by_name["cluster"]["supports_streaming"] is True
