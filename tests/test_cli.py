"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_engines(self):
        args = build_parser().parse_args(["table2", "--engines", "1", "3"])
        assert args.engines == [1, 3]

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.cards == 4
        assert args.policy == "least-loaded"
        assert args.engines == 5
        assert args.workload == "uniform"

    def test_cluster_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--policy", "fifo"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["--options", "6", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Xilinx Vitis library CDS engine" in out

    def test_table2(self, capsys):
        assert main(["--options", "6", "table2", "--engines", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Xeon" in out and "Opt/Watt" in out

    def test_cluster(self, capsys):
        assert main(["--options", "8", "cluster", "--cards", "4"]) == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out and "options/s" in out
        assert "Util" in out and "Watts" in out

    def test_cluster_resource_error_is_clean(self, capsys):
        # Six engines never fit on the U280; the CLI reports it without a
        # traceback and exits 2.
        assert main(["--options", "4", "cluster", "--engines", "6"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ceiling" in err

    def test_cluster_sweep(self, capsys):
        assert (
            main(
                [
                    "--options", "8",
                    "cluster",
                    "--cards", "2",
                    "--policy", "work-stealing",
                    "--workload", "skewed",
                    "--sweep", "1", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Speedup" in out
        assert "skewed" in out

    def test_figures_ascii(self, capsys):
        assert main(["--options", "2", "figures"]) == 0
        out = capsys.readouterr().out
        assert "timegrid" in out
        assert "hazard_acc" in out

    def test_figures_dot(self, capsys):
        assert main(["--options", "2", "figures", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_price(self, capsys):
        assert main(["price", "--maturity", "3", "--frequency", "4"]) == 0
        out = capsys.readouterr().out
        assert "spread" in out and "bps" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        assert "Vectorised engine estimate" in out
