"""CLI coverage for the monitoring surface: ``chaos`` telemetry and
monitor outputs, the ``dashboard`` command, and the ``bench-check``
perf-watchdog gate."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Small chaos matrix: short trace, tiny tape, six options.
CHAOS_ARGS = [
    "--options", "6",
    "chaos",
    "--seed", "7",
    "--requests", "400",
    "--states", "32",
]


class TestParser:
    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.requests == 2000
        assert args.rate == 4000.0
        assert args.cards == 4
        assert not args.monitor
        assert args.monitor_out is None
        assert args.trace_out is None and args.metrics_out is None
        assert not args.json

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard"])
        assert args.out == "dashboard.html"
        assert args.title is None
        assert args.monitor_out is None
        assert args.faults is None
        assert args.requests == 10_000

    def test_bench_check_defaults(self):
        args = build_parser().parse_args(["bench-check"])
        assert args.serving == "BENCH_serving.json"
        assert args.risk == "BENCH_risk.json"
        assert args.only is None
        assert args.fresh_from is None

    def test_bench_check_bad_only(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-check", "--only", "examples"])


class TestChaosTelemetryOut:
    def test_trace_and_metrics_files_written(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            CHAOS_ARGS
            + ["--trace-out", str(trace), "--metrics-out", str(metrics)]
        ) == 0
        captured = capsys.readouterr()
        assert f"wrote trace: {trace}" in captured.err
        assert f"wrote metrics: {metrics}" in captured.err

        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert any(t.startswith("card") for t in thread_names)

        snapshot = json.loads(metrics.read_text())
        assert "schema_version" in snapshot
        assert any(
            k.startswith("serving_batches_total")
            for k in snapshot["metrics"]
        )

    def test_chaos_runs_without_telemetry_flags(self, capsys):
        assert main(CHAOS_ARGS) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "crash-1of4" in out
        assert "Monitoring" not in out  # off by default


class TestChaosMonitor:
    def test_monitor_flag_renders_per_cell_sections(self, capsys):
        assert main(CHAOS_ARGS + ["--monitor"]) == 0
        out = capsys.readouterr().out
        assert "Monitoring (per cell):" in out
        assert "- crash-1of4:" in out
        assert "budget spent" in out

    def test_monitor_out_implies_monitor_and_writes_document(
        self, tmp_path, capsys
    ):
        path = tmp_path / "monitor.json"
        assert main(CHAOS_ARGS + ["--monitor-out", str(path)]) == 0
        captured = capsys.readouterr()
        assert "Monitoring (per cell):" in captured.out
        assert f"wrote monitor: {path}" in captured.err
        doc = json.loads(path.read_text())
        assert doc["seed"] == 7
        assert "schema_version" in doc
        assert "crash-1of4" in doc["cells"]
        cell = doc["cells"]["crash-1of4"]
        assert {"slos", "alerts", "detection"} <= set(cell)

    def test_json_carries_monitor_only_when_enabled(self, capsys):
        assert main(CHAOS_ARGS + ["--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert "monitor" not in plain
        assert main(CHAOS_ARGS + ["--json", "--monitor"]) == 0
        monitored = json.loads(capsys.readouterr().out)
        assert set(monitored["monitor"]) == {r["name"] for r in plain["rows"]}
        # Monitoring observes without perturbing the resilience rows.
        assert monitored["rows"] == plain["rows"]


DASHBOARD_ARGS = [
    "--options", "6",
    "dashboard",
    "--seed", "7",
    "--requests", "400",
    "--rate", "4000",
    "--states", "32",
    "--max-batch", "64",
    "--queue-depth", "512",
]


class TestDashboardCommand:
    def test_writes_self_contained_html(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main(DASHBOARD_ARGS + ["--out", str(out)]) == 0
        assert f"wrote dashboard: {out}" in capsys.readouterr().err
        page = out.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "seed 7" in page  # derived title carries the run config

    def test_faulted_run_with_monitor_out(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        mon = tmp_path / "monitor.json"
        assert main(
            DASHBOARD_ARGS
            + [
                "--faults", "crash:card=1,at=0.05,repair=0.1",
                "--out", str(out),
                "--monitor-out", str(mon),
                "--title", "crash cell",
            ]
        ) == 0
        capsys.readouterr()
        assert "crash cell" in out.read_text()
        doc = json.loads(mon.read_text())
        assert doc["detection"] is not None
        assert doc["detection"]["detected"] is True


@pytest.fixture()
def committed_snapshots():
    return {
        "serving": json.loads(
            (REPO_ROOT / "BENCH_serving.json").read_text()
        ),
        "risk": json.loads((REPO_ROOT / "BENCH_risk.json").read_text()),
    }


@pytest.fixture()
def bench_argv(tmp_path, committed_snapshots):
    """bench-check argv factory against tmp copies of the committed
    files, fed by a --fresh-from file so no benchmark re-runs."""

    def build(fresh):
        serving = tmp_path / "BENCH_serving.json"
        risk = tmp_path / "BENCH_risk.json"
        serving.write_text(
            json.dumps(committed_snapshots["serving"])
        )
        risk.write_text(json.dumps(committed_snapshots["risk"]))
        fresh_path = tmp_path / "fresh.json"
        fresh_path.write_text(json.dumps(fresh))
        return [
            "bench-check",
            "--serving", str(serving),
            "--risk", str(risk),
            "--fresh-from", str(fresh_path),
        ]

    return build


class TestBenchCheckCommand:
    def test_identical_snapshots_pass(self, bench_argv, committed_snapshots,
                                      capsys):
        assert main(bench_argv(committed_snapshots)) == 0
        out = capsys.readouterr().out
        assert "[ok  ]" in out and "[FAIL]" not in out

    def test_goodput_regression_fails(self, bench_argv, committed_snapshots,
                                      capsys):
        doctored = json.loads(json.dumps(committed_snapshots))
        doctored["serving"]["coalesced"]["goodput_rps"] *= 0.5
        assert main(bench_argv(doctored)) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "goodput_rps" in out

    def test_json_payload(self, bench_argv, committed_snapshots, capsys):
        assert main(bench_argv(committed_snapshots) + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        metrics = {c["metric"] for c in payload["checks"]}
        assert "coalesced.goodput_rps" in metrics
        assert "speedup" in metrics
        assert all(c["ok"] for c in payload["checks"])

    def test_only_filter_skips_the_other_benchmark(
        self, bench_argv, committed_snapshots, capsys
    ):
        argv = bench_argv(committed_snapshots) + ["--only", "serving"]
        assert main(argv) == 0
        payload_metrics = capsys.readouterr().out
        assert "speedup" not in payload_metrics

    def test_missing_committed_file_is_clean_error(self, tmp_path, capsys):
        assert main(
            ["bench-check", "--serving", str(tmp_path / "nope.json"),
             "--only", "serving"]
        ) == 2
        assert capsys.readouterr().err.startswith("error:")
