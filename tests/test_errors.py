"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CalibrationError,
    CurveError,
    DeadlockError,
    ReproError,
    ResourceError,
    ScheduleError,
    SimulationError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError,
            CurveError,
            ScheduleError,
            SimulationError,
            DeadlockError,
            ResourceError,
            CalibrationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        """Library validation failures are catchable as ValueError, so the
        package composes with generic error handling."""
        assert issubclass(ValidationError, ValueError)
        assert issubclass(CurveError, ValueError)

    def test_simulation_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(DeadlockError, SimulationError)

    def test_curve_error_is_validation(self):
        assert issubclass(CurveError, ValidationError)
        assert issubclass(ScheduleError, ValidationError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            raise DeadlockError("x")
        with pytest.raises(ReproError):
            raise CalibrationError("y")
