"""Unit tests for serialisation round-trips."""

import numpy as np
import pytest

from repro.core.curves import Curve, HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.engines import InterOptionDataflowEngine
from repro.errors import ValidationError
from repro.io import (
    curve_from_csv,
    curve_from_json,
    curve_to_csv,
    curve_to_json,
    load_curve,
    load_portfolio,
    portfolio_from_csv,
    portfolio_from_json,
    portfolio_to_csv,
    portfolio_to_json,
    result_to_json,
    save,
)
from repro.workloads.scenarios import PaperScenario


class TestCurveJSON:
    @pytest.mark.parametrize("cls", [Curve, YieldCurve, HazardCurve])
    def test_roundtrip_preserves_type_and_values(self, cls):
        curve = cls([1.0, 2.5, 7.0], [0.01, 0.02, 0.015])
        restored = curve_from_json(curve_to_json(curve))
        assert type(restored) is cls
        assert restored == curve

    def test_bitexact_roundtrip(self):
        # repr-based float serialisation must preserve every bit.
        values = [0.1, 1e-17 + 0.02, np.nextafter(0.03, 1.0)]
        curve = YieldCurve([1.0, 2.0, 3.0], values)
        restored = curve_from_json(curve_to_json(curve))
        assert np.array_equal(restored.values, curve.values)

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            curve_from_json('{"times": [1.0]}')


class TestCurveCSV:
    def test_roundtrip(self):
        curve = HazardCurve([1.0, 2.0], [0.01, 0.02])
        restored = curve_from_csv(curve_to_csv(curve), kind="hazard")
        assert restored == curve

    def test_header_required(self):
        with pytest.raises(ValidationError):
            curve_from_csv("1.0,0.01\n")

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            curve_from_csv("time,value\n1.0,0.01\n", kind="forward")


class TestPortfolio:
    @pytest.fixture
    def options(self):
        return [
            CDSOption(5.0, 4, 0.4),
            CDSOption(2.25, 12, 0.0),
            CDSOption(0.5, 1, 0.65),
        ]

    def test_json_roundtrip(self, options):
        assert portfolio_from_json(portfolio_to_json(options)) == options

    def test_csv_roundtrip(self, options):
        assert portfolio_from_csv(portfolio_to_csv(options)) == options

    def test_empty_portfolio_roundtrips(self):
        assert portfolio_from_json(portfolio_to_json([])) == []

    def test_malformed_json(self):
        with pytest.raises(ValidationError):
            portfolio_from_json('[{"maturity": 5.0}]')

    def test_csv_header_required(self):
        with pytest.raises(ValidationError):
            portfolio_from_csv("5.0,4,0.4\n")


class TestResultJSON:
    def test_serialises_run(self):
        import json

        result = InterOptionDataflowEngine(
            PaperScenario(n_rates=64, n_options=3)
        ).run()
        doc = json.loads(result_to_json(result))
        assert doc["engine"] == "dataflow_interoption"
        assert len(doc["spreads_bps"]) == 3
        assert doc["options_per_second"] > 0
        assert doc["resources"]["lut"] > 0


class TestFiles:
    def test_save_and_load_curve_json(self, tmp_path):
        curve = YieldCurve([1.0, 2.0], [0.01, 0.02])
        p = save(tmp_path / "curves" / "yc.json", curve_to_json(curve))
        assert load_curve(p) == curve

    def test_save_and_load_curve_csv(self, tmp_path):
        curve = HazardCurve([1.0, 2.0], [0.01, 0.02])
        p = save(tmp_path / "hc.csv", curve_to_csv(curve))
        assert load_curve(p, kind="hazard") == curve

    def test_save_and_load_portfolio(self, tmp_path):
        options = [CDSOption(5.0, 4, 0.4)]
        p_json = save(tmp_path / "book.json", portfolio_to_json(options))
        p_csv = save(tmp_path / "book.csv", portfolio_to_csv(options))
        assert load_portfolio(p_json) == options
        assert load_portfolio(p_csv) == options

    def test_unknown_extension(self, tmp_path):
        p = save(tmp_path / "book.xml", "<xml/>")
        with pytest.raises(ValidationError):
            load_portfolio(p)
        with pytest.raises(ValidationError):
            load_curve(p)
