"""Package-level tests: public API surface, module entry point, docs code."""

import os
import subprocess
import sys

import pytest

import repro


class TestPublicAPI:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_risk_exports_resolve(self):
        import repro.risk as risk

        for name in risk.__all__:
            assert hasattr(risk, name), name

    def test_cluster_exports_resolve(self):
        import repro.cluster as cluster

        for name in cluster.__all__:
            assert hasattr(cluster, name), name

    def test_analysis_exports_resolve(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.dataflow as dataflow
        import repro.fpga as fpga
        import repro.gateway as gateway
        import repro.hls as hls

        for mod in (core, dataflow, fpga, gateway, hls):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        # The child process does not inherit pytest's `pythonpath` ini
        # setting, so put the imported package's parent dir on its path.
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "price", "--maturity", "2"],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0
        assert "spread" in proc.stdout


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart code, executed verbatim."""
        from repro import CDSOption, HazardCurve, YieldCurve, price_cds

        yc = YieldCurve([0.5, 1, 2, 5, 10], [0.010, 0.013, 0.017, 0.022, 0.026])
        hc = HazardCurve([1, 3, 5, 10], [0.010, 0.014, 0.019, 0.028])
        result = price_cds(
            CDSOption(maturity=5.0, frequency=4, recovery_rate=0.4), yc, hc
        )
        assert result.spread_bps > 0

        from repro import PaperScenario, VectorizedDataflowEngine

        run = VectorizedDataflowEngine(PaperScenario(n_options=8)).run()
        assert run.options_per_second > 0

    def test_doctests(self):
        """Run the doctest examples embedded in docstrings."""
        import doctest

        import repro.core.daycount
        import repro.core.pricing
        import repro.core.schedule
        import repro.core.vector_pricing
        import repro.workloads.generator

        for mod in (
            repro.core.daycount,
            repro.core.pricing,
            repro.core.schedule,
            repro.core.vector_pricing,
            repro.workloads.generator,
        ):
            failures, _ = doctest.testmod(mod)
            assert failures == 0, mod.__name__
