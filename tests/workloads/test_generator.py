"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.workloads.generator import (
    WorkloadGenerator,
    make_hazard_curve,
    make_option_portfolio,
    make_yield_curve,
)
from repro.errors import ValidationError


class TestCurveGenerators:
    def test_yield_curve_shape(self):
        yc = make_yield_curve(128, span_years=10.0, seed=0)
        assert len(yc) == 128
        assert float(yc.times[-1]) == pytest.approx(10.0)

    def test_yield_curve_upward_sloping_on_average(self):
        yc = make_yield_curve(256, seed=0)
        head = np.mean(np.asarray(yc.values[:32]))
        tail = np.mean(np.asarray(yc.values[-32:]))
        assert tail > head

    def test_rates_positive(self):
        yc = make_yield_curve(512, noise=0.01, seed=3)
        assert np.all(np.asarray(yc.values) > 0)

    def test_hazard_positive(self):
        hc = make_hazard_curve(512, noise=0.01, seed=3)
        assert np.all(np.asarray(hc.values) > 0)

    def test_deterministic_in_seed(self):
        a = make_yield_curve(64, seed=7)
        b = make_yield_curve(64, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_yield_curve(64, seed=7)
        b = make_yield_curve(64, seed=8)
        assert a != b

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            make_yield_curve(1)
        with pytest.raises(ValidationError):
            make_hazard_curve(0)


class TestPortfolioGenerator:
    def test_count_and_bounds(self):
        opts = make_option_portfolio(
            50,
            maturity_range=(1.0, 4.0),
            recovery_range=(0.3, 0.5),
            seed=0,
        )
        assert len(opts) == 50
        assert all(1.0 <= o.maturity <= 4.0 for o in opts)
        assert all(0.3 <= o.recovery_rate <= 0.5 for o in opts)

    def test_frequencies_from_set(self):
        opts = make_option_portfolio(40, frequencies=(2, 4), seed=1)
        assert {o.frequency for o in opts} <= {2, 4}

    def test_deterministic(self):
        a = make_option_portfolio(10, seed=5)
        b = make_option_portfolio(10, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_option_portfolio(0)
        with pytest.raises(ValidationError):
            make_option_portfolio(5, maturity_range=(2.0, 1.0))
        with pytest.raises(ValidationError):
            make_option_portfolio(5, recovery_range=(0.5, 1.5))


class TestWorkloadGenerator:
    def test_reproducible_bundle(self):
        a, b = WorkloadGenerator(seed=42), WorkloadGenerator(seed=42)
        assert a.yield_curve(32) == b.yield_curve(32)
        assert a.portfolio(5) == b.portfolio(5)

    def test_streams_are_independent(self):
        wg = WorkloadGenerator(seed=42)
        assert wg.yield_curve(32) != wg.yield_curve(32)
