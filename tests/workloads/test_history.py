"""Tests for the synthetic curve-history generator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.history import CurveHistory, make_curve_history


class TestMakeCurveHistory:
    def test_shape(self):
        h = make_curve_history(10, n_points=16)
        assert h.n_days == 10
        assert h.n_moves == 9
        assert len(h.yields[0]) == 16

    def test_deterministic(self):
        a = make_curve_history(6, seed=4)
        b = make_curve_history(6, seed=4)
        for ya, yb in zip(a.yields, b.yields):
            np.testing.assert_array_equal(ya.values, yb.values)

    def test_days_actually_move(self):
        h = make_curve_history(6, seed=4)
        assert not np.array_equal(h.yields[0].values, h.yields[1].values)
        assert not np.array_equal(h.hazards[0].values, h.hazards[1].values)

    def test_values_stay_positive(self):
        h = make_curve_history(32, seed=4, rate_daily_vol=5e-3, hazard_daily_vol=5e-3)
        for yc, hc in zip(h.yields, h.hazards):
            assert np.all(np.asarray(yc.values) > 0)
            assert np.all(np.asarray(hc.values) >= 0)

    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            make_curve_history(1)
        with pytest.raises(ValidationError):
            make_curve_history(4, rate_hazard_correlation=1.0)
        with pytest.raises(ValidationError):
            make_curve_history(4, mean_reversion=2.0)


class TestCurveHistory:
    def test_mismatched_lengths_rejected(self):
        h = make_curve_history(4, n_points=8)
        with pytest.raises(ValidationError):
            CurveHistory(yields=h.yields, hazards=h.hazards[:-1])

    def test_too_short_rejected(self):
        h = make_curve_history(4, n_points=8)
        with pytest.raises(ValidationError):
            CurveHistory(yields=h.yields[:1], hazards=h.hazards[:1])
