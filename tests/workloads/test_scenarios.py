"""Unit tests for the paper scenario."""

import numpy as np
import pytest

from repro.workloads.scenarios import PAPER_TABLE1, PAPER_TABLE2, PaperScenario
from repro.errors import ValidationError


class TestDefaults:
    def test_paper_workload_parameters(self):
        sc = PaperScenario()
        assert sc.n_rates == 1024  # "1024 interest and hazard rates"
        assert sc.clock.frequency_hz == 300e6
        assert sc.replication_factor == 6
        assert sc.device.name.endswith("U280")

    def test_curves_have_n_rates_entries(self):
        sc = PaperScenario(n_rates=256)
        assert len(sc.yield_curve()) == 256
        assert len(sc.hazard_curve()) == 256

    def test_options_are_benchmark_contract(self):
        sc = PaperScenario(n_options=3)
        opts = sc.options()
        assert len(opts) == 3
        assert all(o.maturity == 5.0 and o.frequency == 4 for o in opts)

    def test_deterministic_curves(self):
        assert PaperScenario().yield_curve() == PaperScenario().yield_curve()
        assert PaperScenario(seed=9).yield_curve() != PaperScenario(seed=10).yield_curve()

    def test_curve_values_realistic(self):
        sc = PaperScenario()
        assert np.all(np.asarray(sc.yield_curve().values) < 0.1)
        assert np.all(np.asarray(sc.hazard_curve().values) < 0.1)


class TestOverrides:
    def test_with_overrides(self):
        sc = PaperScenario().with_overrides(replication_factor=2, n_options=7)
        assert sc.replication_factor == 2
        assert sc.n_options == 7
        assert sc.n_rates == 1024  # untouched

    def test_option_count_override(self):
        sc = PaperScenario(n_options=4)
        assert len(sc.options(9)) == 9

    def test_validation(self):
        with pytest.raises(ValidationError):
            PaperScenario(n_rates=1)
        with pytest.raises(ValidationError):
            PaperScenario(n_options=0)
        with pytest.raises(ValidationError):
            PaperScenario(replication_factor=0)
        with pytest.raises(ValidationError):
            PaperScenario(uram_read_ports=0)
        with pytest.raises(ValidationError):
            PaperScenario(multi_engine_contention=-0.1)
        with pytest.raises(ValidationError):
            PaperScenario(option_maturity=20.0, curve_span_years=10.0)
        with pytest.raises(ValidationError):
            PaperScenario().options(0)


class TestPaperConstants:
    def test_table1_rows(self):
        assert len(PAPER_TABLE1) == 5
        assert PAPER_TABLE1["vectorised_dataflow"] == pytest.approx(27675.67)

    def test_table2_rows(self):
        assert len(PAPER_TABLE2) == 4
        rate, watts, eff = PAPER_TABLE2["fpga_5_engines"]
        assert rate == pytest.approx(114115.92)
        assert watts == pytest.approx(37.38)
        # The paper's own efficiency column is rate/watts.
        assert eff == pytest.approx(rate / watts, rel=0.01)

    def test_paper_internal_consistency(self):
        """Cross-check the paper's own claims against its tables."""
        # "eight times faster ... than the original Xilinx library version"
        assert PAPER_TABLE1["vectorised_dataflow"] / PAPER_TABLE1[
            "xilinx_baseline"
        ] == pytest.approx(8.0, rel=0.01)
        # "out performing ... CPU by around 1.55 times" (abstract says 1.55,
        # Section IV also quotes ~1.55; tables give 1.505)
        assert PAPER_TABLE2["fpga_5_engines"][0] / PAPER_TABLE2["cpu_24_cores"][
            0
        ] == pytest.approx(1.505, rel=0.01)

    def test_pcie_seconds_small(self):
        sc = PaperScenario()
        assert sc.pcie_seconds(1024) < 1e-3
