"""Unit tests for the serving-layer arrival processes."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.traffic import (
    TRAFFIC_PROCESSES,
    bursty_arrivals,
    diurnal_arrivals,
    make_arrivals,
    multi_tenant_arrivals,
    poisson_arrivals,
    zipf_choices,
    zipf_weights,
)

N = 20_000
RATE = 1000.0


def _gaps(times: np.ndarray) -> np.ndarray:
    return np.diff(np.concatenate(([0.0], times)))


def _cv(gaps: np.ndarray) -> float:
    return float(gaps.std() / gaps.mean())


class TestPoisson:
    def test_mean_rate_pinned(self):
        t = poisson_arrivals(N, RATE, seed=7)
        assert t.shape == (N,)
        assert np.all(np.diff(t) > 0)
        empirical = N / t[-1]
        assert empirical == pytest.approx(RATE, rel=0.03)

    def test_interarrival_moments_pinned(self):
        gaps = _gaps(poisson_arrivals(N, RATE, seed=7))
        # Exponential gaps: mean 1/rate, coefficient of variation 1.
        assert gaps.mean() == pytest.approx(1.0 / RATE, rel=0.03)
        assert _cv(gaps) == pytest.approx(1.0, abs=0.05)

    def test_deterministic_in_seed(self):
        a = poisson_arrivals(500, RATE, seed=3)
        b = poisson_arrivals(500, RATE, seed=3)
        c = poisson_arrivals(500, RATE, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_start_offset(self):
        t = poisson_arrivals(100, RATE, seed=1, start_s=5.0)
        assert t[0] > 5.0


class TestBursty:
    def test_mean_rate_pinned(self):
        t = bursty_arrivals(N, RATE, seed=7)
        assert np.all(np.diff(t) > 0)
        assert N / t[-1] == pytest.approx(RATE, rel=0.10)

    def test_overdispersed_interarrivals(self):
        """The MMPP hallmark: CV of the gaps well above Poisson's 1."""
        gaps = _gaps(bursty_arrivals(N, RATE, seed=7))
        assert _cv(gaps) > 1.2

    def test_burstier_factor_raises_cv(self):
        mild = _cv(_gaps(bursty_arrivals(N, RATE, burst_factor=2.0, seed=7)))
        wild = _cv(_gaps(bursty_arrivals(N, RATE, burst_factor=12.0, seed=7)))
        assert wild > mild

    def test_validation(self):
        with pytest.raises(ValidationError):
            bursty_arrivals(10, RATE, burst_factor=1.0)
        with pytest.raises(ValidationError):
            bursty_arrivals(10, RATE, burst_fraction=0.0)
        with pytest.raises(ValidationError):
            bursty_arrivals(10, RATE, burst_dwell_s=-1.0)


class TestDiurnal:
    def test_mean_rate_pinned(self):
        t = diurnal_arrivals(N, RATE, seed=7)
        assert np.all(np.diff(t) > 0)
        assert N / t[-1] == pytest.approx(RATE, rel=0.05)

    def test_rate_swings_across_period(self):
        """Binned rates must follow the sinusoid: peak >> trough."""
        period = 4.0
        t = diurnal_arrivals(N, RATE, period_s=period, amplitude=0.8, seed=7)
        phase = (t % period) / period
        peak = np.sum((phase > 0.15) & (phase < 0.35))  # sin ~ +1
        trough = np.sum((phase > 0.65) & (phase < 0.85))  # sin ~ -1
        assert peak / max(trough, 1) > 2.0

    def test_zero_amplitude_is_poisson_like(self):
        gaps = _gaps(diurnal_arrivals(N, RATE, amplitude=0.0, seed=7))
        assert _cv(gaps) == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValidationError):
            diurnal_arrivals(10, RATE, amplitude=1.0)
        with pytest.raises(ValidationError):
            diurnal_arrivals(10, RATE, period_s=0.0)


class TestRegistry:
    def test_registry_names(self):
        assert set(TRAFFIC_PROCESSES) == {"poisson", "bursty", "diurnal"}

    def test_make_arrivals_dispatches(self):
        for name in TRAFFIC_PROCESSES:
            t = make_arrivals(name, 200, RATE, seed=5)
            assert t.shape == (200,)

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown traffic"):
            make_arrivals("fractal", 10, RATE)

    def test_common_validation(self):
        with pytest.raises(ValidationError):
            poisson_arrivals(0, RATE)
        with pytest.raises(ValidationError):
            poisson_arrivals(10, 0.0)
        with pytest.raises(ValidationError):
            poisson_arrivals(10, RATE, start_s=-1.0)


class TestZipf:
    def test_weights_normalised_and_monotone(self):
        w = zipf_weights(64, exponent=1.2)
        assert w.shape == (64,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_weight_ratio_pinned(self):
        """Zipf's defining moment: p(k) / p(2k) = 2 ** exponent."""
        for s in (0.8, 1.1, 1.5):
            w = zipf_weights(256, exponent=s)
            assert w[0] / w[1] == pytest.approx(2.0**s)
            assert w[3] / w[7] == pytest.approx(2.0**s)

    def test_zero_exponent_is_uniform(self):
        w = zipf_weights(32, exponent=0.0)
        np.testing.assert_allclose(w, 1.0 / 32)

    def test_empirical_popularity_moments_pinned(self):
        """Sampled rank frequencies must match the analytic weights."""
        n_items, s = 16, 1.1
        draws = zipf_choices(N, n_items, exponent=s, seed=7)
        counts = np.bincount(draws, minlength=n_items) / N
        w = zipf_weights(n_items, exponent=s)
        np.testing.assert_allclose(counts[:4], w[:4], rtol=0.05)
        # Head concentration: top rank beats the uniform share 1/n.
        assert counts[0] > 2.0 / n_items

    def test_choices_deterministic_in_seed(self):
        a = zipf_choices(500, 32, seed=3)
        b = zipf_choices(500, 32, seed=3)
        c = zipf_choices(500, 32, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_validation(self):
        with pytest.raises(ValidationError):
            zipf_weights(0)
        with pytest.raises(ValidationError):
            zipf_weights(8, exponent=-0.1)
        with pytest.raises(ValidationError):
            zipf_choices(0, 8)


class TestMultiTenantArrivals:
    WEIGHTS = (0.5, 0.3, 0.2)

    def test_mean_rate_and_ordering(self):
        times, tenants = multi_tenant_arrivals(N, RATE, self.WEIGHTS, seed=7)
        assert times.shape == tenants.shape == (N,)
        assert np.all(np.diff(times) > 0)
        assert N / times[-1] == pytest.approx(RATE, rel=0.03)

    def test_tenant_shares_pinned(self):
        _, tenants = multi_tenant_arrivals(N, RATE, self.WEIGHTS, seed=7)
        shares = np.bincount(tenants, minlength=3) / N
        np.testing.assert_allclose(shares, self.WEIGHTS, rtol=0.05)

    def test_deterministic_in_seed(self):
        a_t, a_x = multi_tenant_arrivals(500, RATE, self.WEIGHTS, seed=3)
        b_t, b_x = multi_tenant_arrivals(500, RATE, self.WEIGHTS, seed=3)
        c_t, c_x = multi_tenant_arrivals(500, RATE, self.WEIGHTS, seed=4)
        np.testing.assert_array_equal(a_t, b_t)
        np.testing.assert_array_equal(a_x, b_x)
        assert not np.array_equal(a_t, c_t)
        assert not np.array_equal(a_x, c_x)

    def test_dispatches_through_registry(self):
        times, _ = multi_tenant_arrivals(
            2000, RATE, self.WEIGHTS, traffic="bursty", seed=7
        )
        assert np.all(np.diff(times) > 0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            multi_tenant_arrivals(10, RATE, ())
        with pytest.raises(ValidationError):
            multi_tenant_arrivals(10, RATE, (0.5, -0.1))
        with pytest.raises(ValidationError):
            multi_tenant_arrivals(10, RATE, (0.0, 0.0))
